//! Hot-path micro-benchmarks of the simulation kernel.
//!
//! Every simulated memory access, micro-op and logic instruction boils
//! down to a handful of `Server`/`Window`/`ThroughputPipe` operations,
//! so their per-call cost bounds overall simulator throughput. Each
//! benchmark drives one primitive through a 1024-request schedule (the
//! reported figure is therefore ~1/1024 of the per-call cost).
//!
//! Run with `cargo bench -p hipe-bench --bench components`.

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use hipe_sim::{FifoWindow, MultiServer, Server, ThroughputPipe, Window};
use std::hint::black_box;

const OPS: u64 = 1024;

fn main() {
    hipe_bench::print_header("components");
    println!("# simulation-kernel hot paths ({OPS} requests per iter)");

    hipe_bench::run("server_serve_stream", || {
        let mut server = Server::new();
        for i in 0..OPS {
            black_box(server.serve(i, 40));
        }
        server.next_free()
    });

    hipe_bench::run("server_serve_pipelined_stream", || {
        let mut server = Server::new();
        for i in 0..OPS {
            black_box(server.serve_pipelined(i, 1, 40));
        }
        server.next_free()
    });

    hipe_bench::run("multi_server_8_units_stream", || {
        let mut pool = MultiServer::new(8);
        for i in 0..OPS {
            black_box(pool.serve(i, 40));
        }
        pool.next_free()
    });

    hipe_bench::run("window_admit_complete_stream", || {
        let mut window = Window::new(64);
        for i in 0..OPS {
            let at = window.admit(i);
            window.complete(at + 100);
        }
        window.drain()
    });

    hipe_bench::run("fifo_window_admit_complete_stream", || {
        let mut rob = FifoWindow::new(168);
        for i in 0..OPS {
            let at = rob.admit(i);
            rob.complete(at + 100);
        }
        rob.drain()
    });

    hipe_bench::run("throughput_pipe_transfer_stream", || {
        let mut link = ThroughputPipe::new(16, 1, 20);
        for i in 0..OPS {
            black_box(link.transfer(i, 80));
        }
        link.next_free()
    });
}
