fn main() {}
