//! Paper-figure sweep: all four machines over scan selectivities,
//! plus the partitioned-execution sweep.
//!
//! Reproduces the shape of the paper's evaluation on the select-scan
//! workload: for each selectivity point the same query runs end to end
//! on the x86 baseline, the stock HMC atomic ISA, HIVE and HIPE —
//! all against **one** warm `hipe::Session` (a single table
//! materialization) — and the table reports simulated cycles, HIPE's
//! speedup and DRAM/link energy ratios, plus the simulator's own wall
//! time per point (the quantity the `components` benchmarks bound from
//! below).
//!
//! A second sweep (`par_1` / `par_2` / `par_4` / `par_8`) runs Q6 on
//! HIVE and HIPE with that many vault-group engines, showing the
//! near-linear scan-phase scaling and the knee where the shared link
//! and readback bandwidth takes over. Each partition count is its own
//! `System` (the partitioned layout pads areas to vault sweeps), so
//! each pays one materialization.
//!
//! A third sweep (`serve_1` / `serve_2` / `serve_4`) drives the
//! `hipe-serve` service scheduler: a fixed closed-loop load (a
//! weighted query mix over saturating clients) against a sharded
//! cluster of that many cubes, reporting service throughput
//! (queries per gigacycle) and p50/p95/p99 latency. Two replication
//! points extend it: `serve_4x2` doubles every shard to two replica
//! cubes (throughput must reach ≥ 1.7× of `serve_4`), and
//! `serve_fail` re-runs that cluster with replica 0 of shard 1 killed
//! fail-stop at half the clean makespan — on every architecture the
//! failover run's answer digest must equal the fault-free run's.
//!
//! A fourth sweep (`skip_1%` / `skip_3%` / `skip_10%`) runs a
//! shipdate window at that selectivity against a shipdate-clustered
//! table twice — with zone-map pruning on and off — on all four
//! machines, recording both runs' cycle and phase counts in one row
//! (`base_*` fields are the unpruned run). A `serve_skip` row drives
//! the same window through a 4-shard cluster whose scatter path
//! consults the shard rollups, reporting how many shards were never
//! scattered to. `check_figures` requires pruned cycles to never
//! exceed the unpruned baseline and the ≤ 3 % rows to cut scan and
//! dispatch completion by at least 1.5x.
//!
//! A fifth row (`host_par`) measures the *simulator itself*: the same
//! four-arch batch and the same 4-shard cluster scatter run once on a
//! 1-worker pool and once on a 4-worker pool, recording host
//! wall-clock for both plus an FNV digest of every result — the
//! digests must match exactly (parallel co-simulation is bit-identical
//! to serial), and `check_figures` fails if the 4-worker runs are
//! slower than the serial ones.
//!
//! A final trio of rows (`perf_materialize` / `perf_generate` /
//! `perf_engine`) records the data-plane rates of the zero-copy hot
//! paths — in-place image materialization bytes/s, table generation
//! rows/s and engine simulated-instructions/s — over a capped table
//! (see `hipe_bench::perf`), so the host-side throughput trajectory
//! is recorded and checked, not anecdotal.
//!
//! Besides the human-readable table, all sweeps are written to
//! `BENCH_figures.json` (override the path with `HIPE_BENCH_JSON`) so
//! the performance trajectory of the simulator is machine-checkable
//! across PRs (`check_figures` validates the schema, including that
//! `par_*` cycles fall monotonically with the engine count, `serve_*`
//! throughput rises monotonically with the shard and replica count,
//! and the `serve_fail` digests match their clean counterparts).
//! Every row records its host wall-clock as `host_ms` — simulated
//! cycles measure the modeled machines, `host_ms` measures the
//! simulator.
//!
//! Run with `cargo bench -p hipe-bench --bench figures`; scale the
//! table with `HIPE_BENCH_ROWS` or `HIPE_BENCH_SF`, and fan the
//! sweeps out over host threads with `HIPE_WORKERS`.

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use hipe::{Arch, RunReport, System, SystemConfig, TableShape};
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, ClusterConfig, FaultPlan, ServiceConfig, ServiceReport};
use hipe_sim::WorkerPool;
use std::fmt::Write as _;
use std::time::Instant;

const SEED: u64 = 2018;

/// Queries served per service-sweep point.
const SERVE_QUERIES: usize = 96;

/// Closed-loop clients driving the service sweep (enough to saturate
/// every shard count in the sweep).
const SERVE_CLIENTS: usize = 8;

/// Worker width of the `host_par` speedup row's parallel leg (the
/// serial leg always runs on 1 worker, whatever `HIPE_WORKERS` says).
const HOST_PAR_WORKERS: usize = 4;

fn main() {
    hipe_bench::print_header("figures");
    let rows = hipe_bench::bench_rows();
    let pool = WorkerPool::from_env();
    let sys = System::new(rows, SEED);
    println!("# four-machine select scan sweep, {rows} rows, one warm session per worker");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>12} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "query",
        "sel%",
        "x86_cyc",
        "hmcisa_cyc",
        "hive_cyc",
        "hipe_cyc",
        "speedup",
        "dramE",
        "linkE",
        "host_ms"
    );

    // Quantity is uniform in 1..=50, so achievable selectivities move
    // in 2 % steps; permille 0 is the all-squash extreme.
    let mut points: Vec<(String, Query)> = [0, 20, 60, 100, 300, 500, 1000]
        .into_iter()
        .map(|pm| {
            (
                format!("sel_{:.0}%", pm as f64 / 10.0),
                Query::quantity_below_permille(pm),
            )
        })
        .collect();
    // Aggregate sweep: the same selectivity knob with the Q6-shaped
    // SUM(l_extendedprice * l_discount) attached. HIVE/HIPE run these
    // fused in the logic layer (per-region partials read back over the
    // links); x86 and the HMC ISA pay the per-tuple host gather.
    for pm in [20, 100, 500] {
        points.push((
            format!("agg_{:.0}%", pm as f64 / 10.0),
            Query::quantity_below_permille(pm).with_aggregate(),
        ));
    }
    points.push(("q6".to_string(), Query::q6()));

    let mut json_points = Vec::with_capacity(points.len());
    // Each worker opens its own warm session over the shared system
    // (sessions are `Send`, the `System` is `Sync`); points fan out
    // over the pool and gather in point order, so the table and JSON
    // are identical at every worker width.
    let sweep_results: Vec<(String, Query, Vec<RunReport>, f64)> = pool.run_with(
        points,
        || sys.session(),
        |session, _, (name, query)| {
            let start = Instant::now();
            let reports: Vec<RunReport> = Arch::ALL
                .iter()
                .map(|&arch| session.run(arch, &query))
                .collect();
            let wall = start.elapsed();
            for r in &reports {
                assert_eq!(
                    r.result.bitmask, reports[0].result.bitmask,
                    "architectures diverged on {name}"
                );
            }
            (name, query, reports, wall.as_secs_f64() * 1e3)
        },
    );
    for (name, query, reports, wall_ms) in &sweep_results {
        let [base, hmc, hive, hipe] = &reports[..] else {
            unreachable!("one report per architecture");
        };
        println!(
            "{:<12} {:>6.2} {:>12} {:>12} {:>12} {:>12} {:>7.2}x {:>8.2} {:>8.2} {:>12.1}",
            name,
            100.0 * hipe.selectivity(),
            base.cycles,
            hmc.cycles,
            hive.cycles,
            hipe.cycles,
            hipe.speedup_over(base),
            hipe.energy.dram_pj() / base.energy.dram_pj(),
            hipe.energy.link_pj() / base.energy.link_pj(),
            wall_ms,
        );
        json_points.push(json_point(name, query, reports, *wall_ms));
    }
    // One materialization per worker that actually ran a point — and
    // exactly one on the historical serial path.
    let mats = sys.materializations();
    assert!(
        (1..=pool.workers() as u64).contains(&mats),
        "the sweep re-materialized ({mats} materializations, {} workers)",
        pool.workers()
    );

    // Partition sweep: Q6 on the logic machines with 1/2/4/8
    // vault-group engines. Only HIVE/HIPE appear in these rows — the
    // host-driven machines have no engine cluster to partition.
    println!("# partitioned Q6 sweep (HIVE/HIPE, one system per engine count)");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12} {:>8}",
        "point", "hive_scan", "hive_cyc", "hipe_scan", "hipe_cyc", "speedup"
    );
    let q6 = Query::q6();
    // One independent system per engine count: the four points fan out
    // over the pool (each worker builds, materializes and runs its own
    // cube) and gather in engine-count order.
    let par_results: Vec<(usize, Vec<RunReport>, f64)> = pool.run(vec![1usize, 2, 4, 8], |_, n| {
        let psys = System::partitioned(rows, SEED, n);
        let start = Instant::now();
        let mut psession = psys.session();
        let reports: Vec<RunReport> = [Arch::Hive, Arch::Hipe]
            .iter()
            .map(|&arch| psession.run(arch, &q6))
            .collect();
        let wall = start.elapsed();
        assert_eq!(
            reports[0].result.bitmask, reports[1].result.bitmask,
            "logic machines diverged at {n} partitions"
        );
        assert_eq!(psys.materializations(), 1);
        (n, reports, wall.as_secs_f64() * 1e3)
    });
    let hipe_scan_1 = par_results[0].1[1].phases.scan;
    for (n, reports, wall_ms) in &par_results {
        let [hive, hipe] = &reports[..] else {
            unreachable!("one report per logic machine");
        };
        let name = format!("par_{n}");
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12} {:>7.2}x",
            name,
            hive.phases.scan,
            hive.cycles,
            hipe.phases.scan,
            hipe.cycles,
            hipe_scan_1 as f64 / hipe.phases.scan.max(1) as f64,
        );
        json_points.push(json_point(&name, &q6, reports, *wall_ms));
    }

    // Service sweep: the same saturating closed-loop load against 1,
    // 2 and 4 cube shards on HIPE. Throughput (queries per gigacycle)
    // must not fall as shards are added — check_figures enforces it.
    println!(
        "# sharded service sweep (HIPE closed loop, {SERVE_QUERIES} queries, \
         {SERVE_CLIENTS} clients)"
    );
    println!(
        "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10} {:>12}",
        "point", "shards", "q_per_Gcyc", "p50", "p95", "p99", "host_ms"
    );
    let mix = vec![
        (Query::q6(), 1),
        (Query::quantity_below_permille(100), 2),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ];
    for n in [1usize, 2, 4] {
        let cluster = Cluster::new(rows, SEED, n);
        let cfg = ServiceConfig::closed(Arch::Hipe, SERVE_QUERIES, mix.clone(), SERVE_CLIENTS);
        let start = Instant::now();
        let report = run_service(&cluster, &cfg);
        let wall = start.elapsed();
        assert_eq!(report.queries, SERVE_QUERIES as u64);
        // Throughput monotonicity is check_figures' invariant — a dip
        // must surface as its structured CI failure over the written
        // JSON, not as a mid-sweep panic that leaves stale figures.
        let name = format!("serve_{n}");
        println!(
            "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10} {:>12.1}",
            name,
            n,
            report.queries_per_gigacycle(),
            report.latency.p50,
            report.latency.p95,
            report.latency.p99,
            wall.as_secs_f64() * 1e3,
        );
        json_points.push(serve_json_point(
            &name,
            &report,
            "",
            wall.as_secs_f64() * 1e3,
        ));
    }

    // Replication point: the same load against 4 shards x 2 replica
    // cubes. Each scattered sub-query goes to one replica per shard,
    // so the copies serve concurrently — check_figures requires the
    // throughput to reach at least 1.7x of serve_4's.
    let cluster = Cluster::replicated(rows, SEED, 4, 2);
    let cfg = ServiceConfig::closed(Arch::Hipe, SERVE_QUERIES, mix.clone(), SERVE_CLIENTS);
    let start = Instant::now();
    let replicated = run_service(&cluster, &cfg);
    let wall = start.elapsed();
    assert_eq!(replicated.queries, SERVE_QUERIES as u64);
    println!(
        "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10} {:>12.1}",
        "serve_4x2",
        "4x2",
        replicated.queries_per_gigacycle(),
        replicated.latency.p50,
        replicated.latency.p95,
        replicated.latency.p99,
        wall.as_secs_f64() * 1e3,
    );
    json_points.push(serve_json_point(
        "serve_4x2",
        &replicated,
        "",
        wall.as_secs_f64() * 1e3,
    ));

    // Failover point: the replicated cluster again, with replica 0 of
    // shard 1 killed fail-stop at half the clean makespan. Sub-queries
    // lost on the dark replica are re-dispatched to its survivor, and
    // the service answer must come out bit-identical on every
    // architecture — the per-arch digest pairs below are what
    // check_figures compares.
    let start = Instant::now();
    let mut digests = String::new();
    let mut hipe_failed = None;
    for arch in Arch::ALL {
        let cfg = ServiceConfig::closed(arch, SERVE_QUERIES, mix.clone(), SERVE_CLIENTS);
        let clean = if matches!(arch, Arch::Hipe) {
            replicated.clone()
        } else {
            run_service(&cluster, &cfg)
        };
        let failed = run_service(
            &cluster,
            &ServiceConfig {
                faults: vec![FaultPlan::new(1, 0, clean.makespan / 2)],
                ..cfg
            },
        );
        assert_eq!(
            failed.answers, clean.answers,
            "{arch}: failover changed the service answer"
        );
        writeln!(
            digests,
            "      \"digest_{arch}_clean\": {},\n      \"digest_{arch}_fault\": {},",
            clean.answers_digest(),
            failed.answers_digest(),
        )
        .expect("writing to a String cannot fail");
        if matches!(arch, Arch::Hipe) {
            hipe_failed = Some(failed);
        }
    }
    let failed = hipe_failed.expect("HIPE is in Arch::ALL");
    let wall = start.elapsed();
    println!(
        "{:<12} {:>8} {:>14} {:>10} {:>10} {:>10} {:>12.1}  ({} failover, {} redispatched)",
        "serve_fail",
        "4x2",
        failed.queries_per_gigacycle(),
        failed.latency.p50,
        failed.latency.p95,
        failed.latency.p99,
        wall.as_secs_f64() * 1e3,
        failed.failovers,
        failed.redispatched,
    );
    json_points.push(serve_json_point(
        "serve_fail",
        &failed,
        &digests,
        wall.as_secs_f64() * 1e3,
    ));

    // Zone-map skip sweep: the same shipdate window runs pruned and
    // unpruned against one shipdate-clustered table per mode, on all
    // four machines. Pruning must never change the answer (asserted
    // here) and never add cycles; at low selectivity it must cut the
    // scan and dispatch phases — check_figures enforces both over the
    // written JSON.
    println!("# zone-map skip sweep (clustered shipdate, pruned vs unpruned)");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>10} {:>10} {:>12}",
        "point", "sel%", "hipe_cyc", "base_cyc", "scan_x", "scanned", "pruned", "host_ms"
    );
    let clustered = |pruning: bool| {
        let mut cfg = SystemConfig::paper(rows, SEED);
        cfg.shape = TableShape::ClusteredShipdate { total_rows: rows };
        cfg.pruning = pruning;
        System::with_config(cfg)
    };
    let pruned_sys = clustered(true);
    let full_sys = clustered(false);
    let mut pruned_session = pruned_sys.session();
    let mut full_session = full_sys.session();
    for pm in [10, 30, 100] {
        let name = format!("skip_{:.0}%", pm as f64 / 10.0);
        let query = Query::shipdate_window_permille(pm);
        let start = Instant::now();
        let pruned_reports: Vec<RunReport> = Arch::ALL
            .iter()
            .map(|&arch| pruned_session.run(arch, &query))
            .collect();
        let full_reports: Vec<RunReport> = Arch::ALL
            .iter()
            .map(|&arch| full_session.run(arch, &query))
            .collect();
        let wall = start.elapsed();
        for (p, u) in pruned_reports.iter().zip(&full_reports) {
            assert_eq!(
                p.result, u.result,
                "pruning changed the answer on {name} ({})",
                p.arch
            );
        }
        let (hipe, base) = (&pruned_reports[3], &full_reports[3]);
        println!(
            "{:<12} {:>6.2} {:>12} {:>12} {:>7.2}x {:>10} {:>10} {:>12.1}",
            name,
            100.0 * hipe.selectivity(),
            hipe.cycles,
            base.cycles,
            base.phases.scan as f64 / hipe.phases.scan.max(1) as f64,
            hipe.regions_scanned,
            hipe.regions_pruned,
            wall.as_secs_f64() * 1e3,
        );
        json_points.push(skip_json_point(
            &name,
            &query,
            &pruned_reports,
            &full_reports,
            wall.as_secs_f64() * 1e3,
        ));
    }
    assert_eq!(
        pruned_sys.materializations(),
        1,
        "the skip sweep re-materialized"
    );

    // Serve skip row: the 3 % window fits inside one shard of the
    // 4-way clustered split, so the scatter path consults the shard
    // rollups and never dispatches to the others. The unpruned
    // clustered cluster answers identically — the skipping run just
    // stops scattering.
    let skipping_cluster = Cluster::with_config(ClusterConfig::skipping(rows, SEED, 4));
    let full_cluster = Cluster::with_config(ClusterConfig {
        clustered: true,
        ..ClusterConfig::new(rows, SEED, 4)
    });
    let query = Query::shipdate_window_permille(30);
    let start = Instant::now();
    let skip_report = skipping_cluster.run(Arch::Hipe, &query);
    let full_report = full_cluster.run(Arch::Hipe, &query);
    let wall = start.elapsed();
    assert_eq!(
        skip_report.result, full_report.result,
        "shard skipping changed the cluster answer"
    );
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>10} {:>12.1}",
        "serve_skip",
        4,
        skip_report.cycles,
        full_report.cycles,
        skip_report.shards_skipped(),
        wall.as_secs_f64() * 1e3,
    );
    json_points.push(format!(
        "    {{\n      \"name\": \"serve_skip\",\n      \"shards\": 4,\n      \
         \"shards_skipped\": {},\n      \"cycles\": {},\n      \"base_cycles\": {},\n      \
         \"host_ms\": {:.3}\n    }}",
        skip_report.shards_skipped(),
        skip_report.cycles,
        full_report.cycles,
        wall.as_secs_f64() * 1e3,
    ));

    // Host-parallel speedup row: the same four-arch batch and the same
    // 4-shard scatter, once on a 1-worker pool and once on a 4-worker
    // pool. Simulated results must be bit-identical (the digests pin
    // it, here and in check_figures); only host wall-clock may differ
    // — and at 4 workers it must not be worse than serial.
    println!("# host-parallel co-simulation ({HOST_PAR_WORKERS} workers vs serial)");
    println!(
        "{:<12} {:>14} {:>16} {:>16} {:>18} {:>10}",
        "point", "sweep_ser_ms", "sweep_par_ms", "scatter_ser_ms", "scatter_par_ms", "speedup"
    );
    let hp_queries = [Query::q6(), Query::quantity_below_permille(100)];
    let sweep_leg = |workers: usize| -> (u64, f64) {
        let leg_pool = WorkerPool::new(workers);
        let jobs: Vec<(Arch, &Query)> = Arch::ALL
            .iter()
            .flat_map(|&arch| hp_queries.iter().map(move |q| (arch, q)))
            .collect();
        let start = Instant::now();
        let reports = leg_pool.run_with(
            jobs,
            || sys.session(),
            |session, _, (arch, query)| session.run(arch, query),
        );
        let wall = start.elapsed();
        (digest_runs(&reports), wall.as_secs_f64() * 1e3)
    };
    let scatter_leg = |workers: usize| -> (u64, f64) {
        let cluster = Cluster::with_config(ClusterConfig {
            workers,
            ..ClusterConfig::new(rows, SEED, 4)
        });
        let mut csession = cluster.session(); // warm: images built untimed
        let start = Instant::now();
        let reports: Vec<_> = Arch::ALL
            .iter()
            .map(|&arch| csession.run(arch, &q6))
            .collect();
        let wall = start.elapsed();
        let mut digest = 0xcbf29ce484222325;
        for r in &reports {
            digest = fnv_mix(digest, r.cycles);
            digest = fnv_mix(digest, r.result.matches as u64);
            digest = fnv_mix(digest, r.result.aggregate.unwrap_or(0) as u64);
            for &word in r.result.bitmask.words() {
                digest = fnv_mix(digest, word);
            }
        }
        (digest, wall.as_secs_f64() * 1e3)
    };
    let (sweep_ser_digest, sweep_ser_ms) = sweep_leg(1);
    let (sweep_par_digest, sweep_par_ms) = sweep_leg(HOST_PAR_WORKERS);
    assert_eq!(
        sweep_ser_digest, sweep_par_digest,
        "parallel sweep diverged from serial"
    );
    let (scatter_ser_digest, scatter_ser_ms) = scatter_leg(1);
    let (scatter_par_digest, scatter_par_ms) = scatter_leg(HOST_PAR_WORKERS);
    assert_eq!(
        scatter_ser_digest, scatter_par_digest,
        "parallel scatter diverged from serial"
    );
    println!(
        "{:<12} {:>14.1} {:>16.1} {:>16.1} {:>18.1} {:>9.2}x",
        "host_par",
        sweep_ser_ms,
        sweep_par_ms,
        scatter_ser_ms,
        scatter_par_ms,
        (sweep_ser_ms + scatter_ser_ms) / (sweep_par_ms + scatter_par_ms).max(1e-9),
    );
    // Record the host's parallelism next to the timings: on a
    // single-core runner the 4-worker leg cannot win wall-clock, so
    // check_figures only enforces the speedup when host_cpus >= 2
    // (digest equality is enforced unconditionally).
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    json_points.push(format!(
        "    {{\n      \"name\": \"host_par\",\n      \"workers\": {HOST_PAR_WORKERS},\n      \
         \"host_cpus\": {host_cpus},\n      \
         \"sweep_serial_ms\": {sweep_ser_ms:.3},\n      \
         \"sweep_parallel_ms\": {sweep_par_ms:.3},\n      \
         \"scatter_serial_ms\": {scatter_ser_ms:.3},\n      \
         \"scatter_parallel_ms\": {scatter_par_ms:.3},\n      \
         \"digest_serial\": {},\n      \"digest_parallel\": {},\n      \
         \"host_ms\": {:.3}\n    }}",
        sweep_ser_digest ^ scatter_ser_digest,
        sweep_par_digest ^ scatter_par_digest,
        sweep_ser_ms + sweep_par_ms + scatter_ser_ms + scatter_par_ms,
    ));

    // Data-plane rate rows: the zero-copy hot paths' host throughput
    // (materialization bytes/s, generation rows/s, engine simulated
    // instr/s), measured over a capped table so these rows cost a
    // fixed slice of the sweep however large HIPE_BENCH_SF makes it.
    // check_figures requires all three rows, each with nonzero work
    // and rate and the usual host_ms.
    println!(
        "# data-plane rates (rows capped at {})",
        hipe_bench::perf::PERF_ROWS_CAP
    );
    println!(
        "{:<20} {:>8} {:>14} {:>16} {:>12} {:>12}",
        "point", "unit", "work/iter", "rate_per_s", "headline", "host_ms"
    );
    for r in hipe_bench::perf::measure(rows, SEED, hipe_bench::target_duration(), &pool) {
        println!(
            "{:<20} {:>8} {:>14} {:>16} {:>9.3} {:<3} {:>10.1}",
            r.name,
            r.unit,
            r.work,
            r.rate_per_s,
            r.headline(),
            r.headline_unit(),
            r.host_ms,
        );
        json_points.push(format!(
            "    {{\n      \"name\": \"{}\",\n      \"unit\": \"{}\",\n      \
             \"work\": {},\n      \"rate_per_s\": {},\n      \
             \"host_ms\": {:.3}\n    }}",
            r.name, r.unit, r.work, r.rate_per_s, r.host_ms,
        ));
    }

    // Default next to the workspace root regardless of the bench CWD.
    let path = std::env::var("HIPE_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figures.json").into()
    });
    let json = render_json(rows, &json_points);
    match std::fs::write(&path, json) {
        Ok(()) => println!("# wrote {path}"),
        Err(e) => eprintln!("# could not write {path}: {e}"),
    }
}

/// One FNV-1a step over a 64-bit word.
fn fnv_mix(hash: u64, word: u64) -> u64 {
    let mut h = hash;
    for byte in word.to_le_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a digest over a batch of run reports: simulated cycles plus
/// the full functional result (mask words, match count, aggregate).
/// Equal digests mean the batches are bit-identical in everything the
/// figures record.
fn digest_runs(reports: &[RunReport]) -> u64 {
    let mut h = 0xcbf29ce484222325;
    for r in reports {
        h = fnv_mix(h, r.cycles);
        h = fnv_mix(h, r.result.matches as u64);
        h = fnv_mix(h, r.result.aggregate.unwrap_or(0) as u64);
        for &word in r.result.bitmask.words() {
            h = fnv_mix(h, word);
        }
    }
    h
}

/// Renders one sweep point as a JSON object (the build is offline, so
/// the JSON is assembled by hand — every string interpolated below is
/// ASCII without quotes or escapes).
fn json_point(name: &str, query: &Query, reports: &[RunReport], wall_ms: f64) -> String {
    let mut out = String::new();
    let sel = reports[0].selectivity();
    write!(
        out,
        "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{query}\",\n      \
         \"selectivity\": {sel:.6},\n      \"host_ms\": {wall_ms:.3},\n      \"archs\": {{"
    )
    .expect("writing to a String cannot fail");
    for (i, r) in reports.iter().enumerate() {
        let sep = if i + 1 < reports.len() { "," } else { "" };
        // Phase keys are self-describing: `*_end` values are absolute
        // completion cycles, `*_cycles` are durations, and
        // cycles == scan_end + gather_cycles.
        write!(
            out,
            "\n        \"{}\": {{\"cycles\": {}, \"dispatch_end\": {}, \"scan_end\": {}, \
             \"gather_cycles\": {}, \"dram_pj\": {:.1}, \"link_pj\": {:.1}, \
             \"logic_pj\": {:.1}, \"total_pj\": {:.1}}}{sep}",
            r.arch,
            r.cycles,
            r.phases.dispatch,
            r.phases.scan,
            r.phases.gather_aggregate,
            r.energy.dram_pj(),
            r.energy.link_pj(),
            r.energy.logic_pj(),
            r.energy.total_pj(),
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\n      }\n    }");
    out
}

/// Renders one zone-map skip point: per-arch objects carrying the
/// pruned run's cycles, phase ends and region counters alongside the
/// unpruned baseline's as `base_*` fields, so `check_figures` can
/// compare the two runs of the same query without a second row.
fn skip_json_point(
    name: &str,
    query: &Query,
    pruned: &[RunReport],
    full: &[RunReport],
    wall_ms: f64,
) -> String {
    let mut out = String::new();
    let sel = pruned[0].selectivity();
    write!(
        out,
        "    {{\n      \"name\": \"{name}\",\n      \"query\": \"{query}\",\n      \
         \"selectivity\": {sel:.6},\n      \"host_ms\": {wall_ms:.3},\n      \"archs\": {{"
    )
    .expect("writing to a String cannot fail");
    for (i, (p, u)) in pruned.iter().zip(full).enumerate() {
        let sep = if i + 1 < pruned.len() { "," } else { "" };
        write!(
            out,
            "\n        \"{}\": {{\"cycles\": {}, \"dispatch_end\": {}, \"scan_end\": {}, \
             \"gather_cycles\": {}, \"regions_scanned\": {}, \"regions_pruned\": {}, \
             \"base_cycles\": {}, \"base_dispatch_end\": {}, \"base_scan_end\": {}}}{sep}",
            p.arch,
            p.cycles,
            p.phases.dispatch,
            p.phases.scan,
            p.phases.gather_aggregate,
            p.regions_scanned,
            p.regions_pruned,
            u.cycles,
            u.phases.dispatch,
            u.phases.scan,
        )
        .expect("writing to a String cannot fail");
    }
    out.push_str("\n      }\n    }");
    out
}

/// Renders one service-sweep point. No per-arch objects here — the
/// row describes the service (throughput + latency percentiles + the
/// failover counters), and every integer field is digit-parseable by
/// `check_figures`. `extra` carries additional pre-indented
/// `"key": value,` lines (the `serve_fail` answer digests).
fn serve_json_point(name: &str, report: &ServiceReport, extra: &str, wall_ms: f64) -> String {
    format!(
        "    {{\n      \"name\": \"{name}\",\n      \"shards\": {},\n      \
         \"replicas\": {},\n      \"queries\": {},\n      \"makespan_cycles\": {},\n      \
         \"queries_per_gigacycle\": {},\n      \"p50_cycles\": {},\n      \
         \"p95_cycles\": {},\n      \"p99_cycles\": {},\n      \
         \"failovers\": {},\n      \"redispatched\": {},\n{extra}      \
         \"host_ms\": {wall_ms:.3}\n    }}",
        report.shards,
        report.replicas,
        report.queries,
        report.makespan,
        report.queries_per_gigacycle(),
        report.latency.p50,
        report.latency.p95,
        report.latency.p99,
        report.failovers,
        report.redispatched,
    )
}

/// Assembles the sweep document.
fn render_json(rows: usize, points: &[String]) -> String {
    let archs: Vec<String> = Arch::ALL.iter().map(|a| format!("\"{a}\"")).collect();
    format!(
        "{{\n  \"bench\": \"figures\",\n  \"rows\": {rows},\n  \"seed\": {SEED},\n  \
         \"workers\": {},\n  \"archs\": [{}],\n  \"points\": [\n{}\n  ]\n}}\n",
        hipe_bench::bench_workers(),
        archs.join(", "),
        points.join(",\n")
    )
}
