//! Paper-figure sweep: baseline vs HIPE over scan selectivities.
//!
//! Reproduces the shape of the paper's evaluation on the select-scan
//! workload: for each selectivity point the same query runs end to end
//! on the x86 baseline and on HIPE, and the table reports simulated
//! cycles, speedup and DRAM/link energy ratios, plus the simulator's
//! own wall time per run (the quantity the `components` benchmarks
//! bound from below).
//!
//! Run with `cargo bench -p hipe-bench --bench figures`; scale the
//! table with `HIPE_BENCH_ROWS`.

use hipe::{Arch, System};
use hipe_db::Query;
use std::time::Instant;

fn main() {
    let rows = hipe_bench::bench_rows();
    let sys = System::new(rows, 2018);
    println!("# baseline-vs-HIPE select scan sweep, {rows} rows");
    println!(
        "{:<12} {:>6} {:>12} {:>12} {:>8} {:>8} {:>8} {:>12}",
        "query", "sel%", "x86_cycles", "hipe_cycles", "speedup", "dramE", "linkE", "sim_wall_ms"
    );

    // Quantity is uniform in 1..=50, so achievable selectivities move
    // in 2 % steps; permille 0 is the all-squash extreme.
    let mut points: Vec<(String, Query)> = [0, 20, 60, 100, 300, 500, 1000]
        .into_iter()
        .map(|pm| {
            (
                format!("sel_{:.0}%", pm as f64 / 10.0),
                Query::quantity_below_permille(pm),
            )
        })
        .collect();
    points.push(("q6".to_string(), Query::q6()));

    for (name, query) in points {
        let start = Instant::now();
        let base = sys.run(Arch::HostX86, &query);
        let hipe = sys.run(Arch::Hipe, &query);
        let wall = start.elapsed();
        assert_eq!(
            base.result.bitmask, hipe.result.bitmask,
            "architectures diverged on {name}"
        );
        println!(
            "{:<12} {:>6.2} {:>12} {:>12} {:>7.2}x {:>8.2} {:>8.2} {:>12.1}",
            name,
            100.0 * hipe.selectivity(),
            base.cycles,
            hipe.cycles,
            hipe.speedup_over(&base),
            hipe.energy.dram_pj() / base.energy.dram_pj(),
            hipe.energy.link_pj() / base.energy.link_pj(),
            wall.as_secs_f64() * 1e3,
        );
    }
}
