//! Standalone data-plane rate report: materialization GB/s, table
//! generation Mrows/s and engine Minstr/s, measured exactly as the
//! figures bench records them in the `perf_*` JSON rows.
//!
//! Run with `cargo bench -p hipe-bench --bench perf_rates`; scale the
//! measured table with `HIPE_BENCH_ROWS` / `HIPE_BENCH_SF` (capped at
//! [`hipe_bench::perf::PERF_ROWS_CAP`] rows), the time budget with
//! `HIPE_BENCH_MS`, and the generation fan-out with `HIPE_WORKERS`.

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use hipe_bench::perf::{measure, PERF_ROWS_CAP};
use hipe_sim::WorkerPool;

const SEED: u64 = 2018;

fn main() {
    hipe_bench::print_header("perf_rates");
    let rows = hipe_bench::bench_rows().min(PERF_ROWS_CAP);
    let pool = WorkerPool::from_env();
    println!("# data-plane rates over {rows} rows (cap {PERF_ROWS_CAP})");
    println!(
        "{:<20} {:>8} {:>14} {:>16} {:>12} {:>12}",
        "point", "unit", "work/iter", "rate_per_s", "headline", "host_ms"
    );
    for r in measure(rows, SEED, hipe_bench::target_duration(), &pool) {
        println!(
            "{:<20} {:>8} {:>14} {:>16} {:>9.3} {:<3} {:>10.1}",
            r.name,
            r.unit,
            r.work,
            r.rate_per_s,
            r.headline(),
            r.headline_unit(),
            r.host_ms,
        );
    }
}
