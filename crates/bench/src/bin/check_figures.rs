//! CI schema check for `BENCH_figures.json`.
//!
//! The `figures` bench emits the four-machine sweep as hand-rendered
//! JSON; this binary re-reads the emitted file and fails the pipeline
//! if the schema drifts — in particular it requires the aggregate
//! sweep (the `agg_*` points plus `q6`) to be present with all four
//! architectures and non-empty phase breakdowns, so a regression that
//! silently drops the fused-aggregate rows (or zeroes their cycles)
//! cannot pass CI. The partitioned-execution sweep (`par_1` through
//! `par_8`, HIVE/HIPE only) is validated for presence and for
//! *monotonically non-increasing* cycles and scan ends as the engine
//! count grows — a regression that makes more engines slower fails
//! the pipeline.
//!
//! The sharded service sweep (`serve_1` / `serve_2` / `serve_4` /
//! `serve_4x2`, emitted by the `hipe-serve` scheduler) is validated
//! for presence, ordered latency percentiles, and *monotonically
//! non-decreasing* throughput (queries per gigacycle) as the cube
//! count grows — a regression where adding cubes slows the service
//! down fails CI. The replication point `serve_4x2` must additionally
//! reach at least 1.7x of `serve_4`'s throughput (one sub-query per
//! replica means two replicas serve nearly twice the load), and the
//! failover point `serve_fail` must have actually failed over
//! (`failovers` ≥ 1), served every query, and produced per-arch
//! answer digests equal to its fault-free counterparts — the
//! machine-checked form of "failover is bit-identical".
//!
//! The zone-map skip sweep (`skip_1%` / `skip_3%` / `skip_10%`) pairs
//! a pruned and an unpruned run of the same clustered-shipdate window
//! in one row (`base_*` fields are the unpruned baseline). Every
//! machine must have pruned something (`regions_pruned` ≥ 1) and must
//! not be slower pruned than unpruned; the ≤ 3 % selectivity rows
//! must additionally cut both the scan and the dispatch completion
//! cycle by at least 1.5x. The `serve_skip` row must report at least
//! one shard never scattered to, at no cycle cost over the full
//! scatter — a data-skipping regression fails CI.
//!
//! The data-plane rate rows (`perf_materialize` / `perf_generate` /
//! `perf_engine`) record the host-side throughput of the zero-copy
//! hot paths: each must be present and report a positive work size
//! and a positive integer rate — a rate of zero means the measured
//! path produced nothing (or the recording harness broke), and a
//! missing row means the sweep silently dropped its throughput
//! tracking.
//!
//! Every point must also record its host wall-clock as a `host_ms`
//! field — the simulator-speed trajectory is part of the schema — and
//! the `host_par` row (the same four-arch batch and 4-shard scatter on
//! a 1-worker and a 4-worker pool) must show equal result digests for
//! both legs (parallel co-simulation is bit-identical to serial) and
//! parallel legs no slower than the serial ones. The wall-clock half
//! of that contract is only enforced when the recording host reported
//! `host_cpus` ≥ 2 — a single-core runner cannot demonstrate a
//! speedup, only determinism.
//!
//! With `--trace [PATH]` the binary validates a Chrome trace written
//! by `trace_dump` (default `BENCH_trace.json` at the workspace root)
//! instead of the figures document: every event line must parse, sync
//! spans on each track must nest (a child may not straddle its
//! parent's end) and end inside the recorded makespan, async
//! begin/end pairs must balance id-for-id, and the event population
//! must reconcile exactly with the `ServiceReport` counters embedded
//! in `otherData` — one async lifetime span per query served, one
//! `fault.kill` instant per failover, one `redispatch` instant per
//! lost sub-query, and a total event count matching the recorder's.
//!
//! Usage: run the `figures` bench first, then
//! `cargo run -p hipe-bench --bin check_figures`. The file location
//! follows the bench's convention: `HIPE_BENCH_JSON` if set, else
//! `BENCH_figures.json` at the workspace root.
//!
//! The parser is intentionally a small line scanner (the workspace is
//! offline: no serde); it understands exactly the shape the bench
//! writes.

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use std::process::ExitCode;

/// The architecture labels every selectivity point must report, in
/// sweep order.
const ARCHS: [&str; 4] = ["x86", "HMC-ISA", "HIVE", "HIPE"];

/// Point names that make up the aggregate sweep.
const AGGREGATE_POINTS: [&str; 4] = ["agg_2%", "agg_10%", "agg_50%", "q6"];

/// The logic machines the partition sweep reports.
const LOGIC_ARCHS: [&str; 2] = ["HIVE", "HIPE"];

/// Point names of the partitioned-execution sweep, in engine-count
/// order (cycles must not increase along this list).
const PARTITION_POINTS: [&str; 4] = ["par_1", "par_2", "par_4", "par_8"];

/// Point names of the sharded service sweep, in cube-count order
/// (throughput must not decrease along this list; the last point
/// doubles the shards of `serve_4` into replicas).
const SERVE_POINTS: [&str; 4] = ["serve_1", "serve_2", "serve_4", "serve_4x2"];

/// Point names of the zone-map skip sweep, in selectivity order.
const SKIP_POINTS: [&str; 3] = ["skip_1%", "skip_3%", "skip_10%"];

/// Skip points at ≤ 3 % selectivity: these owe a ≥ 1.5x reduction in
/// both scan and dispatch completion cycles on every machine.
const SKIP_TIGHT_POINTS: [&str; 2] = ["skip_1%", "skip_3%"];

/// Data-plane rate rows recorded by the figures bench (host-side
/// throughput of the zero-copy hot paths).
const PERF_POINTS: [&str; 3] = ["perf_materialize", "perf_generate", "perf_engine"];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(at) = args.iter().position(|a| a == "--trace") {
        let path = args.get(at + 1).cloned().unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json").into()
        });
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => return fail(&format!("cannot read {path}: {e} (run trace_dump first)")),
        };
        return match check_trace(&text) {
            Ok((events, queries)) => {
                println!(
                    "check_figures: {path} ok ({events} trace events, \
                     {queries} query spans reconciled)"
                );
                ExitCode::SUCCESS
            }
            Err(e) => fail(&e),
        };
    }
    if let Some(unknown) = args.first() {
        return fail(&format!(
            "unknown argument `{unknown}` (only --trace [PATH] is accepted)"
        ));
    }
    let path = std::env::var("HIPE_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figures.json").into()
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return fail(&format!(
                "cannot read {path}: {e} (run the figures bench first)"
            ))
        }
    };
    match check(&text) {
        Ok(points) => {
            println!("check_figures: {path} ok ({points} points, aggregate sweep present)");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_figures: FAIL: {msg}");
    ExitCode::FAILURE
}

/// Validates the document; returns the number of points on success.
fn check(text: &str) -> Result<usize, String> {
    if !text.contains("\"bench\": \"figures\"") {
        return Err("not a figures document (missing \"bench\": \"figures\")".into());
    }
    let archs_line = format!(
        "\"archs\": [{}]",
        ARCHS.map(|a| format!("\"{a}\"")).join(", ")
    );
    if !text.contains(&archs_line) {
        return Err(format!("arch list drifted (expected {archs_line})"));
    }

    // Each point starts with its "name" key; everything up to the next
    // "name" (or EOF) is that point's block.
    let blocks: Vec<(String, &str)> = text
        .match_indices("\"name\": \"")
        .map(|(at, pat)| {
            let name_start = at + pat.len();
            let name_end = text[name_start..]
                .find('"')
                .map(|i| name_start + i)
                .unwrap_or(text.len());
            let block_end = text[name_end..]
                .find("\"name\": \"")
                .map(|i| name_end + i)
                .unwrap_or(text.len());
            (text[name_start..name_end].to_string(), &text[at..block_end])
        })
        .collect();
    if blocks.is_empty() {
        return Err("no sweep points found".into());
    }

    for (name, block) in &blocks {
        // Service-sweep points describe the scheduler, the
        // host-parallel row describes the simulator, and the perf rows
        // describe host data-plane rates, not per-arch runs; their own
        // fields are validated below.
        if name.starts_with("serve_") || name.starts_with("perf_") || name == "host_par" {
            continue;
        }
        // Partition-sweep points carry only the logic machines.
        let archs: &[&str] = if name.starts_with("par_") {
            &LOGIC_ARCHS
        } else {
            &ARCHS
        };
        for &arch in archs {
            let cycles = arch_field(block, arch, "cycles")
                .ok_or_else(|| format!("point {name}: arch {arch} missing or lacks cycles"))?;
            let scan = arch_field(block, arch, "scan_end")
                .ok_or_else(|| format!("point {name}: arch {arch} lacks scan_end"))?;
            if cycles == 0 || scan == 0 {
                return Err(format!("point {name}: arch {arch} has empty phases"));
            }
        }
    }

    for wanted in AGGREGATE_POINTS {
        let (_, block) = blocks
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("aggregate sweep point {wanted} missing"))?;
        for arch in ARCHS {
            let gather = arch_field(block, arch, "gather_cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks gather_cycles"))?;
            if gather == 0 {
                return Err(format!(
                    "point {wanted}: arch {arch} reports a zero-cycle aggregate phase"
                ));
            }
        }
    }

    // Partition sweep: all four engine counts present, and on both
    // logic machines scan ends and total cycles fall monotonically
    // (non-increasing) with the engine count.
    for arch in LOGIC_ARCHS {
        let mut prev = (u64::MAX, u64::MAX);
        for wanted in PARTITION_POINTS {
            let (_, block) = blocks
                .iter()
                .find(|(name, _)| name == wanted)
                .ok_or_else(|| format!("partition sweep point {wanted} missing"))?;
            let cycles = arch_field(block, arch, "cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks cycles"))?;
            let scan = arch_field(block, arch, "scan_end")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks scan_end"))?;
            if scan > prev.0 || cycles > prev.1 {
                return Err(format!(
                    "point {wanted}: {arch} got slower with more engines \
                     (scan {} -> {scan}, cycles {} -> {cycles})",
                    prev.0, prev.1
                ));
            }
            prev = (scan, cycles);
        }
    }

    // Service sweep: every cube count present, throughput monotone
    // non-decreasing in cube count, percentiles present and ordered.
    let mut prev_qpgc = 0;
    let mut serve_4_qpgc = 0;
    let mut serve_4x2_qpgc = 0;
    for wanted in SERVE_POINTS {
        let (_, block) = blocks
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("service sweep point {wanted} missing"))?;
        let qpgc = point_field(block, "queries_per_gigacycle")
            .ok_or_else(|| format!("point {wanted} lacks queries_per_gigacycle"))?;
        if qpgc == 0 {
            return Err(format!("point {wanted}: zero service throughput"));
        }
        if qpgc < prev_qpgc {
            return Err(format!(
                "point {wanted}: throughput fell with more cubes \
                 ({prev_qpgc} -> {qpgc} q/Gcyc)"
            ));
        }
        prev_qpgc = qpgc;
        match wanted {
            "serve_4" => serve_4_qpgc = qpgc,
            "serve_4x2" => serve_4x2_qpgc = qpgc,
            _ => {}
        }
        let p50 = point_field(block, "p50_cycles")
            .ok_or_else(|| format!("point {wanted} lacks p50_cycles"))?;
        let p95 = point_field(block, "p95_cycles")
            .ok_or_else(|| format!("point {wanted} lacks p95_cycles"))?;
        let p99 = point_field(block, "p99_cycles")
            .ok_or_else(|| format!("point {wanted} lacks p99_cycles"))?;
        if p50 == 0 || p50 > p95 || p95 > p99 {
            return Err(format!(
                "point {wanted}: latency percentiles disordered \
                 (p50 {p50}, p95 {p95}, p99 {p99})"
            ));
        }
    }

    // Replication: two replicas per shard must buy at least 1.7x of
    // the single-replica throughput (integer-only: qpgc_4x2 / qpgc_4
    // >= 17/10), and the point must really carry two replicas.
    let (_, block_4x2) = blocks
        .iter()
        .find(|(name, _)| name == "serve_4x2")
        .expect("presence checked in the sweep loop");
    if point_field(block_4x2, "replicas") != Some(2) {
        return Err("point serve_4x2 does not report 2 replicas".into());
    }
    if serve_4x2_qpgc * 10 < serve_4_qpgc * 17 {
        return Err(format!(
            "point serve_4x2: replication speedup below 1.7x \
             ({serve_4_qpgc} -> {serve_4x2_qpgc} q/Gcyc)"
        ));
    }
    let queries_4x2 = point_field(block_4x2, "queries").ok_or("point serve_4x2 lacks queries")?;

    // Failover: the kill actually fired, every query was still
    // served, and on every architecture the answer digest equals the
    // fault-free run's — bit-identical failover, machine-checked.
    let (_, fail) = blocks
        .iter()
        .find(|(name, _)| name == "serve_fail")
        .ok_or("failover point serve_fail missing")?;
    let failovers = point_field(fail, "failovers").ok_or("point serve_fail lacks failovers")?;
    if failovers == 0 {
        return Err("point serve_fail: no failover fired (the fault was a no-op)".into());
    }
    point_field(fail, "redispatched").ok_or("point serve_fail lacks redispatched")?;
    let queries_fail = point_field(fail, "queries").ok_or("point serve_fail lacks queries")?;
    if queries_fail != queries_4x2 {
        return Err(format!(
            "point serve_fail: lost queries under failover \
             ({queries_4x2} clean vs {queries_fail} with the fault)"
        ));
    }
    for arch in ARCHS {
        let clean = point_field(fail, &format!("digest_{arch}_clean"))
            .ok_or_else(|| format!("point serve_fail lacks digest_{arch}_clean"))?;
        let fault = point_field(fail, &format!("digest_{arch}_fault"))
            .ok_or_else(|| format!("point serve_fail lacks digest_{arch}_fault"))?;
        if clean != fault {
            return Err(format!(
                "point serve_fail: {arch} answer digest changed under failover \
                 ({clean} clean vs {fault} with the fault)"
            ));
        }
    }

    // Zone-map skip sweep: each point carries a pruned run next to its
    // unpruned baseline. Pruning must have fired on every machine, must
    // never cost cycles, and at <= 3 % selectivity must cut both scan
    // and dispatch completion by at least 1.5x (integer-only:
    // base * 10 >= pruned * 15).
    for wanted in SKIP_POINTS {
        let (_, block) = blocks
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("zone-map skip point {wanted} missing"))?;
        let tight = SKIP_TIGHT_POINTS.contains(&wanted);
        for arch in ARCHS {
            let cycles = arch_field(block, arch, "cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks cycles"))?;
            let base_cycles = arch_field(block, arch, "base_cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks base_cycles"))?;
            if cycles > base_cycles {
                return Err(format!(
                    "point {wanted}: {arch} pruned run slower than unpruned \
                     ({base_cycles} -> {cycles} cycles)"
                ));
            }
            let pruned = arch_field(block, arch, "regions_pruned")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks regions_pruned"))?;
            if pruned == 0 {
                return Err(format!("point {wanted}: {arch} pruned no regions"));
            }
            if tight {
                let scan = arch_field(block, arch, "scan_end")
                    .ok_or_else(|| format!("point {wanted}: arch {arch} lacks scan_end"))?;
                let base_scan = arch_field(block, arch, "base_scan_end")
                    .ok_or_else(|| format!("point {wanted}: arch {arch} lacks base_scan_end"))?;
                let dispatch = arch_field(block, arch, "dispatch_end")
                    .ok_or_else(|| format!("point {wanted}: arch {arch} lacks dispatch_end"))?;
                let base_dispatch =
                    arch_field(block, arch, "base_dispatch_end").ok_or_else(|| {
                        format!("point {wanted}: arch {arch} lacks base_dispatch_end")
                    })?;
                if base_scan * 10 < scan * 15 || base_dispatch * 10 < dispatch * 15 {
                    return Err(format!(
                        "point {wanted}: {arch} skip win below 1.5x \
                         (scan {base_scan} -> {scan}, dispatch {base_dispatch} -> {dispatch})"
                    ));
                }
            }
        }
    }

    // Serve skip row: the scatter path must really have skipped shards,
    // at no cycle cost over the full scatter.
    let (_, skip) = blocks
        .iter()
        .find(|(name, _)| name == "serve_skip")
        .ok_or("shard-skipping point serve_skip missing")?;
    let skipped =
        point_field(skip, "shards_skipped").ok_or("point serve_skip lacks shards_skipped")?;
    if skipped == 0 {
        return Err("point serve_skip: the scatter path skipped no shards".into());
    }
    let cycles = point_field(skip, "cycles").ok_or("point serve_skip lacks cycles")?;
    let base_cycles =
        point_field(skip, "base_cycles").ok_or("point serve_skip lacks base_cycles")?;
    if cycles > base_cycles {
        return Err(format!(
            "point serve_skip: shard skipping slower than the full scatter \
             ({base_cycles} -> {cycles} cycles)"
        ));
    }

    // Data-plane rate rows: every perf point present, with a positive
    // work size and a positive integer rate — a zero rate means the
    // measured hot path did no work per unit time (a recording bug or
    // a catastrophic regression either way).
    for wanted in PERF_POINTS {
        let (_, block) = blocks
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("data-plane rate point {wanted} missing"))?;
        let work =
            point_field(block, "work").ok_or_else(|| format!("point {wanted} lacks work"))?;
        if work == 0 {
            return Err(format!("point {wanted}: zero work per iteration"));
        }
        let rate = point_field(block, "rate_per_s")
            .ok_or_else(|| format!("point {wanted} lacks rate_per_s"))?;
        if rate == 0 {
            return Err(format!("point {wanted}: zero data-plane rate"));
        }
    }

    // Host wall-clock: every row must record how long the simulator
    // itself took (the figures track simulated cycles *and* the cost
    // of producing them).
    for (name, block) in &blocks {
        point_field(block, "host_ms")
            .ok_or_else(|| format!("point {name} lacks host_ms (host wall-clock)"))?;
    }

    // Host-parallel speedup row: both legs must have produced
    // bit-identical results (equal digests), and the 4-worker legs
    // must not be slower than the serial ones (millisecond-integer
    // comparison; the bench itself asserts the digests too). The
    // wall-clock requirement only applies when the recording host had
    // at least two CPUs — on a single-core runner the parallel leg
    // cannot win and the comparison is pure scheduler noise.
    let (_, par) = blocks
        .iter()
        .find(|(name, _)| name == "host_par")
        .ok_or("host-parallel point host_par missing")?;
    let workers = point_field(par, "workers").ok_or("point host_par lacks workers")?;
    if workers < 2 {
        return Err(format!(
            "point host_par: parallel leg ran on {workers} worker(s)"
        ));
    }
    let digest_serial =
        point_field(par, "digest_serial").ok_or("point host_par lacks digest_serial")?;
    let digest_parallel =
        point_field(par, "digest_parallel").ok_or("point host_par lacks digest_parallel")?;
    if digest_serial != digest_parallel {
        return Err(format!(
            "point host_par: parallel results diverged from serial \
             (digest {digest_serial} vs {digest_parallel})"
        ));
    }
    let host_cpus = point_field(par, "host_cpus").ok_or("point host_par lacks host_cpus")?;
    for leg in ["sweep", "scatter"] {
        let serial = point_field(par, &format!("{leg}_serial_ms"))
            .ok_or_else(|| format!("point host_par lacks {leg}_serial_ms"))?;
        let parallel = point_field(par, &format!("{leg}_parallel_ms"))
            .ok_or_else(|| format!("point host_par lacks {leg}_parallel_ms"))?;
        if host_cpus >= 2 && parallel > serial {
            return Err(format!(
                "point host_par: {leg} slower on {workers} workers than serial \
                 ({serial} ms -> {parallel} ms)"
            ));
        }
    }
    Ok(blocks.len())
}

/// Extracts top-level integer `field` from a point block.
///
/// The search stops at the nested per-arch object map (point-level
/// fields precede it), and a key only counts when it sits at a JSON
/// delimiter — `{`, `,`, or whitespace — so the same text inside a
/// string value (where the quote would be escaped) or in the middle
/// of a longer field name cannot satisfy it.
fn point_field(block: &str, field: &str) -> Option<u64> {
    let top = &block[..block.find("\"archs\": {").unwrap_or(block.len())];
    let key = format!("\"{field}\": ");
    let mut from = 0;
    while let Some(i) = top[from..].find(&key) {
        let at = from + i;
        let anchored = top[..at]
            .chars()
            .next_back()
            .is_none_or(|c| c == '{' || c == ',' || c.is_whitespace());
        if anchored {
            let digits: String = top[at + key.len()..]
                .chars()
                .take_while(char::is_ascii_digit)
                .collect();
            return digits.parse().ok();
        }
        from = at + key.len();
    }
    None
}

/// Extracts integer `field` from `arch`'s object within a point block.
fn arch_field(block: &str, arch: &str, field: &str) -> Option<u64> {
    let obj_at = block.find(&format!("\"{arch}\": {{"))?;
    let obj = &block[obj_at..block[obj_at..].find('}').map(|i| obj_at + i)?];
    let key = format!("\"{field}\": ");
    let at = obj.find(&key)? + key.len();
    let digits: String = obj[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------
// Trace validation (`--trace`): the Chrome trace written by trace_dump.
// ---------------------------------------------------------------------

/// Extracts integer `key` from the trace's `otherData` header. The
/// header grammar puts a space after the colon (`"key": 42`); event
/// lines use `"key":42` with no space, so the two scans cannot match
/// each other's fields.
fn other_num(head: &str, key: &str) -> Result<u64, String> {
    let pat = format!("\"{key}\": ");
    let at = head
        .find(&pat)
        .ok_or_else(|| format!("otherData is missing `{key}`"))?;
    let digits: String = head[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits
        .parse()
        .map_err(|_| format!("otherData `{key}` is not a non-negative integer"))
}

/// Extracts integer `key` from one event line (`"key":42`).
fn evt_num(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let rest = &line[line.find(&pat)? + pat.len()..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts string `key` from one event line (`"key":"value"`). The
/// structural fields this reads (`ph`, `name`) never contain escapes.
fn evt_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":\"");
    let rest = &line[line.find(&pat)? + pat.len()..];
    rest.find('"').map(|end| &rest[..end])
}

/// Validates a Chrome trace document; returns `(events, query spans)`
/// on success.
///
/// Checks, in order: every event line parses with the structural
/// fields its phase requires; sync spans on each track nest properly
/// (sorted by start, a span must close before the enclosing span's
/// end) and end within the recorded makespan; async begin/end events
/// pair one-to-one by id with `end.ts >= begin.ts`; and the event
/// population reconciles with the `ServiceReport` counters in
/// `otherData` — async spans on the `queries` track == queries
/// served, `fault.kill` instants == failovers, `redispatch` instants
/// == re-dispatched sub-queries, total events == the recorder's count.
fn check_trace(text: &str) -> Result<(u64, u64), String> {
    use std::collections::BTreeMap;

    let events_at = text
        .find("\"traceEvents\": [")
        .ok_or("not a trace document (missing \"traceEvents\" array)")?;
    let head = &text[..events_at];
    let queries = other_num(head, "queries")?;
    let failovers = other_num(head, "failovers")?;
    let redispatched = other_num(head, "redispatched")?;
    let events = other_num(head, "events")?;
    let makespan = other_num(head, "makespan_cyc")?;

    let mut queries_tid: Option<u64> = None;
    let mut sync_spans: BTreeMap<u64, Vec<(u64, u64)>> = BTreeMap::new();
    let mut begins: BTreeMap<u64, (u64, u64)> = BTreeMap::new(); // id -> (tid, ts)
    let mut ends: BTreeMap<u64, u64> = BTreeMap::new(); // id -> ts
    let (mut x_count, mut i_count, mut c_count) = (0u64, 0u64, 0u64);
    let (mut kills, mut redispatches) = (0u64, 0u64);

    for raw in text[events_at..].lines() {
        let line = raw.trim_start().trim_end_matches(',');
        if !line.starts_with("{\"ph\":\"") {
            continue;
        }
        let ph = evt_str(line, "ph").ok_or_else(|| format!("event has no phase: {line}"))?;
        if ph == "M" {
            if evt_str(line, "name") == Some("thread_name")
                && line.contains("\"args\":{\"name\":\"queries\"}")
            {
                queries_tid = Some(evt_num(line, "tid").ok_or("thread_name record without a tid")?);
            }
            continue;
        }
        let tid = evt_num(line, "tid").ok_or_else(|| format!("event has no tid: {line}"))?;
        let ts = evt_num(line, "ts").ok_or_else(|| format!("event has no ts: {line}"))?;
        match ph {
            "X" => {
                let dur = evt_num(line, "dur")
                    .ok_or_else(|| format!("complete event has no dur: {line}"))?;
                if ts + dur > makespan {
                    return Err(format!(
                        "span ends at {} cyc, past the {makespan} cyc makespan: {line}",
                        ts + dur
                    ));
                }
                sync_spans.entry(tid).or_default().push((ts, dur));
                x_count += 1;
            }
            "b" => {
                let id =
                    evt_num(line, "id").ok_or_else(|| format!("async begin has no id: {line}"))?;
                if begins.insert(id, (tid, ts)).is_some() {
                    return Err(format!("async id {id} begun twice"));
                }
            }
            "e" => {
                let id =
                    evt_num(line, "id").ok_or_else(|| format!("async end has no id: {line}"))?;
                if ts > makespan {
                    return Err(format!(
                        "async span ends at {ts} cyc, past the {makespan} cyc makespan: {line}"
                    ));
                }
                if ends.insert(id, ts).is_some() {
                    return Err(format!("async id {id} ended twice"));
                }
            }
            "i" => {
                match evt_str(line, "name") {
                    Some("fault.kill") => kills += 1,
                    Some("redispatch") => redispatches += 1,
                    Some(_) => {}
                    None => return Err(format!("instant has no name: {line}")),
                }
                i_count += 1;
            }
            "C" => {
                evt_num(line, "value").ok_or_else(|| format!("counter has no value: {line}"))?;
                c_count += 1;
            }
            other => return Err(format!("unknown phase `{other}`: {line}")),
        }
    }

    // Async begin/end pairs must balance id-for-id, time-ordered.
    if begins.len() != ends.len() {
        return Err(format!(
            "{} async begins but {} async ends",
            begins.len(),
            ends.len()
        ));
    }
    for (id, (_, b_ts)) in &begins {
        let e_ts = ends
            .get(id)
            .ok_or_else(|| format!("async id {id} begins but never ends"))?;
        if e_ts < b_ts {
            return Err(format!(
                "async id {id} ends at {e_ts}, before its begin at {b_ts}"
            ));
        }
    }

    // Sync spans on each track must nest: sorted by (start asc, dur
    // desc), every span must close before the innermost still-open
    // enclosing span does.
    for (tid, spans) in sync_spans.iter_mut() {
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut open: Vec<u64> = Vec::new();
        for &(ts, dur) in spans.iter() {
            while let Some(&end) = open.last() {
                if end <= ts {
                    open.pop();
                } else {
                    break;
                }
            }
            if let Some(&end) = open.last() {
                if ts + dur > end {
                    return Err(format!(
                        "track {tid}: span [{ts}, {}] straddles its parent's end at {end}",
                        ts + dur
                    ));
                }
            }
            open.push(ts + dur);
        }
    }

    // The events must reconcile with the ServiceReport counters.
    let qtid = queries_tid.ok_or("no `queries` track in the metadata records")?;
    let query_spans = begins.values().filter(|(tid, _)| *tid == qtid).count() as u64;
    if query_spans != queries {
        return Err(format!(
            "{query_spans} query lifetime spans for {queries} queries served"
        ));
    }
    if kills != failovers {
        return Err(format!(
            "{kills} fault.kill instants for {failovers} failover(s)"
        ));
    }
    if redispatches != redispatched {
        return Err(format!(
            "{redispatches} redispatch instants for {redispatched} re-dispatched sub-queries"
        ));
    }
    let total = x_count + i_count + c_count + begins.len() as u64;
    if total != events {
        return Err(format!(
            "decoded {total} events, the recorder wrote {events}"
        ));
    }
    Ok((total, query_spans))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_arch_point(name: &str, gather: u64) -> String {
        let archs: Vec<String> = ARCHS
            .iter()
            .map(|a| {
                format!(
                    "\"{a}\": {{\"cycles\": 100, \"dispatch_end\": 1, \"scan_end\": 90, \
                     \"gather_cycles\": {gather}}}"
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{name}\", \"host_ms\": 12.500, \"archs\": {{{}}}}}",
            archs.join(", ")
        )
    }

    fn par_point(name: &str, cycles: u64) -> String {
        let archs: Vec<String> = LOGIC_ARCHS
            .iter()
            .map(|a| {
                format!(
                    "\"{a}\": {{\"cycles\": {cycles}, \"dispatch_end\": 1, \
                     \"scan_end\": {}, \"gather_cycles\": 5}}",
                    cycles - 10
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{name}\", \"host_ms\": 8.125, \"archs\": {{{}}}}}",
            archs.join(", ")
        )
    }

    fn serve_point(name: &str, replicas: u64, qpgc: u64, p50: u64, p95: u64, p99: u64) -> String {
        format!(
            "{{\"name\": \"{name}\", \"shards\": 1, \"replicas\": {replicas}, \
             \"queries\": 96, \"makespan_cycles\": 1000, \"queries_per_gigacycle\": {qpgc}, \
             \"p50_cycles\": {p50}, \"p95_cycles\": {p95}, \"p99_cycles\": {p99}, \
             \"failovers\": 0, \"redispatched\": 0, \"host_ms\": 20.000}}"
        )
    }

    fn fail_point(queries: u64, failovers: u64, hipe_fault_digest: u64) -> String {
        let digests: Vec<String> = ARCHS
            .iter()
            .map(|a| {
                let fault = if *a == "HIPE" { hipe_fault_digest } else { 11 };
                format!("\"digest_{a}_clean\": 11, \"digest_{a}_fault\": {fault}")
            })
            .collect();
        format!(
            "{{\"name\": \"serve_fail\", \"shards\": 4, \"replicas\": 2, \
             \"queries\": {queries}, \"makespan_cycles\": 1000, \
             \"queries_per_gigacycle\": 700, \"p50_cycles\": 100, \"p95_cycles\": 200, \
             \"p99_cycles\": 300, \"failovers\": {failovers}, \"redispatched\": 6, \
             \"host_ms\": 31.000, {}}}",
            digests.join(", ")
        )
    }

    /// A skip point whose pruned phases all complete at `scan` and
    /// whose unpruned baseline completes at `base`.
    fn skip_point(name: &str, scan: u64, base: u64) -> String {
        let archs: Vec<String> = ARCHS
            .iter()
            .map(|a| {
                format!(
                    "\"{a}\": {{\"cycles\": {scan}, \"dispatch_end\": {scan}, \
                     \"scan_end\": {scan}, \"gather_cycles\": 0, \"regions_scanned\": 2, \
                     \"regions_pruned\": 62, \"base_cycles\": {base}, \
                     \"base_dispatch_end\": {base}, \"base_scan_end\": {base}}}"
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{name}\", \"host_ms\": 6.250, \"archs\": {{{}}}}}",
            archs.join(", ")
        )
    }

    fn serve_skip_point(skipped: u64, cycles: u64, base: u64) -> String {
        format!(
            "{{\"name\": \"serve_skip\", \"shards\": 4, \"shards_skipped\": {skipped}, \
             \"cycles\": {cycles}, \"base_cycles\": {base}, \"host_ms\": 4.750}}"
        )
    }

    fn perf_point(name: &str, unit: &str, work: u64, rate: u64) -> String {
        format!(
            "{{\"name\": \"{name}\", \"unit\": \"{unit}\", \"work\": {work}, \
             \"rate_per_s\": {rate}, \"host_ms\": 2.375}}"
        )
    }

    fn host_par_point(sweep: (u64, u64), scatter: (u64, u64), digests: (u64, u64)) -> String {
        format!(
            "{{\"name\": \"host_par\", \"workers\": 4, \"host_cpus\": 8, \
             \"sweep_serial_ms\": {}.210, \"sweep_parallel_ms\": {}.125, \
             \"scatter_serial_ms\": {}.300, \"scatter_parallel_ms\": {}.400, \
             \"digest_serial\": {}, \"digest_parallel\": {}, \"host_ms\": 99.000}}",
            sweep.0, sweep.1, scatter.0, scatter.1, digests.0, digests.1
        )
    }

    fn doc_full(gather_q6: u64, par_cycles: [u64; 4], serve_qpgc: [u64; 4]) -> String {
        let mut points = vec![
            four_arch_point("sel_2%", 0),
            four_arch_point("agg_2%", 7),
            four_arch_point("agg_10%", 7),
            four_arch_point("agg_50%", 7),
            four_arch_point("q6", gather_q6),
        ];
        for (name, cycles) in PARTITION_POINTS.iter().zip(par_cycles) {
            points.push(par_point(name, cycles));
        }
        for (name, qpgc) in SERVE_POINTS.iter().zip(serve_qpgc) {
            let replicas = if *name == "serve_4x2" { 2 } else { 1 };
            points.push(serve_point(name, replicas, qpgc, 100, 200, 300));
        }
        points.push(fail_point(96, 1, 11));
        // Distinct bases keep the skip rows individually addressable
        // by the failure-injection tests' string replacements.
        points.push(skip_point("skip_1%", 10, 300));
        points.push(skip_point("skip_3%", 20, 200));
        points.push(skip_point("skip_10%", 60, 100));
        points.push(serve_skip_point(3, 40, 90));
        points.push(host_par_point((100, 30), (80, 25), (42, 42)));
        points.push(perf_point(
            "perf_materialize",
            "bytes",
            1 << 20,
            5_000_000_000,
        ));
        points.push(perf_point("perf_generate", "rows", 32_768, 60_000_000));
        points.push(perf_point("perf_engine", "instr", 98_304, 20_000_000));
        format!(
            "{{\"bench\": \"figures\", \"archs\": [\"x86\", \"HMC-ISA\", \"HIVE\", \"HIPE\"], \
             \"points\": [{}]}}",
            points.join(", ")
        )
    }

    fn doc_with(gather_q6: u64, par_cycles: [u64; 4]) -> String {
        doc_full(gather_q6, par_cycles, [100, 180, 300, 600])
    }

    fn doc(gather_q6: u64) -> String {
        doc_with(gather_q6, [800, 400, 200, 100])
    }

    #[test]
    fn accepts_a_complete_document() {
        assert_eq!(check(&doc(10)), Ok(22));
    }

    #[test]
    fn rejects_a_point_without_host_wall_clock() {
        // serve_skip's host_ms is uniquely valued in the fixture.
        let text = doc(10).replace(", \"host_ms\": 4.750", "");
        let err = check(&text).unwrap_err();
        assert!(
            err.contains("serve_skip") && err.contains("host_ms"),
            "{err}"
        );
    }

    #[test]
    fn rejects_a_missing_host_par_row() {
        // Renamed to a serve_-prefixed point so only the host_par
        // presence check can fire.
        let text = doc(10).replace("\"name\": \"host_par\"", "\"name\": \"serve_extra\"");
        assert!(check(&text).unwrap_err().contains("host_par missing"));
    }

    #[test]
    fn rejects_parallel_results_diverging_from_serial() {
        let text = doc(10).replace("\"digest_parallel\": 42", "\"digest_parallel\": 43");
        let err = check(&text).unwrap_err();
        assert!(err.contains("diverged from serial"), "{err}");
    }

    #[test]
    fn rejects_a_parallel_sweep_slower_than_serial() {
        let text = doc(10).replace(
            "\"sweep_parallel_ms\": 30.125",
            "\"sweep_parallel_ms\": 101.125",
        );
        let err = check(&text).unwrap_err();
        assert!(err.contains("sweep slower on 4 workers"), "{err}");
        let text = doc(10).replace(
            "\"scatter_parallel_ms\": 25.400",
            "\"scatter_parallel_ms\": 81.400",
        );
        let err = check(&text).unwrap_err();
        assert!(err.contains("scatter slower on 4 workers"), "{err}");
    }

    #[test]
    fn accepts_a_slow_parallel_leg_on_a_single_core_host() {
        // One recording CPU: the wall-clock requirement is waived
        // (the digests still must match).
        let text = doc(10)
            .replace("\"host_cpus\": 8", "\"host_cpus\": 1")
            .replace(
                "\"sweep_parallel_ms\": 30.125",
                "\"sweep_parallel_ms\": 101.125",
            );
        assert_eq!(check(&text), Ok(22));
    }

    #[test]
    fn rejects_a_missing_perf_rate_row() {
        let text = doc(10).replace("perf_generate", "perf_generate_v2");
        let err = check(&text).unwrap_err();
        assert!(err.contains("perf_generate missing"), "{err}");
    }

    #[test]
    fn rejects_a_zero_perf_rate() {
        let text = doc(10).replace("\"rate_per_s\": 20000000", "\"rate_per_s\": 0");
        let err = check(&text).unwrap_err();
        assert!(
            err.contains("perf_engine") && err.contains("zero data-plane rate"),
            "{err}"
        );
        let text = doc(10).replace("\"work\": 32768", "\"work\": 0");
        let err = check(&text).unwrap_err();
        assert!(
            err.contains("perf_generate") && err.contains("zero work"),
            "{err}"
        );
    }

    #[test]
    fn rejects_a_host_par_row_without_host_cpus() {
        let text = doc(10).replace("\"host_cpus\": 8, ", "");
        let err = check(&text).unwrap_err();
        assert!(err.contains("host_cpus"), "{err}");
    }

    #[test]
    fn rejects_a_serial_host_par_leg() {
        let text = doc(10).replace(
            "\"name\": \"host_par\", \"workers\": 4",
            "\"name\": \"host_par\", \"workers\": 1",
        );
        let err = check(&text).unwrap_err();
        assert!(err.contains("1 worker"), "{err}");
    }

    #[test]
    fn rejects_missing_aggregate_points() {
        let text = doc(10).replace("agg_10%", "agg_renamed");
        assert!(check(&text).unwrap_err().contains("agg_10%"));
    }

    #[test]
    fn rejects_empty_aggregate_phase() {
        assert!(check(&doc(0)).unwrap_err().contains("zero-cycle"));
    }

    #[test]
    fn rejects_missing_arch() {
        let text = doc(10).replace("\"HIVE\": {\"cycles\": 100", "\"hive\": {\"cycles\": 100");
        assert!(check(&text).unwrap_err().contains("HIVE"));
    }

    #[test]
    fn rejects_missing_partition_points() {
        let text = doc(10).replace("par_4", "par_5");
        assert!(check(&text).unwrap_err().contains("par_4"));
    }

    #[test]
    fn rejects_more_engines_getting_slower() {
        // par_4 slower than par_2: the partition win regressed.
        let text = doc_with(10, [800, 400, 500, 100]);
        let err = check(&text).unwrap_err();
        assert!(err.contains("par_4") && err.contains("slower"), "{err}");
    }

    #[test]
    fn accepts_flat_partition_scaling() {
        // Non-increasing, not strictly decreasing, is acceptable (the
        // knee flattens once dispatch bandwidth saturates).
        assert!(check(&doc_with(10, [800, 400, 400, 400])).is_ok());
    }

    #[test]
    fn rejects_missing_serve_points() {
        let text = doc(10).replace("serve_2", "serve_3");
        assert!(check(&text).unwrap_err().contains("serve_2"));
    }

    #[test]
    fn rejects_throughput_falling_with_more_shards() {
        let text = doc_full(10, [800, 400, 200, 100], [100, 90, 300, 600]);
        let err = check(&text).unwrap_err();
        assert!(err.contains("serve_2") && err.contains("fell"), "{err}");
    }

    #[test]
    fn accepts_flat_service_scaling() {
        // Non-decreasing, not strictly increasing, is acceptable for
        // the *shard* points (a tiny table can saturate the front end
        // before the shards); the replication point still owes 1.7x.
        assert!(check(&doc_full(10, [800, 400, 200, 100], [100, 100, 100, 170])).is_ok());
    }

    #[test]
    fn rejects_zero_or_disordered_service_rows() {
        let text = doc_full(10, [800, 400, 200, 100], [0, 100, 200, 400]);
        assert!(check(&text)
            .unwrap_err()
            .contains("zero service throughput"));
        let text = doc(10).replace(
            "\"p95_cycles\": 200, \"p99_cycles\": 300",
            "\"p95_cycles\": 400, \"p99_cycles\": 300",
        );
        assert!(check(&text).unwrap_err().contains("disordered"));
    }

    #[test]
    fn rejects_replication_speedup_below_17x() {
        // 300 -> 400 q/Gcyc is monotone but short of the 1.7x the
        // second replica owes.
        let text = doc_full(10, [800, 400, 200, 100], [100, 180, 300, 400]);
        let err = check(&text).unwrap_err();
        assert!(err.contains("below 1.7x"), "{err}");
    }

    #[test]
    fn rejects_a_replication_point_without_two_replicas() {
        let text = doc(10).replace(
            "\"name\": \"serve_4x2\", \"shards\": 1, \"replicas\": 2",
            "\"name\": \"serve_4x2\", \"shards\": 1, \"replicas\": 1",
        );
        let err = check(&text).unwrap_err();
        assert!(err.contains("does not report 2 replicas"), "{err}");
    }

    #[test]
    fn rejects_a_failover_run_whose_fault_never_fired() {
        // "failovers": 1 appears only in the serve_fail point.
        let text = doc(10).replace("\"failovers\": 1", "\"failovers\": 0");
        let err = check(&text).unwrap_err();
        assert!(err.contains("no failover fired"), "{err}");
    }

    #[test]
    fn rejects_query_loss_under_failover() {
        let text = doc(10).replace(
            "\"queries\": 96, \"makespan_cycles\": 1000, \"queries_per_gigacycle\": 700",
            "\"queries\": 95, \"makespan_cycles\": 1000, \"queries_per_gigacycle\": 700",
        );
        let err = check(&text).unwrap_err();
        assert!(err.contains("lost queries"), "{err}");
    }

    #[test]
    fn rejects_an_answer_digest_changed_by_failover() {
        assert!(check(&doc(10)).is_ok());
        let err = check(
            &doc_full(10, [800, 400, 200, 100], [100, 180, 300, 600])
                .replace("\"digest_HIPE_fault\": 11", "\"digest_HIPE_fault\": 12"),
        )
        .unwrap_err();
        assert!(err.contains("HIPE answer digest changed"), "{err}");
        // A missing digest pair is as fatal as a mismatched one.
        let err = check(&doc(10).replace("digest_x86_clean", "digest_x86_gone")).unwrap_err();
        assert!(err.contains("digest_x86_clean"), "{err}");
    }

    #[test]
    fn rejects_missing_skip_points() {
        let text = doc(10).replace("skip_3%", "skip_33%");
        assert!(check(&text).unwrap_err().contains("skip_3%"));
    }

    #[test]
    fn rejects_pruning_costing_cycles() {
        // skip_10% carries base 100; dropping the baseline below the
        // pruned run's 60 cycles means pruning made the machine slower.
        let text = doc(10).replace("\"base_cycles\": 100", "\"base_cycles\": 40");
        let err = check(&text).unwrap_err();
        assert!(err.contains("skip_10%") && err.contains("slower"), "{err}");
    }

    #[test]
    fn rejects_a_skip_row_that_pruned_nothing() {
        let text = doc(10).replace("\"regions_pruned\": 62", "\"regions_pruned\": 0");
        let err = check(&text).unwrap_err();
        assert!(err.contains("pruned no regions"), "{err}");
    }

    #[test]
    fn rejects_a_skip_win_below_15x_at_low_selectivity() {
        // skip_3% prunes to 20 cycles against base 200; a baseline of
        // 25 leaves only a 1.25x scan win — short of the 1.5x owed at
        // <= 3 % selectivity. skip_10% owes no such margin.
        let text = doc(10).replace("\"base_scan_end\": 200", "\"base_scan_end\": 25");
        let err = check(&text).unwrap_err();
        assert!(
            err.contains("skip_3%") && err.contains("below 1.5x"),
            "{err}"
        );
        assert!(check(&doc(10).replace("\"base_scan_end\": 100", "\"base_scan_end\": 70")).is_ok());
    }

    #[test]
    fn rejects_a_scatter_path_that_never_skipped() {
        let text = doc(10).replace("\"shards_skipped\": 3", "\"shards_skipped\": 0");
        let err = check(&text).unwrap_err();
        assert!(err.contains("skipped no shards"), "{err}");
        let text = doc(10).replace("serve_skip", "serve_skap");
        assert!(check(&text).unwrap_err().contains("serve_skip"));
    }

    #[test]
    fn point_field_requires_a_delimited_top_level_key() {
        // The key's text inside a string value (escaped quotes) or as
        // the tail of a longer field name is not the field.
        let decoy = "{\"name\": \"serve_x\", \
                     \"note\": \"was \\\"queries_per_gigacycle\\\": 9\", \
                     \"old_queries_per_gigacycle\": 7}";
        assert_eq!(point_field(decoy, "queries_per_gigacycle"), None);
        // A real field parses whether preceded by `{`, `,` or a line
        // start, and an arch object's fields are out of scope.
        let real = "{\"p50_cycles\": 3,\n  \"p95_cycles\": 4, \"archs\": {\
                    \"HIPE\": {\"p99_cycles\": 9}}}";
        assert_eq!(point_field(real, "p50_cycles"), Some(3));
        assert_eq!(point_field(real, "p95_cycles"), Some(4));
        assert_eq!(point_field(real, "p99_cycles"), None);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(check("{}").is_err());
    }

    /// Renders a miniature service trace through the real writer: one
    /// query, one failover, one redispatch, eight recorder events.
    fn sample_trace(queries: u64, failovers: u64, redispatched: u64) -> String {
        use hipe_trace::{TraceSink, Tracer, TrackKind};
        let mut t = Tracer::new();
        let adm = t.track("admission", TrackKind::Sync);
        let fe = t.track("front-end", TrackKind::Sync);
        let q = t.track("queries", TrackKind::Async);
        let eng = t.track("s0.r0 engine", TrackKind::Sync);
        t.instant(adm, "arrival", 0, vec![("tag", 0usize.into())]);
        t.counter(adm, "batch_fill", 0, 1);
        t.span_on(fe, "batch 0", 5, 10, vec![("queries", 1usize.into())]);
        t.span_on(q, "q0", 0, 40, vec![("tag", 0usize.into())]);
        t.span_on(eng, "q0", 10, 40, vec![]);
        t.span_on(eng, "scan", 12, 30, vec![]);
        t.instant(eng, "fault.kill", 20, vec![]);
        t.instant(fe, "redispatch", 25, vec![("shard", 0usize.into())]);
        let other = [
            ("queries", queries.to_string()),
            ("makespan_cyc", "40".to_string()),
            ("failovers", failovers.to_string()),
            ("redispatched", redispatched.to_string()),
            ("events", t.len().to_string()),
        ];
        t.to_chrome_json(&other)
    }

    #[test]
    fn trace_roundtrip_validates() {
        assert_eq!(check_trace(&sample_trace(1, 1, 1)), Ok((8, 1)));
    }

    #[test]
    fn trace_catches_report_reconciliation_drift() {
        let err = check_trace(&sample_trace(2, 1, 1)).unwrap_err();
        assert!(err.contains("query lifetime spans"), "{err}");
        let err = check_trace(&sample_trace(1, 0, 1)).unwrap_err();
        assert!(err.contains("fault.kill"), "{err}");
        let err = check_trace(&sample_trace(1, 1, 2)).unwrap_err();
        assert!(err.contains("redispatch instants"), "{err}");
        let text = sample_trace(1, 1, 1).replace("\"events\": 8", "\"events\": 9");
        let err = check_trace(&text).unwrap_err();
        assert!(err.contains("recorder wrote 9"), "{err}");
    }

    #[test]
    fn trace_catches_spans_that_straddle_or_escape_the_run() {
        // The scan child [12, 30] stretched to end at 45 straddles its
        // parent engine span's end at 40 (makespan raised out of the
        // way so only the nesting check can fire).
        let text = sample_trace(1, 1, 1)
            .replace("\"makespan_cyc\": 40", "\"makespan_cyc\": 60")
            .replace("\"ts\":12,\"dur\":18", "\"ts\":12,\"dur\":33");
        let err = check_trace(&text).unwrap_err();
        assert!(err.contains("straddles"), "{err}");
        // A span past the recorded makespan is rejected outright.
        let text = sample_trace(1, 1, 1).replace("\"makespan_cyc\": 40", "\"makespan_cyc\": 39");
        let err = check_trace(&text).unwrap_err();
        assert!(err.contains("past the 39 cyc makespan"), "{err}");
    }

    #[test]
    fn trace_catches_unbalanced_async_pairs() {
        // Retag the async end as a second begin with a fresh id: the
        // original id never ends.
        let text = sample_trace(1, 1, 1).replace(
            "{\"ph\":\"e\",\"pid\":0,\"tid\":2,\"ts\":40,\"id\":0",
            "{\"ph\":\"b\",\"pid\":0,\"tid\":2,\"ts\":40,\"id\":7",
        );
        let err = check_trace(&text).unwrap_err();
        assert!(err.contains("async"), "{err}");
    }

    #[test]
    fn trace_rejects_foreign_documents() {
        assert!(check_trace("{}").is_err());
        let err = check_trace("{\"traceEvents\": [\n]\n}").unwrap_err();
        assert!(err.contains("otherData"), "{err}");
    }
}
