//! CI schema check for `BENCH_figures.json`.
//!
//! The `figures` bench emits the four-machine sweep as hand-rendered
//! JSON; this binary re-reads the emitted file and fails the pipeline
//! if the schema drifts — in particular it requires the aggregate
//! sweep (the `agg_*` points plus `q6`) to be present with all four
//! architectures and non-empty phase breakdowns, so a regression that
//! silently drops the fused-aggregate rows (or zeroes their cycles)
//! cannot pass CI. The partitioned-execution sweep (`par_1` through
//! `par_8`, HIVE/HIPE only) is validated for presence and for
//! *monotonically non-increasing* cycles and scan ends as the engine
//! count grows — a regression that makes more engines slower fails
//! the pipeline.
//!
//! Usage: run the `figures` bench first, then
//! `cargo run -p hipe-bench --bin check_figures`. The file location
//! follows the bench's convention: `HIPE_BENCH_JSON` if set, else
//! `BENCH_figures.json` at the workspace root.
//!
//! The parser is intentionally a small line scanner (the workspace is
//! offline: no serde); it understands exactly the shape the bench
//! writes.

use std::process::ExitCode;

/// The architecture labels every selectivity point must report, in
/// sweep order.
const ARCHS: [&str; 4] = ["x86", "HMC-ISA", "HIVE", "HIPE"];

/// Point names that make up the aggregate sweep.
const AGGREGATE_POINTS: [&str; 4] = ["agg_2%", "agg_10%", "agg_50%", "q6"];

/// The logic machines the partition sweep reports.
const LOGIC_ARCHS: [&str; 2] = ["HIVE", "HIPE"];

/// Point names of the partitioned-execution sweep, in engine-count
/// order (cycles must not increase along this list).
const PARTITION_POINTS: [&str; 4] = ["par_1", "par_2", "par_4", "par_8"];

fn main() -> ExitCode {
    let path = std::env::var("HIPE_BENCH_JSON").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figures.json").into()
    });
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            return fail(&format!(
                "cannot read {path}: {e} (run the figures bench first)"
            ))
        }
    };
    match check(&text) {
        Ok(points) => {
            println!("check_figures: {path} ok ({points} points, aggregate sweep present)");
            ExitCode::SUCCESS
        }
        Err(e) => fail(&e),
    }
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("check_figures: FAIL: {msg}");
    ExitCode::FAILURE
}

/// Validates the document; returns the number of points on success.
fn check(text: &str) -> Result<usize, String> {
    if !text.contains("\"bench\": \"figures\"") {
        return Err("not a figures document (missing \"bench\": \"figures\")".into());
    }
    let archs_line = format!(
        "\"archs\": [{}]",
        ARCHS.map(|a| format!("\"{a}\"")).join(", ")
    );
    if !text.contains(&archs_line) {
        return Err(format!("arch list drifted (expected {archs_line})"));
    }

    // Each point starts with its "name" key; everything up to the next
    // "name" (or EOF) is that point's block.
    let blocks: Vec<(String, &str)> = text
        .match_indices("\"name\": \"")
        .map(|(at, pat)| {
            let name_start = at + pat.len();
            let name_end = text[name_start..]
                .find('"')
                .map(|i| name_start + i)
                .unwrap_or(text.len());
            let block_end = text[name_end..]
                .find("\"name\": \"")
                .map(|i| name_end + i)
                .unwrap_or(text.len());
            (text[name_start..name_end].to_string(), &text[at..block_end])
        })
        .collect();
    if blocks.is_empty() {
        return Err("no sweep points found".into());
    }

    for (name, block) in &blocks {
        // Partition-sweep points carry only the logic machines.
        let archs: &[&str] = if name.starts_with("par_") {
            &LOGIC_ARCHS
        } else {
            &ARCHS
        };
        for &arch in archs {
            let cycles = arch_field(block, arch, "cycles")
                .ok_or_else(|| format!("point {name}: arch {arch} missing or lacks cycles"))?;
            let scan = arch_field(block, arch, "scan_end")
                .ok_or_else(|| format!("point {name}: arch {arch} lacks scan_end"))?;
            if cycles == 0 || scan == 0 {
                return Err(format!("point {name}: arch {arch} has empty phases"));
            }
        }
    }

    for wanted in AGGREGATE_POINTS {
        let (_, block) = blocks
            .iter()
            .find(|(name, _)| name == wanted)
            .ok_or_else(|| format!("aggregate sweep point {wanted} missing"))?;
        for arch in ARCHS {
            let gather = arch_field(block, arch, "gather_cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks gather_cycles"))?;
            if gather == 0 {
                return Err(format!(
                    "point {wanted}: arch {arch} reports a zero-cycle aggregate phase"
                ));
            }
        }
    }

    // Partition sweep: all four engine counts present, and on both
    // logic machines scan ends and total cycles fall monotonically
    // (non-increasing) with the engine count.
    for arch in LOGIC_ARCHS {
        let mut prev = (u64::MAX, u64::MAX);
        for wanted in PARTITION_POINTS {
            let (_, block) = blocks
                .iter()
                .find(|(name, _)| name == wanted)
                .ok_or_else(|| format!("partition sweep point {wanted} missing"))?;
            let cycles = arch_field(block, arch, "cycles")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks cycles"))?;
            let scan = arch_field(block, arch, "scan_end")
                .ok_or_else(|| format!("point {wanted}: arch {arch} lacks scan_end"))?;
            if scan > prev.0 || cycles > prev.1 {
                return Err(format!(
                    "point {wanted}: {arch} got slower with more engines \
                     (scan {} -> {scan}, cycles {} -> {cycles})",
                    prev.0, prev.1
                ));
            }
            prev = (scan, cycles);
        }
    }
    Ok(blocks.len())
}

/// Extracts integer `field` from `arch`'s object within a point block.
fn arch_field(block: &str, arch: &str, field: &str) -> Option<u64> {
    let obj_at = block.find(&format!("\"{arch}\": {{"))?;
    let obj = &block[obj_at..block[obj_at..].find('}').map(|i| obj_at + i)?];
    let key = format!("\"{field}\": ");
    let at = obj.find(&key)? + key.len();
    let digits: String = obj[at..].chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn four_arch_point(name: &str, gather: u64) -> String {
        let archs: Vec<String> = ARCHS
            .iter()
            .map(|a| {
                format!(
                    "\"{a}\": {{\"cycles\": 100, \"dispatch_end\": 1, \"scan_end\": 90, \
                     \"gather_cycles\": {gather}}}"
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{name}\", \"archs\": {{{}}}}}",
            archs.join(", ")
        )
    }

    fn par_point(name: &str, cycles: u64) -> String {
        let archs: Vec<String> = LOGIC_ARCHS
            .iter()
            .map(|a| {
                format!(
                    "\"{a}\": {{\"cycles\": {cycles}, \"dispatch_end\": 1, \
                     \"scan_end\": {}, \"gather_cycles\": 5}}",
                    cycles - 10
                )
            })
            .collect();
        format!(
            "{{\"name\": \"{name}\", \"archs\": {{{}}}}}",
            archs.join(", ")
        )
    }

    fn doc_with(gather_q6: u64, par_cycles: [u64; 4]) -> String {
        let mut points = vec![
            four_arch_point("sel_2%", 0),
            four_arch_point("agg_2%", 7),
            four_arch_point("agg_10%", 7),
            four_arch_point("agg_50%", 7),
            four_arch_point("q6", gather_q6),
        ];
        for (name, cycles) in PARTITION_POINTS.iter().zip(par_cycles) {
            points.push(par_point(name, cycles));
        }
        format!(
            "{{\"bench\": \"figures\", \"archs\": [\"x86\", \"HMC-ISA\", \"HIVE\", \"HIPE\"], \
             \"points\": [{}]}}",
            points.join(", ")
        )
    }

    fn doc(gather_q6: u64) -> String {
        doc_with(gather_q6, [800, 400, 200, 100])
    }

    #[test]
    fn accepts_a_complete_document() {
        assert_eq!(check(&doc(10)), Ok(9));
    }

    #[test]
    fn rejects_missing_aggregate_points() {
        let text = doc(10).replace("agg_10%", "agg_renamed");
        assert!(check(&text).unwrap_err().contains("agg_10%"));
    }

    #[test]
    fn rejects_empty_aggregate_phase() {
        assert!(check(&doc(0)).unwrap_err().contains("zero-cycle"));
    }

    #[test]
    fn rejects_missing_arch() {
        let text = doc(10).replace("\"HIVE\": {\"cycles\": 100", "\"hive\": {\"cycles\": 100");
        assert!(check(&text).unwrap_err().contains("HIVE"));
    }

    #[test]
    fn rejects_missing_partition_points() {
        let text = doc(10).replace("par_4", "par_5");
        assert!(check(&text).unwrap_err().contains("par_4"));
    }

    #[test]
    fn rejects_more_engines_getting_slower() {
        // par_4 slower than par_2: the partition win regressed.
        let text = doc_with(10, [800, 400, 500, 100]);
        let err = check(&text).unwrap_err();
        assert!(err.contains("par_4") && err.contains("slower"), "{err}");
    }

    #[test]
    fn accepts_flat_partition_scaling() {
        // Non-increasing, not strictly decreasing, is acceptable (the
        // knee flattens once dispatch bandwidth saturates).
        assert!(check(&doc_with(10, [800, 400, 400, 400])).is_ok());
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(check("{}").is_err());
    }
}
