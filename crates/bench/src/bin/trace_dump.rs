//! Records a fault-injected closed-loop service run as a Chrome trace.
//!
//! Runs the standard bench mix (Q6 plus two quantity scans) through a
//! small replicated HIPE cluster under a closed loop, kills one
//! replica fail-stop at half the fault-free makespan, and writes the
//! traced run as Chrome Trace Event Format JSON — open the file in
//! Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`.
//! Timestamps are *simulated cycles* (shown as microseconds by the
//! viewer), one track per shard×replica engine plus admission,
//! front-end and query-lifetime tracks.
//!
//! The emitted file embeds the run's `ServiceReport` counters in
//! `otherData` (plus a per-shard metrics registry export), and
//! `check_figures --trace` re-derives them from the events — query
//! spans, `fault.kill` instants and `redispatch` instants must
//! reconcile exactly.

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

use hipe::Arch;
use hipe_db::Query;
use hipe_serve::{run_service, run_service_traced, Cluster, FaultPlan, ServiceConfig};
use hipe_trace::{Metrics, TraceEvent, Tracer};

const SEED: u64 = 2018;

const HELP: &str = "\
trace_dump — record a fault-injected closed-loop service run as a Chrome trace

USAGE:
    trace_dump [OPTIONS]

OPTIONS:
    --rows N        logical table rows          (default 4096)
    --shards N      shards in the cluster       (default 2)
    --replicas N    replicas backing each shard (default 2)
    --queries N     queries to serve            (default 48)
    --clients N     closed-loop clients         (default 6)
    --no-fault      skip the fail-stop fault injection
    --out PATH      output path (default <workspace>/BENCH_trace.json)
    -h, --help      print this help

The trace is Chrome Trace Event Format JSON in the simulated-cycle
time domain (1 cycle renders as 1 µs): load it in Perfetto or
chrome://tracing. Tracks: admission (arrival/admit instants, a
batch_fill counter), front-end (batch spans, redispatch instants),
queries (one async span per query, arrival to completion), and one
row per shard.replica engine (execute spans with nested
dispatch/scan/gather phases, fault.kill/fault.detect instants).
`otherData` embeds the ServiceReport counters the events must
reconcile with, verified by `check_figures --trace`.";

struct Opts {
    rows: usize,
    shards: usize,
    replicas: usize,
    queries: usize,
    clients: usize,
    fault: bool,
    out: String,
}

fn parse_args() -> Opts {
    let mut opts = Opts {
        rows: 4096,
        shards: 2,
        replicas: 2,
        queries: 48,
        clients: 6,
        fault: true,
        out: format!("{}/../../BENCH_trace.json", env!("CARGO_MANIFEST_DIR")),
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let numeric = |args: &mut dyn Iterator<Item = String>| -> usize {
            args.next().and_then(|v| v.parse().ok()).unwrap_or_else(|| {
                eprintln!("{arg} needs a numeric value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--rows" => opts.rows = numeric(&mut args),
            "--shards" => opts.shards = numeric(&mut args),
            "--replicas" => opts.replicas = numeric(&mut args),
            "--queries" => opts.queries = numeric(&mut args),
            "--clients" => opts.clients = numeric(&mut args),
            "--no-fault" => opts.fault = false,
            "--out" => {
                opts.out = args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    std::process::exit(2);
                })
            }
            "-h" | "--help" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument `{other}` (try --help)");
                std::process::exit(2);
            }
        }
    }
    opts
}

fn main() {
    let opts = parse_args();
    let cluster = Cluster::replicated(opts.rows, SEED, opts.shards, opts.replicas);
    let mix = vec![
        (Query::q6(), 1),
        (Query::quantity_below_permille(100), 2),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ];
    let cfg = ServiceConfig::closed(Arch::Hipe, opts.queries, mix, opts.clients);

    // Fault-free pass to place the fault at half the makespan, then
    // the traced, fault-injected run. Failover is answer-preserving,
    // so both runs must agree bit for bit.
    let clean = run_service(&cluster, &cfg);
    let cfg = if opts.fault && opts.replicas > 1 {
        ServiceConfig {
            faults: vec![FaultPlan::new(
                (opts.shards - 1).min(1),
                0,
                clean.makespan / 2,
            )],
            ..cfg
        }
    } else {
        cfg
    };
    let mut tracer = Tracer::new();
    let report = run_service_traced(&cluster, &cfg, Some(&mut tracer));
    assert_eq!(
        report.answers_digest(),
        clean.answers_digest(),
        "failover or tracing changed the service answer"
    );

    // The events must already reconcile with the report before the
    // file is written — check_figures --trace re-verifies from JSON.
    let query_spans = tracer
        .events()
        .iter()
        .filter(|e| matches!(e, TraceEvent::Span { span, .. } if span.track.index() == 2))
        .count() as u64;
    assert_eq!(query_spans, report.queries, "one lifetime span per query");
    assert_eq!(
        tracer.instants_named("fault.kill") as u64,
        report.failovers,
        "one kill instant per fired fault"
    );
    assert_eq!(
        tracer.instants_named("redispatch") as u64,
        report.redispatched,
        "one redispatch instant per lost sub-query"
    );

    // Per-shard component counters, exported through the registry.
    let mut metrics = Metrics::new();
    for (s, shard_report) in cluster
        .run(Arch::Hipe, &Query::q6())
        .shard_reports
        .iter()
        .enumerate()
    {
        shard_report.export_metrics(&format!("shard{s}."), &mut metrics);
    }

    let other_data = [
        ("arch", format!("\"{}\"", report.arch)),
        (
            "time_unit",
            "\"simulated cycles (1 cyc = 1 viewer µs)\"".to_string(),
        ),
        ("shards", report.shards.to_string()),
        ("replicas", report.replicas.to_string()),
        ("queries", report.queries.to_string()),
        ("makespan_cyc", report.makespan.to_string()),
        ("failovers", report.failovers.to_string()),
        ("redispatched", report.redispatched.to_string()),
        ("answers_digest", report.answers_digest().to_string()),
        ("events", tracer.len().to_string()),
        ("metrics", metrics.to_json()),
    ];
    let json = tracer.to_chrome_json(&other_data);
    std::fs::write(&opts.out, &json).expect("write trace file");

    println!("{report}");
    println!(
        "trace: {} events on {} tracks -> {}",
        tracer.len(),
        tracer.tracks().len(),
        opts.out
    );
    println!("open in https://ui.perfetto.dev or chrome://tracing (1 cyc = 1 µs)");
}
