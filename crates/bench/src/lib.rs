//! placeholder
