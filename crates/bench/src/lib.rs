//! In-tree micro-benchmark harness.
//!
//! The build environment is offline, so `criterion` is not available;
//! this module provides the small subset the workspace needs: adaptive
//! iteration counts, wall-clock timing around [`std::hint::black_box`],
//! and one-line reports. The bench targets in `benches/` are wired with
//! `harness = false` and call [`run`] directly.
//!
//! Knobs (environment variables):
//!
//! * `HIPE_BENCH_MS` — target measurement time per benchmark in
//!   milliseconds (default 100);
//! * `HIPE_BENCH_ROWS` — table size for the figure sweeps (default
//!   16384, kept small so the targets also double as smoke tests under
//!   `cargo test`).

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Outcome of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations of the final measured batch.
    pub iters: u64,
    /// Wall time of the final measured batch.
    pub total: Duration,
}

impl BenchResult {
    /// Nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12.1} ns/iter ({} iters)",
            self.name,
            self.ns_per_iter(),
            self.iters
        )
    }
}

/// Target measurement duration (`HIPE_BENCH_MS`, default 100 ms).
pub fn target_duration() -> Duration {
    let ms = std::env::var("HIPE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    Duration::from_millis(ms)
}

/// Table size for the figure sweeps (`HIPE_BENCH_ROWS`, default 16384,
/// clamped to at least 1 tuple).
pub fn bench_rows() -> usize {
    std::env::var("HIPE_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_384)
        .max(1)
}

/// Runs `f` repeatedly for at least `target`, growing the iteration
/// count geometrically, and returns the final batch's timing.
pub fn run_for<R>(name: &str, target: Duration, mut f: impl FnMut() -> R) -> BenchResult {
    black_box(f()); // warm up caches and lazy state
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        if total >= target || iters >= 1 << 30 {
            return BenchResult {
                name: name.to_string(),
                iters,
                total,
            };
        }
        // Aim directly for the target with 20 % headroom.
        let per_iter = (total.as_nanos() as u64 / iters).max(1);
        let needed = target.as_nanos() as u64 * 6 / 5 / per_iter;
        iters = needed.max(iters * 2);
    }
}

/// Runs `f` for the configured target duration and prints the result.
pub fn run<R>(name: &str, f: impl FnMut() -> R) -> BenchResult {
    let result = run_for(name, target_duration(), f);
    println!("{result}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_reaches_target_and_reports() {
        let mut calls = 0u64;
        let result = run_for("spin", Duration::from_millis(2), || {
            calls += 1;
            std::hint::black_box(calls)
        });
        assert!(result.total >= Duration::from_millis(2));
        assert!(result.iters >= 1);
        assert!(calls > result.iters, "warmup call missing");
        assert!(result.ns_per_iter() > 0.0);
        assert!(result.to_string().contains("spin"));
    }

    #[test]
    fn env_defaults() {
        // Not setting the variables yields the documented defaults.
        if std::env::var("HIPE_BENCH_MS").is_err() {
            assert_eq!(target_duration(), Duration::from_millis(100));
        }
        if std::env::var("HIPE_BENCH_ROWS").is_err() {
            assert_eq!(bench_rows(), 16_384);
        }
    }
}
