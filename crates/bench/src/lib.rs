//! In-tree micro-benchmark harness.
//!
//! The build environment is offline, so `criterion` is not available;
//! this module provides the small subset the workspace needs: adaptive
//! iteration counts, wall-clock timing around [`std::hint::black_box`],
//! and one-line reports. The bench targets in `benches/` are wired with
//! `harness = false` and call [`run`] directly.
//!
//! Knobs (environment variables):
//!
//! * `HIPE_BENCH_MS` — target measurement time per benchmark in
//!   milliseconds (default 100);
//! * `HIPE_BENCH_ROWS` — table size for the figure sweeps (default
//!   16384, kept small so the targets also double as smoke tests under
//!   `cargo test`);
//! * `HIPE_BENCH_SF` — table size as a TPC-H scale factor (may be
//!   fractional; `1` is the paper's 6M-row setup). Takes precedence
//!   over `HIPE_BENCH_ROWS` when both are set;
//! * `HIPE_WORKERS` — host worker threads for the parallel sweeps and
//!   cluster scatter phases (default 1, fully serial).

// The bench harness is the terminal boundary of the workspace: the
// library-wide print lints stop here.
#![allow(clippy::print_stdout, clippy::print_stderr)]

pub mod perf;

use hipe_db::SF1_ROWS;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Outcome of one benchmark.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark name.
    pub name: String,
    /// Iterations of the final measured batch.
    pub iters: u64,
    /// Wall time of the final measured batch.
    pub total: Duration,
}

impl BenchResult {
    /// Nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total.as_nanos() as f64 / self.iters.max(1) as f64
    }
}

impl std::fmt::Display for BenchResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<40} {:>12.1} ns/iter ({} iters)",
            self.name,
            self.ns_per_iter(),
            self.iters
        )
    }
}

/// Target measurement duration (`HIPE_BENCH_MS`, default 100 ms).
pub fn target_duration() -> Duration {
    let ms = std::env::var("HIPE_BENCH_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100);
    Duration::from_millis(ms)
}

/// Scale factor requested via `HIPE_BENCH_SF`, if any. Fractional
/// values are allowed (`0.25` is a quarter of SF-1's 6M rows).
pub fn bench_sf() -> Option<f64> {
    std::env::var("HIPE_BENCH_SF")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|sf| sf.is_finite() && *sf > 0.0)
}

/// Table size for the figure sweeps: `HIPE_BENCH_SF` (as a TPC-H scale
/// factor over the 6 001 215-row SF-1 table) when set, else
/// `HIPE_BENCH_ROWS` (default 16384), clamped to at least 1 tuple.
pub fn bench_rows() -> usize {
    if let Some(sf) = bench_sf() {
        return rows_at_sf(sf);
    }
    std::env::var("HIPE_BENCH_ROWS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(16_384)
        .max(1)
}

/// Rows of a TPC-H lineitem table at scale factor `sf` (≥ 1 tuple).
pub fn rows_at_sf(sf: f64) -> usize {
    ((SF1_ROWS as f64 * sf).round() as usize).max(1)
}

/// Host worker threads for the parallel sweeps (`HIPE_WORKERS`,
/// default 1 — fully serial, the byte-identical historical path).
pub fn bench_workers() -> usize {
    hipe_sim::env_workers()
}

/// Prints the standard bench header: which target is running and the
/// resolved row count / scale factor / worker width, so every recorded
/// run documents its configuration.
pub fn print_header(target: &str) {
    let rows = bench_rows();
    println!(
        "# {target}: rows={rows} (SF {:.4}), workers={}",
        rows as f64 / SF1_ROWS as f64,
        bench_workers()
    );
}

/// Runs `f` repeatedly for at least `target`, growing the iteration
/// count geometrically, and returns the final batch's timing.
pub fn run_for<R>(name: &str, target: Duration, mut f: impl FnMut() -> R) -> BenchResult {
    black_box(f()); // warm up caches and lazy state
    let mut iters: u64 = 1;
    loop {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        if total >= target || iters >= 1 << 30 {
            return BenchResult {
                name: name.to_string(),
                iters,
                total,
            };
        }
        // Aim directly for the target with 20 % headroom.
        let per_iter = (total.as_nanos() as u64 / iters).max(1);
        let needed = target.as_nanos() as u64 * 6 / 5 / per_iter;
        iters = needed.max(iters * 2);
    }
}

/// Runs `f` for the configured target duration and prints the result.
pub fn run<R>(name: &str, f: impl FnMut() -> R) -> BenchResult {
    let result = run_for(name, target_duration(), f);
    println!("{result}");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_for_reaches_target_and_reports() {
        let mut calls = 0u64;
        let result = run_for("spin", Duration::from_millis(2), || {
            calls += 1;
            std::hint::black_box(calls)
        });
        assert!(result.total >= Duration::from_millis(2));
        assert!(result.iters >= 1);
        assert!(calls > result.iters, "warmup call missing");
        assert!(result.ns_per_iter() > 0.0);
        assert!(result.to_string().contains("spin"));
    }

    #[test]
    fn env_defaults() {
        // Not setting the variables yields the documented defaults.
        if std::env::var("HIPE_BENCH_MS").is_err() {
            assert_eq!(target_duration(), Duration::from_millis(100));
        }
        if std::env::var("HIPE_BENCH_ROWS").is_err() && std::env::var("HIPE_BENCH_SF").is_err() {
            assert_eq!(bench_rows(), 16_384);
        }
        if std::env::var("HIPE_BENCH_SF").is_err() {
            assert_eq!(bench_sf(), None);
        }
        assert!(bench_workers() >= 1);
    }

    #[test]
    fn scale_factor_row_counts() {
        assert_eq!(rows_at_sf(1.0), SF1_ROWS);
        assert_eq!(rows_at_sf(10.0), 10 * SF1_ROWS);
        assert_eq!(rows_at_sf(1e-12), 1, "tiny SF clamps to one tuple");
        // A quarter SF rounds to the nearest tuple.
        assert_eq!(rows_at_sf(0.25), (SF1_ROWS as f64 * 0.25).round() as usize);
    }
}
