//! Data-plane rate measurements: the `perf_*` figure rows.
//!
//! Three rates pin the throughput of the zero-copy hot paths on the
//! host:
//!
//! * **materialization** — [`DsmLayout::materialize_into`] writing the
//!   full table image straight into a resident buffer (bytes/s);
//! * **generation** — [`LineitemTable::generate_shaped_on`] filling
//!   the four columns from the seed (rows/s);
//! * **engine** — a warm HIPE Q6 run through the logic-layer engine
//!   model, measured in simulated instructions retired per host second
//!   (instr/s).
//!
//! The figures bench records them as `perf_*` JSON rows (with
//! `host_ms` like every other point) and `check_figures` validates
//! their presence and sanity, so a data-plane throughput regression
//! surfaces as a structural CI failure instead of an anecdote. The
//! standalone `perf_rates` bench target prints the same measurements
//! for interactive profiling.

use crate::{run_for, BenchResult};
use hipe::{Arch, System};
use hipe_db::{DsmLayout, LineitemTable, Query, TableShape};
use hipe_sim::WorkerPool;
use std::time::Duration;

/// Row cap for the rate measurements. Rates are per-second quantities
/// and stabilize well below this size, so capping keeps the perf rows
/// a small, fixed slice of an SF-1 sweep's wall-clock instead of
/// scaling with it.
pub const PERF_ROWS_CAP: usize = 1 << 18;

/// One measured data-plane rate.
#[derive(Debug, Clone)]
pub struct PerfRate {
    /// Figure row name (`perf_materialize` / `perf_generate` /
    /// `perf_engine`).
    pub name: &'static str,
    /// Work units completed by one iteration.
    pub work: u64,
    /// What one work unit is (`bytes`, `rows`, `instr`).
    pub unit: &'static str,
    /// Work units per host second, truncated to an integer so the
    /// JSON row stays digit-parseable by `check_figures`.
    pub rate_per_s: u64,
    /// Host wall time of the final measured batch, in milliseconds.
    pub host_ms: f64,
}

impl PerfRate {
    /// The rate scaled to its headline unit: GB/s for bytes, Mrows/s
    /// for rows, Minstr/s for instructions.
    pub fn headline(&self) -> f64 {
        match self.unit {
            "bytes" => self.rate_per_s as f64 / 1e9,
            _ => self.rate_per_s as f64 / 1e6,
        }
    }

    /// The headline unit label matching [`headline`](Self::headline).
    pub fn headline_unit(&self) -> &'static str {
        match self.unit {
            "bytes" => "GB/s",
            "rows" => "Mrows/s",
            _ => "Minstr/s",
        }
    }
}

/// Measures the three data-plane rates over a table of `rows` tuples
/// (clamped to [`PERF_ROWS_CAP`]), spending about `target` of wall
/// time per measurement. Generation fans out over `pool`; the other
/// two paths are single-threaded by design.
pub fn measure(rows: usize, seed: u64, target: Duration, pool: &WorkerPool) -> Vec<PerfRate> {
    let rows = rows.clamp(1, PERF_ROWS_CAP);

    // Materialization: table values -> resident image bytes, in place.
    let table = LineitemTable::generate(rows, seed);
    let layout = DsmLayout::new(0, rows);
    let mut image = vec![0u8; layout.image_bytes() as usize];
    let m = run_for("perf_materialize", target, || {
        layout.materialize_into(&table, &mut image)
    });

    // Generation: seed -> the four column vectors.
    let g = run_for("perf_generate", target, || {
        LineitemTable::generate_shaped_on(pool, seed, 0, rows, TableShape::Uniform)
    });

    // Engine: a warm HIPE Q6 run (predicated scan + fused aggregate),
    // in simulated instructions retired per host second.
    let sys = System::new(rows, seed);
    let mut session = sys.session();
    let plan = session.plan(Arch::Hipe, &Query::q6());
    let instructions: u64 = session
        .run_plan(&plan)
        .partitions
        .iter()
        .map(|p| p.instructions)
        .sum();
    let e = run_for("perf_engine", target, || session.run_plan(&plan));

    vec![
        rate("perf_materialize", layout.image_bytes(), "bytes", &m),
        rate("perf_generate", rows as u64, "rows", &g),
        rate("perf_engine", instructions, "instr", &e),
    ]
}

/// Folds a timed batch into a [`PerfRate`]: `work` units per
/// iteration, `iters` iterations, over the batch's wall time.
fn rate(name: &'static str, work: u64, unit: &'static str, r: &BenchResult) -> PerfRate {
    let per_s = (work * r.iters) as f64 / r.total.as_secs_f64().max(1e-9);
    PerfRate {
        name,
        work,
        unit,
        rate_per_s: per_s as u64,
        host_ms: r.total.as_secs_f64() * 1e3,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_are_positive_and_complete() {
        let pool = WorkerPool::serial();
        let rates = measure(4096, 7, Duration::from_millis(2), &pool);
        let names: Vec<_> = rates.iter().map(|r| r.name).collect();
        assert_eq!(names, ["perf_materialize", "perf_generate", "perf_engine"]);
        for r in &rates {
            assert!(r.work > 0, "{}: zero work", r.name);
            assert!(r.rate_per_s > 0, "{}: zero rate", r.name);
            assert!(r.host_ms > 0.0, "{}: zero wall time", r.name);
            assert!(r.headline() > 0.0);
            assert!(!r.headline_unit().is_empty());
        }
    }

    #[test]
    fn row_counts_are_clamped_to_the_cap() {
        // A degenerate request still measures something; the cap keeps
        // huge sweeps from inflating the perf rows.
        let pool = WorkerPool::serial();
        let rates = measure(0, 7, Duration::from_millis(1), &pool);
        assert_eq!(rates[1].work, 1, "zero rows clamps up to one tuple");
    }
}
