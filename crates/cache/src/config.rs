//! Cache hierarchy configuration (paper Table I).

use crate::LINE_BYTES;
use hipe_sim::Cycle;

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Associativity.
    pub ways: usize,
    /// Access latency in CPU cycles.
    pub latency: Cycle,
    /// Number of miss-status holding registers (outstanding misses).
    pub mshrs: usize,
}

impl LevelConfig {
    /// Number of sets implied by capacity, ways and line size.
    pub fn sets(&self) -> usize {
        (self.capacity / (self.ways as u64 * LINE_BYTES)) as usize
    }
}

/// Configuration of the full hierarchy.
///
/// # Example
///
/// ```
/// use hipe_cache::HierarchyConfig;
/// let c = HierarchyConfig::paper();
/// assert_eq!(c.l1.capacity, 32 * 1024);
/// assert_eq!(c.l3.ways, 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// L1 data cache.
    pub l1: LevelConfig,
    /// Private L2.
    pub l2: LevelConfig,
    /// The core's slice of the shared L3.
    pub l3: LevelConfig,
    /// Lines ahead fetched by the L1 stride prefetcher per trigger.
    pub stride_degree: usize,
    /// Lines ahead fetched by the L2 stream prefetcher per miss.
    pub stream_depth: usize,
}

impl HierarchyConfig {
    /// Table I parameters.
    pub fn paper() -> Self {
        HierarchyConfig {
            l1: LevelConfig {
                capacity: 32 * 1024,
                ways: 8,
                latency: 2,
                mshrs: 10,
            },
            l2: LevelConfig {
                capacity: 256 * 1024,
                ways: 8,
                latency: 4,
                mshrs: 20,
            },
            l3: LevelConfig {
                capacity: 2 * 1024 * 1024 + 512 * 1024, // 2.5 MB slice
                ways: 16,
                latency: 6,
                mshrs: 64,
            },
            stride_degree: 4,
            stream_depth: 4,
        }
    }

    /// A variant with both prefetchers disabled (ablation experiments).
    pub fn without_prefetchers() -> Self {
        HierarchyConfig {
            stride_degree: 0,
            stream_depth: 0,
            ..HierarchyConfig::paper()
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_counts() {
        let c = HierarchyConfig::paper();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 512);
        assert_eq!(c.l3.sets(), 2560);
    }

    #[test]
    fn latencies_increase_down_the_hierarchy() {
        let c = HierarchyConfig::paper();
        assert!(c.l1.latency < c.l2.latency && c.l2.latency < c.l3.latency);
    }

    #[test]
    fn ablation_disables_prefetch() {
        let c = HierarchyConfig::without_prefetchers();
        assert_eq!(c.stride_degree, 0);
        assert_eq!(c.stream_depth, 0);
        assert_eq!(c.l1, HierarchyConfig::paper().l1);
    }
}
