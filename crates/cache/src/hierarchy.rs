//! The assembled three-level hierarchy.

use crate::config::HierarchyConfig;
use crate::prefetch::{StreamPrefetcher, StridePrefetcher};
use crate::set::SetArray;
use crate::LINE_BYTES;
use hipe_hmc::{AccessKind, Hmc};
use hipe_sim::{Cycle, Window};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Fibonacci-multiply hasher for line-address keys.
///
/// The `pending` fill maps are probed up to three times per demand
/// miss on the hot path; they are only ever accessed by key (never
/// iterated), so a fast non-sip hash changes no observable behavior.
#[derive(Default)]
struct LineHasher(u64);

impl Hasher for LineHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("line addresses hash as u64");
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

type LineMap = HashMap<u64, Cycle, BuildHasherDefault<LineHasher>>;

/// Hit/miss counters per level plus prefetch activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// L1 hits (including hits on completed prefetches).
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// L3 misses (DRAM fills).
    pub l3_misses: u64,
    /// Prefetch requests issued to memory.
    pub prefetches: u64,
    /// Demand accesses that found an in-flight or completed prefetch.
    pub prefetch_hits: u64,
    /// Dirty lines written back to memory.
    pub writebacks: u64,
    /// Total demand accesses (line granularity).
    pub accesses: u64,
}

impl CacheStats {
    /// Total lookups across all levels (for the energy model).
    pub fn total_lookups(&self) -> u64 {
        self.accesses + self.l1_misses + self.l2_misses
    }

    /// Adds the counters into a [`Metrics`](hipe_trace::Metrics)
    /// registry under `{prefix}cache.*`.
    pub fn export_metrics(&self, prefix: &str, metrics: &mut hipe_trace::Metrics) {
        metrics.counter_add(&format!("{prefix}cache.l1_hits"), self.l1_hits);
        metrics.counter_add(&format!("{prefix}cache.l1_misses"), self.l1_misses);
        metrics.counter_add(&format!("{prefix}cache.l2_hits"), self.l2_hits);
        metrics.counter_add(&format!("{prefix}cache.l2_misses"), self.l2_misses);
        metrics.counter_add(&format!("{prefix}cache.l3_hits"), self.l3_hits);
        metrics.counter_add(&format!("{prefix}cache.l3_misses"), self.l3_misses);
        metrics.counter_add(&format!("{prefix}cache.prefetches"), self.prefetches);
        metrics.counter_add(&format!("{prefix}cache.prefetch_hits"), self.prefetch_hits);
        metrics.counter_add(&format!("{prefix}cache.writebacks"), self.writebacks);
        metrics.counter_add(&format!("{prefix}cache.accesses"), self.accesses);
    }
}

/// One level's timing state.
#[derive(Debug)]
struct Level {
    tags: SetArray,
    mshr: Window,
    latency: Cycle,
    /// Lines with an in-flight fill (prefetch), keyed by line address,
    /// valued with the cycle the data arrives.
    pending: LineMap,
}

impl Level {
    fn new(cfg: &crate::config::LevelConfig) -> Self {
        Level {
            tags: SetArray::new(cfg.sets(), cfg.ways),
            mshr: Window::new(cfg.mshrs),
            latency: cfg.latency,
            pending: LineMap::default(),
        }
    }
}

/// The processor-side cache hierarchy.
///
/// All methods take the [`Hmc`] explicitly so that a single cube can
/// back both the cache hierarchy and the logic-layer engines in the
/// co-simulated architectures.
///
/// # Example
///
/// ```
/// use hipe_cache::{CacheHierarchy, HierarchyConfig};
/// use hipe_hmc::{Hmc, HmcConfig};
/// let mut mem = Hmc::new(HmcConfig::paper(), 1 << 16);
/// let mut c = CacheHierarchy::new(HierarchyConfig::paper());
/// let done = c.write(&mut mem, 0, 0x100, 8);
/// assert!(done > 0);
/// assert_eq!(c.stats().accesses, 1);
/// ```
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: HierarchyConfig,
    l1: Level,
    l2: Level,
    l3: Level,
    stride: StridePrefetcher,
    stream: StreamPrefetcher,
    stats: CacheStats,
    /// Line whose L2 miss should trigger the stream prefetcher once the
    /// demand access has been issued.
    pending_stream_trigger: Option<u64>,
    /// Reused prediction buffer (the prefetchers fire on nearly every
    /// demand access of a streaming scan; allocating per access is
    /// measurable).
    predictions: Vec<u64>,
}

impl CacheHierarchy {
    /// Creates a cold hierarchy.
    pub fn new(cfg: HierarchyConfig) -> Self {
        CacheHierarchy {
            l1: Level::new(&cfg.l1),
            l2: Level::new(&cfg.l2),
            l3: Level::new(&cfg.l3),
            stride: StridePrefetcher::new(cfg.stride_degree),
            stream: StreamPrefetcher::new(cfg.stream_depth),
            stats: CacheStats::default(),
            pending_stream_trigger: None,
            predictions: Vec::new(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &HierarchyConfig {
        &self.cfg
    }

    /// Activity counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Performs a demand read of `bytes` at `addr`; returns the cycle
    /// at which the data is available to the core.
    pub fn read(&mut self, mem: &mut Hmc, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.access(mem, cycle, addr, bytes, false)
    }

    /// Performs a demand write of `bytes` at `addr` (write-allocate,
    /// write-back); returns the cycle at which the store is complete
    /// from the core's perspective.
    pub fn write(&mut self, mem: &mut Hmc, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.access(mem, cycle, addr, bytes, true)
    }

    fn access(&mut self, mem: &mut Hmc, cycle: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        debug_assert!(bytes > 0);
        let first = addr / LINE_BYTES;
        let last = (addr + bytes - 1) / LINE_BYTES;
        let mut done = cycle;
        for line in first..=last {
            let d = self.access_line(mem, cycle, line * LINE_BYTES, write);
            done = done.max(d);
        }
        done
    }

    fn access_line(&mut self, mem: &mut Hmc, cycle: Cycle, line: u64, write: bool) -> Cycle {
        self.stats.accesses += 1;
        let done = self.demand_line(mem, cycle, line, write);
        // Prefetches are issued after the demand so they never delay it
        // (hardware gives demands priority over prefetches).
        let mut predictions = std::mem::take(&mut self.predictions);
        predictions.clear();
        self.stride.observe_into(line, &mut predictions);
        for &p in &predictions {
            self.prefetch_into_l1(mem, cycle, p);
        }
        if let Some(miss_line) = self.pending_stream_trigger.take() {
            predictions.clear();
            self.stream.on_miss_into(miss_line, &mut predictions);
            for &p in &predictions {
                self.prefetch_into_l2(mem, cycle, p);
            }
        }
        self.predictions = predictions;
        done
    }

    fn demand_line(&mut self, mem: &mut Hmc, cycle: Cycle, line: u64, write: bool) -> Cycle {
        let t1 = cycle + self.l1.latency;
        if self.l1.tags.probe(line, write) {
            self.stats.l1_hits += 1;
            return t1;
        }
        // In-flight prefetch into L1?
        if let Some(ready) = self.l1.pending.remove(&line) {
            self.stats.l1_hits += 1;
            self.stats.prefetch_hits += 1;
            self.fill(mem, 1, line, write, ready);
            return t1.max(ready);
        }
        self.stats.l1_misses += 1;
        let adm1 = self.l1.mshr.admit(t1);

        let t2 = adm1 + self.l2.latency;
        if self.l2.tags.probe(line, false) {
            self.stats.l2_hits += 1;
            self.fill(mem, 1, line, write, t2);
            self.l1.mshr.complete(t2);
            return t2;
        }
        if let Some(ready) = self.l2.pending.remove(&line) {
            self.stats.l2_hits += 1;
            self.stats.prefetch_hits += 1;
            let done = t2.max(ready);
            self.fill(mem, 1, line, write, done);
            self.l1.mshr.complete(done);
            return done;
        }
        self.stats.l2_misses += 1;
        let adm2 = self.l2.mshr.admit(t2);
        // The L2 stream prefetcher triggers on this miss; remember the
        // trigger so the prefetches go out after the demand is served.
        self.pending_stream_trigger = Some(line);

        let t3 = adm2 + self.l3.latency;
        if self.l3.tags.probe(line, false) {
            self.stats.l3_hits += 1;
            self.fill(mem, 2, line, write, t3);
            self.l2.mshr.complete(t3);
            self.l1.mshr.complete(t3);
            return t3;
        }
        if let Some(ready) = self.l3.pending.remove(&line) {
            self.stats.l3_hits += 1;
            self.stats.prefetch_hits += 1;
            let done = t3.max(ready);
            self.fill(mem, 2, line, write, done);
            self.l2.mshr.complete(done);
            self.l1.mshr.complete(done);
            return done;
        }
        self.stats.l3_misses += 1;
        let adm3 = self.l3.mshr.admit(t3);
        let done = mem
            .access(adm3, line, LINE_BYTES, AccessKind::Read)
            .complete;
        self.fill(mem, 3, line, write, done);
        self.l3.mshr.complete(done);
        self.l2.mshr.complete(done);
        self.l1.mshr.complete(done);
        done
    }

    /// Installs `line` into the top `depth` levels, writing back dirty
    /// victims.
    fn fill(&mut self, mem: &mut Hmc, depth: usize, line: u64, write: bool, cycle: Cycle) {
        let levels: [&mut Level; 3] = [&mut self.l1, &mut self.l2, &mut self.l3];
        for (i, level) in levels.into_iter().enumerate() {
            if i >= depth {
                break;
            }
            if level.tags.contains(line) {
                continue;
            }
            if let Some((victim, dirty)) = level.tags.fill(line) {
                if dirty {
                    // Fire-and-forget write-back.
                    self.stats.writebacks += 1;
                    mem.access(cycle, victim, LINE_BYTES, AccessKind::Write);
                }
            }
        }
        if write {
            self.l1.tags.mark_dirty(line);
        }
    }

    fn prefetch_into_l1(&mut self, mem: &mut Hmc, cycle: Cycle, line: u64) {
        if self.l1.tags.contains(line) || self.l1.pending.contains_key(&line) {
            return;
        }
        // A prefetch consumes an L1 MSHR and walks the lower levels.
        let adm1 = self.l1.mshr.admit(cycle + self.l1.latency);
        let ready = self.fetch_below_l1(mem, adm1, line);
        self.l1.mshr.complete(ready);
        self.l1.pending.insert(line, ready);
        self.stats.prefetches += 1;
    }

    fn fetch_below_l1(&mut self, mem: &mut Hmc, cycle: Cycle, line: u64) -> Cycle {
        let t2 = cycle + self.l2.latency;
        if self.l2.tags.probe(line, false) {
            return t2;
        }
        if let Some(&ready) = self.l2.pending.get(&line) {
            return t2.max(ready);
        }
        let adm2 = self.l2.mshr.admit(t2);
        let t3 = adm2 + self.l3.latency;
        let ready = if self.l3.tags.probe(line, false) {
            t3
        } else if let Some(&r) = self.l3.pending.get(&line) {
            t3.max(r)
        } else {
            let adm3 = self.l3.mshr.admit(t3);
            let done = mem
                .access(adm3, line, LINE_BYTES, AccessKind::Read)
                .complete;
            self.l3.mshr.complete(done);
            if let Some((victim, dirty)) = self.l3.tags.fill(line) {
                if dirty {
                    self.stats.writebacks += 1;
                    mem.access(done, victim, LINE_BYTES, AccessKind::Write);
                }
            }
            done
        };
        self.l2.mshr.complete(ready);
        ready
    }

    fn prefetch_into_l2(&mut self, mem: &mut Hmc, cycle: Cycle, line: u64) {
        if self.l2.tags.contains(line) || self.l2.pending.contains_key(&line) {
            return;
        }
        let adm2 = self.l2.mshr.admit(cycle + self.l2.latency);
        let t3 = adm2 + self.l3.latency;
        let ready = if self.l3.tags.probe(line, false) {
            t3
        } else if let Some(&r) = self.l3.pending.get(&line) {
            t3.max(r)
        } else {
            let adm3 = self.l3.mshr.admit(t3);
            let done = mem
                .access(adm3, line, LINE_BYTES, AccessKind::Read)
                .complete;
            self.l3.mshr.complete(done);
            if let Some((victim, dirty)) = self.l3.tags.fill(line) {
                if dirty {
                    self.stats.writebacks += 1;
                    mem.access(done, victim, LINE_BYTES, AccessKind::Write);
                }
            }
            done
        };
        self.l2.mshr.complete(ready);
        self.l2.pending.insert(line, ready);
        self.stats.prefetches += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_hmc::HmcConfig;

    fn setup() -> (Hmc, CacheHierarchy) {
        (
            Hmc::new(HmcConfig::paper(), 1 << 22),
            CacheHierarchy::new(HierarchyConfig::paper()),
        )
    }

    #[test]
    fn cold_miss_goes_to_memory() {
        let (mut mem, mut c) = setup();
        let done = c.read(&mut mem, 0, 0, 8);
        assert!(done > 100, "cold read {done}");
        assert_eq!(c.stats().l3_misses, 1);
        // The demand fill plus any stream prefetches it triggered.
        assert!(mem.stats().activations >= 1);
    }

    #[test]
    fn second_access_hits_l1() {
        let (mut mem, mut c) = setup();
        let t = c.read(&mut mem, 0, 0, 8);
        let warm = c.read(&mut mem, t, 0, 8);
        assert_eq!(warm - t, c.config().l1.latency);
        assert_eq!(c.stats().l1_hits, 1);
    }

    #[test]
    fn access_spanning_two_lines_touches_both() {
        let (mut mem, mut c) = setup();
        c.read(&mut mem, 0, 60, 8);
        assert_eq!(c.stats().accesses, 2);
    }

    #[test]
    fn streaming_scan_mostly_prefetch_hits() {
        let (mut mem, mut c) = setup();
        let mut t = 0;
        for i in 0..512u64 {
            t = c.read(&mut mem, t, i * 64, 64);
        }
        let s = c.stats();
        assert!(s.prefetches > 100, "prefetches {}", s.prefetches);
        assert!(
            s.prefetch_hits as f64 > 0.5 * 512.0,
            "prefetch hits {}",
            s.prefetch_hits
        );
    }

    #[test]
    fn prefetching_beats_no_prefetching_on_streams() {
        let (mut mem_a, mut with) = setup();
        let mut mem_b = Hmc::new(HmcConfig::paper(), 1 << 22);
        let mut without = CacheHierarchy::new(HierarchyConfig::without_prefetchers());
        let mut ta = 0;
        let mut tb = 0;
        for i in 0..1024u64 {
            ta = with.read(&mut mem_a, ta, i * 64, 64);
            tb = without.read(&mut mem_b, tb, i * 64, 64);
        }
        assert!(
            ta < tb,
            "prefetch {ta} should beat no-prefetch {tb} on a stream"
        );
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let (mut mem, mut c) = setup();
        // Write a line, then stream enough lines through the same sets
        // to evict it from every level.
        c.write(&mut mem, 0, 0, 8);
        let mut t = 1000;
        // L3 slice is 2.5 MB; stream 8 MB.
        for i in 1..(8 * 1024 * 1024 / 64) as u64 {
            t = c.read(&mut mem, t, i * 64, 8);
        }
        assert!(c.stats().writebacks >= 1, "no writeback observed");
        assert!(mem.stats().bytes_written >= 64);
    }

    #[test]
    fn mshrs_bound_outstanding_misses() {
        let (mut mem, _c) = setup();
        // Issue many independent misses at cycle 0 with prefetchers off
        // (random-ish stride so the stride detector stays cold).
        let mut without = CacheHierarchy::new(HierarchyConfig::without_prefetchers());
        let mut last = 0;
        for i in 0..200u64 {
            last = without.read(&mut mem, 0, i * 4096 + (i % 3) * 128, 8);
        }
        // 200 misses through 10 L1 MSHRs: at least 20 serialized rounds
        // of ~memory latency each would be ~20 * 300; ensure substantial
        // queueing happened rather than all-parallel completion.
        let one = {
            let (mut m2, mut c2) = setup();
            c2.read(&mut m2, 0, 0, 8)
        };
        assert!(last > one * 5, "mshr limit not visible: {last} vs {one}");
    }
}
