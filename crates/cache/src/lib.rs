//! Three-level cache hierarchy with MSHRs and prefetchers.
//!
//! Rebuilds the processor-side memory hierarchy of the paper's Table I:
//!
//! * **L1** 32 KB, 8-way, 2-cycle, stride prefetcher, 10 MSHRs;
//! * **L2** 256 KB, 8-way, 4-cycle, stream prefetcher, 20 MSHRs;
//! * **L3** one 2.5 MB bank (the core's slice of the 40 MB shared
//!   cache), 16-way, 6-cycle, 64 MSHRs;
//! * 64 B lines, LRU replacement, write-allocate with write-back.
//!
//! Misses are filled from the HMC over its serial links. Coherence
//! (MOESI in the paper) is not modelled: the evaluated workload is a
//! single-threaded scan, so no coherence traffic would be generated —
//! see DESIGN.md for the substitution notes.
//!
//! # Example
//!
//! ```
//! use hipe_cache::{CacheHierarchy, HierarchyConfig};
//! use hipe_hmc::{Hmc, HmcConfig};
//!
//! let mut mem = Hmc::new(HmcConfig::paper(), 1 << 16);
//! let mut caches = CacheHierarchy::new(HierarchyConfig::paper());
//! let cold = caches.read(&mut mem, 0, 0x40, 8);
//! let warm = caches.read(&mut mem, cold, 0x40, 8);
//! assert!(warm - cold <= caches.config().l1.latency);
//! ```

mod config;
mod hierarchy;
mod prefetch;
mod set;

pub use config::{HierarchyConfig, LevelConfig};
pub use hierarchy::{CacheHierarchy, CacheStats};
pub use prefetch::{StreamPrefetcher, StridePrefetcher};
pub use set::SetArray;

/// Cache line size in bytes (Table I).
pub const LINE_BYTES: u64 = 64;
