//! Hardware prefetchers.

use crate::LINE_BYTES;

/// The L1 stride prefetcher of Table I.
///
/// Detects a repeated line-granular stride in the demand stream and,
/// once confident, predicts the next `degree` strided lines.
///
/// # Example
///
/// ```
/// use hipe_cache::StridePrefetcher;
/// let mut p = StridePrefetcher::new(2);
/// assert!(p.observe(0x000).is_empty());   // first touch
/// assert!(p.observe(0x040).is_empty());   // stride learned
/// let pred = p.observe(0x080);            // stride confirmed
/// assert_eq!(pred, vec![0x0C0, 0x100]);
/// ```
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    degree: usize,
    last_line: Option<u64>,
    stride: i64,
    confident: bool,
}

impl StridePrefetcher {
    /// Creates a prefetcher issuing up to `degree` predictions per
    /// trigger. A degree of 0 disables it.
    pub fn new(degree: usize) -> Self {
        StridePrefetcher {
            degree,
            last_line: None,
            stride: 0,
            confident: false,
        }
    }

    /// Observes a demand access to the line containing `addr`; returns
    /// the line addresses to prefetch.
    pub fn observe(&mut self, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.observe_into(addr, &mut out);
        out
    }

    /// Allocation-free [`observe`](Self::observe): appends the
    /// predicted line addresses to a caller-owned (reused) buffer.
    pub fn observe_into(&mut self, addr: u64, out: &mut Vec<u64>) {
        let line = addr / LINE_BYTES * LINE_BYTES;
        if self.degree == 0 {
            return;
        }
        if let Some(prev) = self.last_line {
            if line == prev {
                return; // same line: no new information
            }
            let stride = line as i64 - prev as i64;
            if stride == self.stride {
                self.confident = true;
            } else {
                self.stride = stride;
                self.confident = false;
            }
            if self.confident {
                for d in 1..=self.degree as i64 {
                    let target = line as i64 + self.stride * d;
                    if target >= 0 {
                        out.push(target as u64);
                    }
                }
            }
        }
        self.last_line = Some(line);
    }
}

/// The L2 stream prefetcher of Table I.
///
/// On a miss it fetches the next `depth` sequential lines — the classic
/// next-N-lines streamer, which is what makes streaming scans on the
/// x86 baseline bandwidth-bound rather than latency-bound.
///
/// # Example
///
/// ```
/// use hipe_cache::StreamPrefetcher;
/// let p = StreamPrefetcher::new(3);
/// assert_eq!(p.on_miss(0x1000), vec![0x1040, 0x1080, 0x10C0]);
/// ```
#[derive(Debug, Clone)]
pub struct StreamPrefetcher {
    depth: usize,
}

impl StreamPrefetcher {
    /// Creates a streamer fetching `depth` lines ahead (0 disables).
    pub fn new(depth: usize) -> Self {
        StreamPrefetcher { depth }
    }

    /// Returns the lines to prefetch after a miss on the line
    /// containing `addr`.
    pub fn on_miss(&self, addr: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.on_miss_into(addr, &mut out);
        out
    }

    /// Allocation-free [`on_miss`](Self::on_miss): appends the stream
    /// targets to a caller-owned (reused) buffer.
    pub fn on_miss_into(&self, addr: u64, out: &mut Vec<u64>) {
        let line = addr / LINE_BYTES * LINE_BYTES;
        out.extend((1..=self.depth as u64).map(|d| line + d * LINE_BYTES));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stride_needs_two_confirmations() {
        let mut p = StridePrefetcher::new(1);
        assert!(p.observe(0).is_empty());
        assert!(p.observe(64).is_empty());
        assert_eq!(p.observe(128), vec![192]);
    }

    #[test]
    fn stride_relearns_after_change() {
        let mut p = StridePrefetcher::new(1);
        p.observe(0);
        p.observe(64);
        p.observe(128); // confident at +64
        assert!(p.observe(1024).is_empty()); // stride broken
        assert!(p.observe(2048).is_empty()); // new stride observed once
        assert_eq!(p.observe(3072), vec![4096]); // confident again
    }

    #[test]
    fn negative_strides_supported() {
        let mut p = StridePrefetcher::new(1);
        p.observe(4096);
        p.observe(4032);
        assert_eq!(p.observe(3968), vec![3904]);
    }

    #[test]
    fn repeated_same_line_is_ignored() {
        let mut p = StridePrefetcher::new(2);
        p.observe(0);
        p.observe(64);
        p.observe(128);
        assert!(p.observe(130).is_empty()); // same line as 128
        assert_eq!(p.observe(192), vec![256, 320]);
    }

    #[test]
    fn disabled_prefetchers_return_nothing() {
        let mut s = StridePrefetcher::new(0);
        s.observe(0);
        s.observe(64);
        assert!(s.observe(128).is_empty());
        assert!(StreamPrefetcher::new(0).on_miss(0).is_empty());
    }
}
