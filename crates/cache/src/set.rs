//! Set-associative tag array with LRU replacement.

use crate::LINE_BYTES;

/// A timing-model tag array: tracks presence and dirtiness of lines,
/// not their data (data lives in the HMC's functional image).
///
/// # Example
///
/// ```
/// use hipe_cache::SetArray;
/// let mut a = SetArray::new(2, 2); // 2 sets x 2 ways
/// assert!(!a.probe(0x000, false));
/// a.fill(0x000);
/// assert!(a.probe(0x000, false));
/// ```
#[derive(Debug, Clone)]
pub struct SetArray {
    /// Per set: MRU-ordered vector of (line address, dirty).
    sets: Vec<Vec<(u64, bool)>>,
    ways: usize,
}

impl SetArray {
    /// Creates an empty array of `sets` sets with `ways` ways each.
    ///
    /// # Panics
    ///
    /// Panics if `sets` or `ways` is zero.
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets > 0 && ways > 0, "cache geometry must be non-zero");
        SetArray {
            sets: vec![Vec::with_capacity(ways); sets],
            ways,
        }
    }

    fn set_of(&self, line_addr: u64) -> usize {
        ((line_addr / LINE_BYTES) % self.sets.len() as u64) as usize
    }

    /// Looks up `line_addr`; on hit moves it to MRU, marks dirty if
    /// `write`, and returns `true`.
    pub fn probe(&mut self, line_addr: u64, write: bool) -> bool {
        let set = self.set_of(line_addr);
        let ways = &mut self.sets[set];
        if let Some(pos) = ways.iter().position(|&(a, _)| a == line_addr) {
            let (addr, dirty) = ways[pos];
            ways[..=pos].rotate_right(1);
            ways[0] = (addr, dirty || write);
            true
        } else {
            false
        }
    }

    /// Looks up without disturbing LRU or dirtiness (diagnostics).
    pub fn contains(&self, line_addr: u64) -> bool {
        let set = self.set_of(line_addr);
        self.sets[set].iter().any(|&(a, _)| a == line_addr)
    }

    /// Inserts `line_addr` as MRU and clean; returns the evicted
    /// `(line, dirty)` victim, if the set was full.
    pub fn fill(&mut self, line_addr: u64) -> Option<(u64, bool)> {
        let ways = self.ways;
        let set = self.set_of(line_addr);
        let lines = &mut self.sets[set];
        debug_assert!(!lines.iter().any(|&(a, _)| a == line_addr));
        if lines.len() == ways {
            // Full set: the LRU way is the victim; rotate it out so the
            // vector never outgrows its `ways` capacity.
            let victim = *lines.last().expect("ways is non-zero");
            lines.rotate_right(1);
            lines[0] = (line_addr, false);
            Some(victim)
        } else {
            lines.insert(0, (line_addr, false));
            None
        }
    }

    /// Marks a present line dirty (no-op when absent).
    pub fn mark_dirty(&mut self, line_addr: u64) {
        let set = self.set_of(line_addr);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.0 == line_addr) {
            e.1 = true;
        }
    }

    /// Number of lines currently resident.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recent() {
        let mut a = SetArray::new(1, 2);
        a.fill(0);
        a.fill(64);
        a.probe(0, false); // 0 becomes MRU
        let victim = a.fill(128);
        assert_eq!(victim, Some((64, false)));
        assert!(a.contains(0) && a.contains(128) && !a.contains(64));
    }

    #[test]
    fn dirty_propagates_to_eviction() {
        let mut a = SetArray::new(1, 1);
        a.fill(0);
        a.probe(0, true);
        let victim = a.fill(64);
        assert_eq!(victim, Some((0, true)));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut a = SetArray::new(2, 1);
        assert!(a.fill(0).is_none());
        assert!(a.fill(64).is_none()); // different set
        assert!(a.fill(128).is_some()); // back to set 0
    }

    #[test]
    fn mark_dirty_on_absent_is_noop() {
        let mut a = SetArray::new(2, 1);
        a.mark_dirty(0);
        assert_eq!(a.resident(), 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_geometry_panics() {
        let _ = SetArray::new(0, 4);
    }
}
