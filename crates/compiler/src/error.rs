//! Typed compile errors of the query-lowering layer.

/// Why a query could not be lowered for a target machine.
///
/// Returned by every `lower_*` entry point and surfaced unchanged
/// through the driver's `Backend::compile` path, so invalid inputs are
/// a recoverable error for callers instead of a panic from deep inside
/// the compiler.
///
/// # Example
///
/// ```
/// use hipe_compiler::{lower_hmc_scan, CompileError, STOCK_HMC_OP};
/// use hipe_db::{DsmLayout, Query};
///
/// let empty = DsmLayout::new(0, 0);
/// let err = lower_hmc_scan(&Query::q6(), &empty, STOCK_HMC_OP, None);
/// assert_eq!(err.unwrap_err(), CompileError::EmptyTable);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The layout covers zero rows: there is nothing to scan and no
    /// mask to produce.
    EmptyTable,
    /// Aggregate lowering was requested for a query that does not
    /// aggregate (no `SUM(l_extendedprice * l_discount)` to fuse).
    NotAnAggregate,
    /// A predicate is *statically* impossible — an inverted
    /// `CmpOp::Range` (`lo > hi`) that no value of any table could
    /// ever satisfy. Distinct from a query the zone map prunes
    /// completely on one particular table's data: that is a valid
    /// compile producing an empty program (the data could have been
    /// different), whereas this query is malformed independent of
    /// data, so the caller gets a typed error instead of a scan that
    /// provably returns nothing.
    PredicateUnsatisfiable,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::EmptyTable => f.write_str("cannot lower a scan over zero rows"),
            CompileError::NotAnAggregate => {
                f.write_str("aggregate lowering requires an aggregating query")
            }
            CompileError::PredicateUnsatisfiable => {
                f.write_str("predicate is statically unsatisfiable (inverted range)")
            }
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_cause() {
        assert_eq!(
            CompileError::EmptyTable.to_string(),
            "cannot lower a scan over zero rows"
        );
        assert!(CompileError::NotAnAggregate
            .to_string()
            .contains("aggregate"));
        assert!(CompileError::PredicateUnsatisfiable
            .to_string()
            .contains("unsatisfiable"));
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(CompileError::EmptyTable);
        assert!(e.source().is_none());
    }
}
