//! Lowering of select scans to stock HMC-ISA dispatch streams.
//!
//! The stock (extended) HMC atomic ISA executes read-operate
//! instructions in the per-vault functional units: the host dispatches
//! one [`VaultOp::LoadCmp`] per operand-sized chunk of a column, the
//! vault compares the lanes next to the bank, and only the small result
//! mask crosses the links back. Everything else — combining predicate
//! masks, packing them into the 1-bit-per-row output format, storing
//! mask words — stays on the host, which is precisely what separates
//! this machine from HIVE/HIPE's in-cube program execution.

use crate::error::CompileError;
use crate::logic::REGION_ROWS;
use hipe_db::{CmpOp, DsmLayout, PruneStats, Query, ZoneMap};
use hipe_isa::{MicroOp, MicroOpKind, OpSize, VaultOp, LANE_BYTES};

/// Operand size of the *stock* HMC 2.1 atomic instructions: 16 bytes
/// (two 8 B lanes). The paper's extension study widens this up to one
/// 256 B row buffer; [`lower_hmc_scan`] accepts any [`OpSize`] so both
/// points are expressible, but the stock machine uses this one.
pub const STOCK_HMC_OP: OpSize = match OpSize::new(16) {
    Some(s) => s,
    None => panic!("16 B is a supported operation size"),
};

/// Link payload bytes of one dispatch response: the lane-mask result
/// rides in a single 16 B flit regardless of operand size.
const RESULT_FLIT_BYTES: u64 = 16;

/// Maps a database comparison onto the vault load-compare instruction
/// (an inclusive `lo <= lane <= hi` range).
///
/// Bounds saturate at the `i64` domain edges, which is exact for every
/// representable column value.
fn vault_cmp(cmp: CmpOp) -> VaultOp {
    let (lo, hi) = match cmp {
        CmpOp::Lt(x) => (i64::MIN, x.saturating_sub(1)),
        CmpOp::Le(x) => (i64::MIN, x),
        CmpOp::Gt(x) => (x.saturating_add(1), i64::MAX),
        CmpOp::Ge(x) => (x, i64::MAX),
        CmpOp::Eq(x) => (x, x),
        CmpOp::Range(lo, hi) => (lo, hi),
    };
    VaultOp::LoadCmp { lo, hi }
}

/// Lowers `query` over a DSM `layout` into the dispatch stream of the
/// stock HMC-ISA machine, writing a packed 1-bit-per-row match mask at
/// the layout's mask area base.
///
/// The scan is tiled into the same 256 B regions (32 rows) as the
/// logic-layer lowering, and each region issues, per predicate, one
/// [`MicroOpKind::HmcDispatch`] per `op_size` chunk of the region's
/// column data. The dispatches are independent (the out-of-order core
/// overlaps them up to its load-queue depth); the host-side combine —
/// lane-mask ANDs across predicates, movemask-style packing, and one
/// packed 8 B mask-word store per 64 rows — is emitted as dependent ALU
/// and store micro-ops behind them.
///
/// Use [`STOCK_HMC_OP`] (16 B) for the paper's stock machine; larger
/// sizes model the paper's operand-size extension sweep.
///
/// With `prune` set, a region whose zone-map summaries prove the
/// conjunction can't match emits nothing at all — no dispatches, no
/// combine, no loop overhead — and a packed mask word is stored only
/// when at least one of its two regions survives (fully pruned words
/// keep the reset image's correct zeros). A fully pruned query lowers
/// to a valid *empty* stream, never an error.
///
/// # Example
///
/// ```
/// use hipe_compiler::{lower_hmc_scan, STOCK_HMC_OP};
/// use hipe_db::{DsmLayout, Query};
/// use hipe_isa::MicroOpKind;
///
/// let layout = DsmLayout::new(0, 64);
/// let (ops, _) = lower_hmc_scan(&Query::q6(), &layout, STOCK_HMC_OP, None).expect("64 rows");
/// let dispatches = ops
///     .iter()
///     .filter(|o| matches!(o.kind, MicroOpKind::HmcDispatch { .. }))
///     .count();
/// // 2 regions x 3 predicates x (256 B / 16 B) chunks.
/// assert_eq!(dispatches, 2 * 3 * 16);
/// ```
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows,
/// [`CompileError::PredicateUnsatisfiable`] if a predicate is
/// statically impossible (inverted range).
pub fn lower_hmc_scan(
    query: &Query,
    layout: &DsmLayout,
    op_size: OpSize,
    prune: Option<&ZoneMap>,
) -> Result<(Vec<MicroOp>, PruneStats), CompileError> {
    if layout.rows() == 0 {
        return Err(CompileError::EmptyTable);
    }
    if query.predicates().iter().any(|p| !p.cmp.satisfiable()) {
        return Err(CompileError::PredicateUnsatisfiable);
    }
    if let Some(zm) = prune {
        assert_eq!(
            zm.regions(),
            layout.regions(),
            "zone map summarizes a different table than the layout"
        );
    }
    let mask_base = layout.mask_base();
    let regions = layout.rows().div_ceil(REGION_ROWS);
    let region_bytes = REGION_ROWS as u64 * LANE_BYTES;
    let chunks = (region_bytes / op_size.bytes()) as usize;
    let npreds = query.predicates().len();
    let survivors: Vec<usize> = (0..regions)
        .filter(|&r| prune.is_none_or(|zm| zm.region_may_match(query, r)))
        .collect();
    let stats = PruneStats {
        scanned: survivors.len(),
        pruned: regions - survivors.len(),
    };
    // Tight upper bound — per region: `npreds * chunks` dispatches,
    // `(npreds - 1) * chunks` combines, `chunks` packs, at most one
    // mask store and two loop ops. Plans run to tens of millions of
    // ops at SF 1; an undersized guess would re-allocate (and copy)
    // the whole stream mid-lowering.
    let mut ops = Vec::with_capacity(survivors.len() * (2 * npreds * chunks + 3));

    for (j, &region) in survivors.iter().enumerate() {
        let chunk_base = region as u64 * region_bytes;
        // Dispatch phase: every predicate's chunks go out back to back;
        // responses return out of order and are combined below.
        for p in query.predicates() {
            let col = layout.column_base(p.column) + chunk_base;
            let op = vault_cmp(p.cmp);
            for c in 0..chunks {
                ops.push(MicroOp::new(MicroOpKind::HmcDispatch {
                    addr: col + c as u64 * op_size.bytes(),
                    size: op_size,
                    op,
                    result_bytes: RESULT_FLIT_BYTES,
                }));
            }
        }
        // Host-side combine: AND the per-predicate lane masks chunk by
        // chunk, then pack lanes to bits. Modelled as a dependent ALU
        // chain — each step consumes the previous combine result and
        // one dispatch response (`chunks * npreds` back reaches the
        // region's first response in the dynamic stream).
        for _ in 0..(npreds - 1) * chunks {
            ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, (chunks * npreds) as u32));
        }
        for _ in 0..chunks {
            // movemask-style packing of one chunk's lanes.
            ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 0));
        }
        // One packed 8 B word covers 64 rows = two regions; the last
        // surviving region of a word flushes it (with no pruning:
        // every odd region and the final, possibly unpaired, one).
        let word = region / 2;
        if survivors.get(j + 1).is_none_or(|&next| next / 2 != word) {
            ops.push(
                MicroOp::new(MicroOpKind::Store {
                    addr: mask_base + word as u64 * 8,
                    bytes: 8,
                })
                .with_deps(1, 0),
            );
        }
        // Loop overhead: index increment + well-predicted branch.
        ops.push(MicroOp::new(MicroOpKind::IntAlu));
        ops.push(MicroOp::new(MicroOpKind::Branch { mispredict: false }).with_deps(1, 0));
    }
    Ok((ops, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::{Column, ColumnPredicate};

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    fn dispatches(ops: &[MicroOp]) -> Vec<(u64, OpSize, VaultOp)> {
        ops.iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::HmcDispatch { addr, size, op, .. } => Some((addr, size, op)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn stock_ops_cover_whole_column_in_16_byte_chunks() {
        let layout = DsmLayout::new(0, 1024);
        let (ops, _) = lower_hmc_scan(&one_pred_query(), &layout, STOCK_HMC_OP, None)
            .expect("non-empty layout");
        let d = dispatches(&ops);
        // 1024 rows x 8 B / 16 B chunks.
        assert_eq!(d.len(), 512);
        let col = layout.column_base(Column::Quantity);
        assert_eq!(d[0].0, col);
        assert_eq!(d.last().expect("non-empty").0, col + 1023 * 8 - 8);
        assert!(d.iter().all(|&(_, s, _)| s == STOCK_HMC_OP));
    }

    #[test]
    fn comparisons_become_inclusive_ranges() {
        let layout = DsmLayout::new(0, 32);
        let q = Query::q6();
        let (ops, _) = lower_hmc_scan(&q, &layout, OpSize::MAX, None).expect("non-empty layout");
        let d = dispatches(&ops);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].2, VaultOp::LoadCmp { lo: 731, hi: 1095 });
        assert_eq!(d[1].2, VaultOp::LoadCmp { lo: 5, hi: 7 });
        assert_eq!(
            d[2].2,
            VaultOp::LoadCmp {
                lo: i64::MIN,
                hi: 23
            }
        );
    }

    #[test]
    fn mask_words_are_stored_every_64_rows() {
        // 100 rows = 4 regions = 2 packed words.
        let layout = DsmLayout::new(0, 100);
        let (ops, _) = lower_hmc_scan(&one_pred_query(), &layout, STOCK_HMC_OP, None)
            .expect("non-empty layout");
        let stores: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::Store { addr, bytes: 8 } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![layout.mask_base(), layout.mask_base() + 8]);
    }

    #[test]
    fn odd_region_count_flushes_final_word() {
        // 96 rows = 3 regions: word 0 after region 1, word 1 after the
        // unpaired region 2.
        let layout = DsmLayout::new(0, 96);
        let (ops, _) = lower_hmc_scan(&one_pred_query(), &layout, STOCK_HMC_OP, None)
            .expect("non-empty layout");
        let stores = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::Store { .. }))
            .count();
        assert_eq!(stores, 2);
    }

    #[test]
    fn multi_predicate_regions_emit_host_combine_alus() {
        let layout = DsmLayout::new(0, 32);
        let (ops, _) =
            lower_hmc_scan(&Query::q6(), &layout, STOCK_HMC_OP, None).expect("non-empty layout");
        let alus = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::IntAlu))
            .count();
        // 2 ANDs x 16 chunks + 16 packs + 1 loop increment.
        assert_eq!(alus, 2 * 16 + 16 + 1);
    }

    #[test]
    fn wider_ops_shrink_the_dispatch_stream() {
        let layout = DsmLayout::new(0, 4096);
        let q = one_pred_query();
        let stock = dispatches(
            &lower_hmc_scan(&q, &layout, STOCK_HMC_OP, None)
                .expect("non-empty")
                .0,
        )
        .len();
        let max = dispatches(
            &lower_hmc_scan(&q, &layout, OpSize::MAX, None)
                .expect("non-empty")
                .0,
        )
        .len();
        assert_eq!(stock, 16 * max);
    }

    #[test]
    fn branches_are_predicted() {
        let layout = DsmLayout::new(0, 256);
        let (ops, _) = lower_hmc_scan(&one_pred_query(), &layout, STOCK_HMC_OP, None)
            .expect("non-empty layout");
        assert!(ops
            .iter()
            .all(|o| !matches!(o.kind, MicroOpKind::Branch { mispredict: true })));
    }

    #[test]
    fn zero_rows_is_a_typed_error() {
        let layout = DsmLayout::new(0, 0);
        assert_eq!(
            lower_hmc_scan(&one_pred_query(), &layout, STOCK_HMC_OP, None).unwrap_err(),
            CompileError::EmptyTable
        );
    }

    #[test]
    fn inverted_range_is_a_typed_error() {
        let layout = DsmLayout::new(0, 64);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Range(7, 1))],
            false,
        );
        assert_eq!(
            lower_hmc_scan(&q, &layout, STOCK_HMC_OP, None).unwrap_err(),
            CompileError::PredicateUnsatisfiable
        );
    }

    #[test]
    fn pruned_regions_emit_no_dispatches() {
        let rows = 4096; // 128 regions
        let t = hipe_db::LineitemTable::generate_clustered_range(7, 0, rows, rows);
        let zm = hipe_db::ZoneMap::build(&t);
        let layout = DsmLayout::new(0, rows);
        let q = Query::shipdate_window_permille(100);
        let (full, _) = lower_hmc_scan(&q, &layout, STOCK_HMC_OP, None).expect("valid");
        let (pruned, stats) = lower_hmc_scan(&q, &layout, STOCK_HMC_OP, Some(&zm)).expect("valid");
        assert!(stats.pruned > 0);
        assert_eq!(stats.total(), 128);
        let full_d = dispatches(&full).len();
        let pruned_d = dispatches(&pruned).len();
        // Dispatch count shrinks in exact proportion to pruned regions.
        assert_eq!(pruned_d, full_d * stats.scanned / 128);
        // Surviving word stores are a subset of the full stream's.
        let words = |ops: &[MicroOp]| -> Vec<u64> {
            ops.iter()
                .filter_map(|o| match o.kind {
                    MicroOpKind::Store { addr, .. } => Some(addr),
                    _ => None,
                })
                .collect()
        };
        let full_words = words(&full);
        for a in words(&pruned) {
            assert!(full_words.contains(&a));
        }
    }

    #[test]
    fn fully_pruned_scan_is_a_valid_empty_stream() {
        let total = 2048;
        let t = hipe_db::LineitemTable::generate_clustered_range(3, total / 2, total / 2, total);
        let zm = hipe_db::ZoneMap::build(&t);
        let layout = DsmLayout::new(0, total / 2);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(0, 50))],
            false,
        );
        let (ops, stats) =
            lower_hmc_scan(&q, &layout, STOCK_HMC_OP, Some(&zm)).expect("empty is valid");
        assert!(ops.is_empty());
        assert_eq!(stats.scanned, 0);
        assert_eq!(stats.pruned, layout.regions());
    }
}
