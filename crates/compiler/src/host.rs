//! Lowering of select scans to x86-baseline micro-op streams.

use crate::error::CompileError;
use hipe_db::{DsmLayout, Query, COLUMN_BYTES};
use hipe_isa::{MicroOp, MicroOpKind, OpSize};

/// Rows per vector line: one 64 B cache line of 8 B column values.
const LINE_ROWS: usize = 8;

/// Lines per packed-mask word: 8 lines x 8 rows = 64 rows = one `u64`
/// of match bits.
const LINES_PER_MASK_WORD: usize = 8;

/// Lowers `query` over a DSM `layout` into the micro-op stream of a
/// vectorized column-at-a-time scan, writing a packed 1-bit-per-row
/// match mask at the layout's mask area base.
///
/// The modelled kernel is the paper's x86/AVX baseline (Figure 1b):
/// for every predicate, stream the column through the cache hierarchy
/// in 64 B vector loads, compare each lane against the immediate,
/// pack the lane results into bits, and combine them into the mask —
/// the first predicate stores fresh mask words, later predicates
/// read-modify-write them. Each line also carries the loop-overhead
/// ALU op and a well-predicted loop branch.
///
/// # Example
///
/// ```
/// use hipe_compiler::lower_host_scan;
/// use hipe_db::{DsmLayout, Query};
///
/// let layout = DsmLayout::new(0, 512);
/// let ops = lower_host_scan(&Query::q6(), &layout).expect("512 rows");
/// // Three predicates, 64 lines each, >= 5 micro-ops per line.
/// assert!(ops.len() >= 3 * 64 * 5);
/// ```
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows.
pub fn lower_host_scan(query: &Query, layout: &DsmLayout) -> Result<Vec<MicroOp>, CompileError> {
    if layout.rows() == 0 {
        return Err(CompileError::EmptyTable);
    }
    let mask_base = layout.mask_base();
    let vec_size = OpSize::new(64).expect("64 B is a supported vector width");
    let lines = layout.rows().div_ceil(LINE_ROWS);
    let mut ops = Vec::with_capacity(query.predicates().len() * lines * 6);

    for (pi, p) in query.predicates().iter().enumerate() {
        let col = layout.column_base(p.column);
        for line in 0..lines {
            let addr = col + (line * LINE_ROWS) as u64 * COLUMN_BYTES;
            // Vector load of 8 column values.
            ops.push(MicroOp::new(MicroOpKind::Load { addr, bytes: 64 }));
            // Lane-wise compare against the immediate(s).
            ops.push(MicroOp::new(MicroOpKind::VecAlu { size: vec_size }).with_deps(1, 0));
            // Pack lane results to bits (movemask-style).
            ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 0));
            // Mask word boundary: combine and write back 64 packed bits.
            if (line + 1) % LINES_PER_MASK_WORD == 0 || line + 1 == lines {
                let word = line / LINES_PER_MASK_WORD;
                let mask_addr = mask_base + word as u64 * 8;
                if pi == 0 {
                    // Fresh mask word: store the packed bits.
                    ops.push(
                        MicroOp::new(MicroOpKind::Store {
                            addr: mask_addr,
                            bytes: 8,
                        })
                        .with_deps(1, 0),
                    );
                } else {
                    // Refine: load, AND with the packed bits, store.
                    ops.push(MicroOp::new(MicroOpKind::Load {
                        addr: mask_addr,
                        bytes: 8,
                    }));
                    ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 2));
                    ops.push(
                        MicroOp::new(MicroOpKind::Store {
                            addr: mask_addr,
                            bytes: 8,
                        })
                        .with_deps(1, 0),
                    );
                }
            }
            // Loop overhead: index increment + biased (predicted) branch.
            ops.push(MicroOp::new(MicroOpKind::IntAlu));
            ops.push(MicroOp::new(MicroOpKind::Branch { mispredict: false }).with_deps(1, 0));
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::{CmpOp, Column, ColumnPredicate};

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    #[test]
    fn stream_touches_whole_column() {
        let layout = DsmLayout::new(0, 1024);
        let ops = lower_host_scan(&one_pred_query(), &layout).expect("non-empty");
        let col = layout.column_base(Column::Quantity);
        let loads: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::Load { addr, bytes: 64 } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 128);
        assert_eq!(loads[0], col);
        assert_eq!(*loads.last().expect("non-empty"), col + 127 * 64);
    }

    #[test]
    fn later_predicates_read_modify_write_mask() {
        let layout = DsmLayout::new(0, 64);
        let q = Query::q6();
        let ops = lower_host_scan(&q, &layout).expect("non-empty");
        let mask_loads = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::Load { bytes: 8, .. }))
            .count();
        let mask_stores = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::Store { .. }))
            .count();
        // 64 rows = 1 mask word; predicate 0 stores it, predicates 1-2
        // load + store it.
        assert_eq!(mask_loads, 2);
        assert_eq!(mask_stores, 3);
    }

    #[test]
    fn loop_branches_are_predicted() {
        let layout = DsmLayout::new(0, 256);
        let ops = lower_host_scan(&one_pred_query(), &layout).expect("non-empty");
        assert!(ops
            .iter()
            .all(|o| !matches!(o.kind, MicroOpKind::Branch { mispredict: true })));
    }

    #[test]
    fn tail_rows_emit_final_mask_word() {
        // 70 rows = 9 lines: the last (partial) word is flushed.
        let layout = DsmLayout::new(0, 70);
        let ops = lower_host_scan(&one_pred_query(), &layout).expect("non-empty");
        let stores: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![layout.mask_base(), layout.mask_base() + 8]);
    }

    #[test]
    fn zero_rows_is_a_typed_error() {
        let layout = DsmLayout::new(0, 0);
        assert_eq!(
            lower_host_scan(&one_pred_query(), &layout).unwrap_err(),
            CompileError::EmptyTable
        );
    }
}
