//! Lowering of select scans to x86-baseline micro-op streams.

use crate::error::CompileError;
use hipe_db::{DsmLayout, PruneStats, Query, ZoneMap, COLUMN_BYTES, REGION_ROWS};
use hipe_isa::{MicroOp, MicroOpKind, OpSize};

/// Rows per vector line: one 64 B cache line of 8 B column values.
const LINE_ROWS: usize = 8;

/// Lines per packed-mask word: 8 lines x 8 rows = 64 rows = one `u64`
/// of match bits.
const LINES_PER_MASK_WORD: usize = 8;

/// Lowers `query` over a DSM `layout` into the micro-op stream of a
/// vectorized column-at-a-time scan, writing a packed 1-bit-per-row
/// match mask at the layout's mask area base.
///
/// The modelled kernel is the paper's x86/AVX baseline (Figure 1b):
/// for every predicate, stream the column through the cache hierarchy
/// in 64 B vector loads, compare each lane against the immediate,
/// pack the lane results into bits, and combine them into the mask —
/// the first predicate stores fresh mask words, later predicates
/// read-modify-write them. Each line also carries the loop-overhead
/// ALU op and a well-predicted loop branch.
///
/// With `prune` set, the loop skips every 64 B line of a region whose
/// zone-map summaries prove the conjunction can't match (the modelled
/// kernel walks a region skip-list instead of the raw row range), and
/// a packed mask word is only written if at least one of its 64 rows
/// survives — fully pruned words keep the reset image's zeros, which
/// is already the correct all-zero mask. A fully pruned query lowers
/// to a valid *empty* stream, never an error: the machine's
/// functional mask is computed by reference evaluation, so pruning
/// here only removes timed work.
///
/// # Example
///
/// ```
/// use hipe_compiler::lower_host_scan;
/// use hipe_db::{DsmLayout, Query};
///
/// let layout = DsmLayout::new(0, 512);
/// let (ops, stats) = lower_host_scan(&Query::q6(), &layout, None).expect("512 rows");
/// // Three predicates, 64 lines each, >= 5 micro-ops per line.
/// assert!(ops.len() >= 3 * 64 * 5);
/// assert_eq!(stats.scanned, 16);
/// assert_eq!(stats.pruned, 0);
/// ```
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows,
/// [`CompileError::PredicateUnsatisfiable`] if a predicate is
/// statically impossible (inverted range).
pub fn lower_host_scan(
    query: &Query,
    layout: &DsmLayout,
    prune: Option<&ZoneMap>,
) -> Result<(Vec<MicroOp>, PruneStats), CompileError> {
    if layout.rows() == 0 {
        return Err(CompileError::EmptyTable);
    }
    if query.predicates().iter().any(|p| !p.cmp.satisfiable()) {
        return Err(CompileError::PredicateUnsatisfiable);
    }
    if let Some(zm) = prune {
        assert_eq!(
            zm.regions(),
            layout.regions(),
            "zone map summarizes a different table than the layout"
        );
    }
    let regions = layout.regions();
    let keep: Vec<bool> = (0..regions)
        .map(|r| prune.is_none_or(|zm| zm.region_may_match(query, r)))
        .collect();
    let scanned = keep.iter().filter(|&&k| k).count();
    let stats = PruneStats {
        scanned,
        pruned: regions - scanned,
    };
    let mask_base = layout.mask_base();
    let vec_size = OpSize::new(64).expect("64 B is a supported vector width");
    let lines = layout.rows().div_ceil(LINE_ROWS);
    let live_lines: Vec<usize> = (0..lines)
        .filter(|&l| keep[l * LINE_ROWS / REGION_ROWS])
        .collect();
    let mut ops = Vec::with_capacity(query.predicates().len() * live_lines.len() * 6);

    for (pi, p) in query.predicates().iter().enumerate() {
        let col = layout.column_base(p.column);
        for (j, &line) in live_lines.iter().enumerate() {
            let addr = col + (line * LINE_ROWS) as u64 * COLUMN_BYTES;
            // Vector load of 8 column values.
            ops.push(MicroOp::new(MicroOpKind::Load { addr, bytes: 64 }));
            // Lane-wise compare against the immediate(s).
            ops.push(MicroOp::new(MicroOpKind::VecAlu { size: vec_size }).with_deps(1, 0));
            // Pack lane results to bits (movemask-style).
            ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 0));
            // Mask word boundary — the last *surviving* line of a word
            // combines and writes back its 64 packed bits.
            let word = line / LINES_PER_MASK_WORD;
            if live_lines
                .get(j + 1)
                .is_none_or(|&next| next / LINES_PER_MASK_WORD != word)
            {
                let mask_addr = mask_base + word as u64 * 8;
                if pi == 0 {
                    // Fresh mask word: store the packed bits.
                    ops.push(
                        MicroOp::new(MicroOpKind::Store {
                            addr: mask_addr,
                            bytes: 8,
                        })
                        .with_deps(1, 0),
                    );
                } else {
                    // Refine: load, AND with the packed bits, store.
                    ops.push(MicroOp::new(MicroOpKind::Load {
                        addr: mask_addr,
                        bytes: 8,
                    }));
                    ops.push(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 2));
                    ops.push(
                        MicroOp::new(MicroOpKind::Store {
                            addr: mask_addr,
                            bytes: 8,
                        })
                        .with_deps(1, 0),
                    );
                }
            }
            // Loop overhead: index increment + biased (predicted) branch.
            ops.push(MicroOp::new(MicroOpKind::IntAlu));
            ops.push(MicroOp::new(MicroOpKind::Branch { mispredict: false }).with_deps(1, 0));
        }
    }
    Ok((ops, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::{CmpOp, Column, ColumnPredicate};

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    #[test]
    fn stream_touches_whole_column() {
        let layout = DsmLayout::new(0, 1024);
        let (ops, _) = lower_host_scan(&one_pred_query(), &layout, None).expect("non-empty");
        let col = layout.column_base(Column::Quantity);
        let loads: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::Load { addr, bytes: 64 } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(loads.len(), 128);
        assert_eq!(loads[0], col);
        assert_eq!(*loads.last().expect("non-empty"), col + 127 * 64);
    }

    #[test]
    fn later_predicates_read_modify_write_mask() {
        let layout = DsmLayout::new(0, 64);
        let q = Query::q6();
        let (ops, _) = lower_host_scan(&q, &layout, None).expect("non-empty");
        let mask_loads = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::Load { bytes: 8, .. }))
            .count();
        let mask_stores = ops
            .iter()
            .filter(|o| matches!(o.kind, MicroOpKind::Store { .. }))
            .count();
        // 64 rows = 1 mask word; predicate 0 stores it, predicates 1-2
        // load + store it.
        assert_eq!(mask_loads, 2);
        assert_eq!(mask_stores, 3);
    }

    #[test]
    fn loop_branches_are_predicted() {
        let layout = DsmLayout::new(0, 256);
        let (ops, _) = lower_host_scan(&one_pred_query(), &layout, None).expect("non-empty");
        assert!(ops
            .iter()
            .all(|o| !matches!(o.kind, MicroOpKind::Branch { mispredict: true })));
    }

    #[test]
    fn tail_rows_emit_final_mask_word() {
        // 70 rows = 9 lines: the last (partial) word is flushed.
        let layout = DsmLayout::new(0, 70);
        let (ops, _) = lower_host_scan(&one_pred_query(), &layout, None).expect("non-empty");
        let stores: Vec<u64> = ops
            .iter()
            .filter_map(|o| match o.kind {
                MicroOpKind::Store { addr, .. } => Some(addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![layout.mask_base(), layout.mask_base() + 8]);
    }

    #[test]
    fn zero_rows_is_a_typed_error() {
        let layout = DsmLayout::new(0, 0);
        assert_eq!(
            lower_host_scan(&one_pred_query(), &layout, None).unwrap_err(),
            CompileError::EmptyTable
        );
    }

    #[test]
    fn inverted_range_is_a_typed_error() {
        let layout = DsmLayout::new(0, 64);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Range(9, 2))],
            false,
        );
        assert_eq!(
            lower_host_scan(&q, &layout, None).unwrap_err(),
            CompileError::PredicateUnsatisfiable
        );
    }

    #[test]
    fn pruning_skips_lines_and_dead_mask_words() {
        let rows = 4096;
        let t = hipe_db::LineitemTable::generate_clustered_range(7, 0, rows, rows);
        let zm = hipe_db::ZoneMap::build(&t);
        let layout = DsmLayout::new(0, rows);
        let q = Query::shipdate_window_permille(100);
        let (full, fs) = lower_host_scan(&q, &layout, None).expect("valid");
        let (pruned, ps) = lower_host_scan(&q, &layout, Some(&zm)).expect("valid");
        assert_eq!(fs.pruned, 0);
        assert_eq!(ps.total(), layout.regions());
        assert!(ps.pruned > 0);
        assert!(pruned.len() < full.len());
        // Pruned stream only stores words at least one region of which
        // survives — a subset of the full stream's word addresses.
        let words = |ops: &[MicroOp]| -> Vec<u64> {
            ops.iter()
                .filter_map(|o| match o.kind {
                    MicroOpKind::Store { addr, .. } => Some(addr),
                    _ => None,
                })
                .collect()
        };
        let full_words = words(&full);
        let pruned_words = words(&pruned);
        assert!(pruned_words.len() < full_words.len());
        for a in pruned_words {
            assert!(full_words.contains(&a));
        }
    }

    #[test]
    fn fully_pruned_scan_is_a_valid_empty_stream() {
        let total = 2048;
        let t = hipe_db::LineitemTable::generate_clustered_range(3, total / 2, total / 2, total);
        let zm = hipe_db::ZoneMap::build(&t);
        let layout = DsmLayout::new(0, total / 2);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(0, 50))],
            false,
        );
        let (ops, stats) = lower_host_scan(&q, &layout, Some(&zm)).expect("empty is valid");
        assert!(ops.is_empty());
        assert_eq!(stats.scanned, 0);
        assert_eq!(stats.pruned, layout.regions());
    }
}
