//! Query lowering: from [`hipe_db::Query`] select scans to executable
//! instruction streams.
//!
//! This crate is the workspace's compiler layer. It owns the mapping
//! from the database-level description of a select scan (a conjunction
//! of [`hipe_db::CmpOp`] column predicates over a DSM table) to the two
//! instruction sets the system simulates:
//!
//! * [`lower_logic_scan`] — the HIVE/HIPE path: a
//!   [`hipe_isa::LogicInstr`] program executed by the logic-layer
//!   engine inside the cube. The
//!   scan is tiled into 256 B *regions* (32 rows, one row buffer); for
//!   each region the program loads a column chunk, compares it, ANDs
//!   the result into a running match mask and finally stores the mask.
//!   When lowering for HIPE, every instruction after the first compare
//!   of a region is predicated on the running mask being non-zero, so
//!   regions with no surviving candidate are squashed in a sequencer
//!   slot each instead of touching DRAM.
//! * [`lower_host_scan`] — the x86 baseline path: a
//!   [`hipe_isa::MicroOp`] stream modelling a vectorized
//!   column-at-a-time scan through the cache
//!   hierarchy (64 B vector compares, packed bitmask load/AND/store,
//!   loop overhead and a well-predicted loop branch).
//! * [`lower_hmc_scan`] — the stock HMC atomic-ISA path: per-region
//!   [`hipe_isa::VaultOp::LoadCmp`] dispatches executed by the vault
//!   functional units (16 B operands on the stock machine,
//!   [`STOCK_HMC_OP`]), with the mask combine/pack/store work kept on
//!   the host.
//! * [`lower_logic_aggregate`] — the fused near-data aggregate path
//!   for `SUM(l_extendedprice * l_discount)` queries on HIVE/HIPE:
//!   each region's scan block is extended with loads of the price and
//!   discount chunks, a lane-wise `Mul`, and a dot-product `AddReduce`
//!   against the match mask into the region's lane of a group partial
//!   register, flushed one row-buffer store per 32-region group next
//!   to the mask output ([`AGG_SLOT_BYTES`] per region) — the host
//!   only reads back and combines the compact partials instead of
//!   gathering matched tuples over the links. On HIPE the whole tail
//!   is predicated, so regions without matches squash it.
//!
//! The logic-layer lowerings are *partition-aware*: over a
//! vault-partitioned [`hipe_db::DsmLayout`] they emit one
//! [`hipe_isa::LogicProgram`] per vault group — each covering exactly
//! the regions the HMC interleave places in that group's vaults — so
//! N logic-layer engines can scan the table concurrently without ever
//! sharing a bank. A single-partition layout produces the historical
//! monolithic stream, address for address.
//!
//! Every entry point returns a typed [`CompileError`] for invalid
//! inputs (zero-row layouts, aggregate lowering of non-aggregating
//! queries) instead of panicking, and the driver's `Backend::compile`
//! surfaces the error unchanged.
//!
//! The lowering is *timing-oriented*: the emitted streams drive the
//! cycle models, while functional results are computed by the engines
//! (logic path) or the reference evaluation over the memory image
//! (host paths) in the top-level `hipe` crate.
//!
//! Entry points not needed yet by the driver (NSM tuple-at-a-time
//! lowering) are future work tracked in the ROADMAP.

mod error;
mod hmc;
mod host;
mod logic;

pub use error::CompileError;
pub use hmc::{lower_hmc_scan, STOCK_HMC_OP};
pub use host::lower_host_scan;
pub use logic::{
    lower_logic_aggregate, lower_logic_scan, LogicScanProgram, AGG_SLOT_BYTES, REGION_ROWS,
};
