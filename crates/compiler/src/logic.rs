//! Lowering of select scans (and fused aggregates) to HIVE/HIPE
//! logic-layer programs.

use crate::error::CompileError;
use hipe_db::{CmpOp, Column, DsmLayout, Query};
use hipe_isa::{AluOp, LogicInstr, OpSize, Predicate, RegId};

/// Rows covered by one logic-layer operation: a full 256 B register
/// (32 x 8 B lanes), which is also one DRAM row buffer.
pub const REGION_ROWS: usize = 32;

/// Bytes of one per-region partial-sum slot in the aggregate output
/// area: one 8 B lane per region.
pub const AGG_SLOT_BYTES: u64 = 8;

/// Regions whose partials share one 256 B partial-sum register (and
/// therefore one row-buffer store): the lane-merging `AddReduce`
/// deposits each region's sum into its own lane, and the register is
/// flushed once per group. One store per 32 regions keeps the
/// partial-store traffic off the banks that the column-load streams
/// sweep — a store per region was measured to collide with every
/// passing stream and stall the scan.
const AGG_GROUP: usize = 32;

/// 256 B DRAM rows of the aggregate output area for `regions` regions.
fn agg_area_rows(regions: usize) -> usize {
    regions.div_ceil(AGG_GROUP)
}

/// Bytes of the aggregate partial-sum output area for a table of
/// `rows` rows: whole 256 B DRAM rows holding one 8 B slot per 32-row
/// region. The `System` driver reserves this much image right after
/// the mask area.
pub fn aggregate_area_bytes(rows: usize) -> u64 {
    agg_area_rows(rows.div_ceil(REGION_ROWS)) as u64 * OpSize::MAX.bytes()
}

/// A lowered logic-layer program: a select scan, optionally extended
/// with the fused near-data aggregate tail.
///
/// The program is a flat in-order instruction stream: one `Lock`, then
/// per-region blocks, then one `Unlock` whose acknowledgement tells
/// the host the scan (and its stores) is complete. Region `i` covers
/// rows `[32 * i, 32 * i + 32)` and writes its match mask (one 0/1
/// lane per row) to [`mask_addr`](Self::mask_addr)`(i)`.
///
/// For aggregate queries lowered with [`lower_logic_aggregate`], each
/// region's block additionally loads the `l_extendedprice` and
/// `l_discount` chunks, multiplies them, and dot-product-reduces the
/// products against the match mask into the region's lane of a group
/// partial-sum register, flushed one row buffer per 32-region group;
/// region `i`'s 8 B partial lands at [`agg_addr`](Self::agg_addr)`(i)`
/// — so only compact partials (not per-tuple values) ever cross the
/// serial links.
///
/// # Example
///
/// ```
/// use hipe_compiler::{lower_logic_scan, REGION_ROWS};
/// use hipe_db::{DsmLayout, Query};
///
/// let layout = DsmLayout::new(0, 1000);
/// let prog = lower_logic_scan(&Query::q6(), &layout, 1 << 20, true).expect("non-empty layout");
/// assert_eq!(prog.regions(), 1000usize.div_ceil(REGION_ROWS));
/// assert_eq!(prog.mask_addr(2), (1 << 20) + 512);
/// // Lock + per-region block + Unlock.
/// assert!(prog.instrs().len() > 2 * prog.regions());
/// assert_eq!(prog.aggregate_base(), None);
/// ```
#[derive(Debug, Clone)]
pub struct LogicScanProgram {
    instrs: Vec<LogicInstr>,
    regions: usize,
    mask_base: u64,
    /// Base address of the per-region partial-sum area (fused
    /// aggregate programs only).
    agg_base: Option<u64>,
}

impl LogicScanProgram {
    /// The instruction stream, in program order.
    pub fn instrs(&self) -> &[LogicInstr] {
        &self.instrs
    }

    /// Number of 32-row regions the scan is tiled into.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Base address of the mask output area.
    pub fn mask_base(&self) -> u64 {
        self.mask_base
    }

    /// Address of region `i`'s 256 B mask chunk.
    pub fn mask_addr(&self, i: usize) -> u64 {
        self.mask_base + i as u64 * OpSize::MAX.bytes()
    }

    /// Bytes of mask output the program writes (one 256 B chunk per
    /// region).
    pub fn mask_bytes(&self) -> u64 {
        self.regions as u64 * OpSize::MAX.bytes()
    }

    /// Base address of the per-region partial-sum output area, or
    /// `None` for a plain (non-aggregating) scan program.
    pub fn aggregate_base(&self) -> Option<u64> {
        self.agg_base
    }

    /// Address of region `i`'s 8 B partial-sum slot: lane `i % 32` of
    /// the area row its 32-region group was flushed to.
    ///
    /// # Panics
    ///
    /// Panics if the program carries no fused aggregate.
    pub fn agg_addr(&self, i: usize) -> u64 {
        let base = self.agg_base.expect("not an aggregate program");
        base + i as u64 * AGG_SLOT_BYTES
    }

    /// Bytes of the partial-sum output area (whole 256 B rows; unused
    /// pad slots stay zero and contribute nothing to the combined sum;
    /// zero for plain scans).
    pub fn agg_bytes(&self) -> u64 {
        match self.agg_base {
            Some(_) => agg_area_rows(self.regions) as u64 * OpSize::MAX.bytes(),
            None => 0,
        }
    }
}

/// Maps a database comparison onto the logic-layer ALU.
fn alu_op(cmp: CmpOp) -> AluOp {
    match cmp {
        CmpOp::Lt(x) => AluOp::CmpLtImm(x),
        CmpOp::Le(x) => AluOp::CmpLeImm(x),
        CmpOp::Gt(x) => AluOp::CmpGtImm(x),
        CmpOp::Ge(x) => AluOp::CmpGeImm(x),
        CmpOp::Eq(x) => AluOp::CmpEqImm(x),
        CmpOp::Range(lo, hi) => AluOp::CmpRangeImm(lo, hi),
    }
}

/// Lowers `query` over a DSM `layout` into a logic-layer select-scan
/// program whose match masks are written starting at `mask_base`
/// (256 B per region).
///
/// With `predicated` set (HIPE), every instruction of a region after
/// the first compare carries an any-non-zero predicate on the running
/// mask register; without it (HIVE) the same stream is emitted
/// unpredicated. Regions use two alternating register sets so that a
/// region's loads can overlap the previous region's stores (the
/// interlocked bank resolves the WAR hazards).
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows.
pub fn lower_logic_scan(
    query: &Query,
    layout: &DsmLayout,
    mask_base: u64,
    predicated: bool,
) -> Result<LogicScanProgram, CompileError> {
    lower(query, layout, mask_base, predicated, false)
}

/// Lowers an aggregate `query` into a fused logic-layer program: the
/// select scan of [`lower_logic_scan`] with each region's block
/// extended by the near-data aggregate tail —
///
/// 1. load the region's `l_extendedprice` and `l_discount` chunks,
/// 2. `Mul` them lane-wise,
/// 3. `AddReduce` the products against the match mask (dot product,
///    so non-matching lanes contribute zero) into this region's lane
///    of a group partial-sum register,
/// 4. once per 32-region group, flush the register's 32 partials as a
///    single row-buffer store next to the mask output
///    ([`LogicScanProgram::agg_addr`] locates each region's 8 B slot).
///
/// The tail uses its own register sets so its DRAM latency hides
/// behind the next region's scan, and the one-store-per-group flush
/// keeps the partial stores from contending with the column-load
/// streams for banks. With `predicated` set (HIPE) the per-region
/// tail is guarded on the region's mask being non-zero, so regions
/// with no matching tuple squash it in a sequencer slot per
/// instruction without touching DRAM; the group's register is zeroed
/// unpredicated at group start, which makes a squashed region's lane
/// an exact zero.
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows,
/// [`CompileError::NotAnAggregate`] if the query does not aggregate.
pub fn lower_logic_aggregate(
    query: &Query,
    layout: &DsmLayout,
    mask_base: u64,
    predicated: bool,
) -> Result<LogicScanProgram, CompileError> {
    if !query.aggregates() {
        return Err(CompileError::NotAnAggregate);
    }
    lower(query, layout, mask_base, predicated, true)
}

/// Shared emitter of scan and fused-aggregate programs.
fn lower(
    query: &Query,
    layout: &DsmLayout,
    mask_base: u64,
    predicated: bool,
    fused_aggregate: bool,
) -> Result<LogicScanProgram, CompileError> {
    if layout.rows() == 0 {
        return Err(CompileError::EmptyTable);
    }
    let size = OpSize::MAX;
    let regions = layout.rows().div_ceil(REGION_ROWS);
    let npreds = query.predicates().len();
    let agg_base = fused_aggregate.then(|| mask_base + regions as u64 * size.bytes());
    let tail_len = if fused_aggregate { 6 } else { 0 };
    let mut instrs = Vec::with_capacity(2 + regions * (3 * npreds + 1 + tail_len));

    let reg = |i: usize| RegId::new(i).expect("register in bank");
    // Register sets rotated between consecutive regions: two scan sets
    // of (data, mask, tmp), and — for fused aggregates — four tail
    // sets of (price, discount, partial). The tail gets its own, wider
    // rotation so its column loads' DRAM latency stays off the next
    // regions' scan chain (the balanced bank has 36 registers; the
    // scan alone leaves 30 of them idle).
    let set = |base: usize| (reg(base), reg(base + 1), reg(base + 2));
    let scan_sets = [set(0), set(3)];
    let agg_sets = [set(6), set(9), set(12), set(15)];
    // Group partial-sum registers, alternated between consecutive
    // 32-region groups so a group's flush overlaps the next group's
    // reduces.
    let parts = [reg(18), reg(19)];

    instrs.push(LogicInstr::Lock);
    for region in 0..regions {
        let (r_data, r_mask, r_tmp) = scan_sets[region % 2];
        let chunk = region as u64 * size.bytes();
        let guard = predicated.then(|| Predicate::any_nonzero(r_mask));
        for (pi, p) in query.predicates().iter().enumerate() {
            let addr = layout.column_base(p.column) + chunk;
            // The first predicate of a region establishes the mask and
            // cannot be guarded by it.
            let pred = if pi == 0 { None } else { guard };
            instrs.push(LogicInstr::Load {
                dst: r_data,
                addr,
                size,
                pred,
            });
            if pi == 0 {
                instrs.push(LogicInstr::Alu {
                    op: alu_op(p.cmp),
                    dst: r_mask,
                    a: r_data,
                    b: None,
                    size,
                    pred: None,
                });
            } else {
                instrs.push(LogicInstr::Alu {
                    op: alu_op(p.cmp),
                    dst: r_tmp,
                    a: r_data,
                    b: None,
                    size,
                    pred,
                });
                instrs.push(LogicInstr::Alu {
                    op: AluOp::And,
                    dst: r_mask,
                    a: r_mask,
                    b: Some(r_tmp),
                    size,
                    pred,
                });
            }
        }
        // The mask area starts zeroed, so a squashed store leaves the
        // correct all-zero mask behind.
        instrs.push(LogicInstr::Store {
            src: r_mask,
            addr: mask_base + chunk,
            size,
            pred: guard,
        });
        if let Some(agg_base) = agg_base {
            let (r_price, r_disc, r_mcopy) = agg_sets[region % 4];
            let group = region / AGG_GROUP;
            let r_part = parts[group % 2];
            if region % AGG_GROUP == 0 {
                // Fresh group: zero its partial register (never
                // predicated — on HIPE a squashed region must leave
                // its lane at exactly zero, not at the previous
                // group's value).
                instrs.push(LogicInstr::Alu {
                    op: AluOp::Sub,
                    dst: r_part,
                    a: r_part,
                    b: Some(r_part),
                    size,
                    pred: None,
                });
            }
            // Snapshot the final mask into a tail register immediately:
            // the copy consumes `r_mask` as soon as it is ready, so the
            // reduce (which waits ~a DRAM latency for the price chunk)
            // does not stretch the scan's cross-region WAR chain on the
            // mask register.
            instrs.push(LogicInstr::Alu {
                op: AluOp::Or,
                dst: r_mcopy,
                a: r_mask,
                b: Some(r_mask),
                size,
                pred: guard,
            });
            instrs.push(LogicInstr::Load {
                dst: r_price,
                addr: layout.column_base(Column::ExtendedPrice) + chunk,
                size,
                pred: guard,
            });
            instrs.push(LogicInstr::Load {
                dst: r_disc,
                addr: layout.column_base(Column::Discount) + chunk,
                size,
                pred: guard,
            });
            instrs.push(LogicInstr::Alu {
                op: AluOp::Mul,
                dst: r_price,
                a: r_price,
                b: Some(r_disc),
                size,
                pred: guard,
            });
            // Dot product against the 0/1 match mask into this
            // region's lane of the group partial register:
            // non-matching lanes (and the zero-padded tail of the
            // last region) contribute nothing.
            instrs.push(LogicInstr::Alu {
                op: AluOp::AddReduce {
                    lane: (region % AGG_GROUP) as u8,
                },
                dst: r_part,
                a: r_price,
                b: Some(r_mcopy),
                size,
                pred: guard,
            });
            if (region + 1) % AGG_GROUP == 0 || region + 1 == regions {
                // Flush the group's 32 partials as one row-buffer
                // store (never predicated: earlier regions of the
                // group may have matched even if this one did not).
                instrs.push(LogicInstr::Store {
                    src: r_part,
                    addr: agg_base + group as u64 * size.bytes(),
                    size,
                    pred: None,
                });
            }
        }
    }
    instrs.push(LogicInstr::Unlock);

    Ok(LogicScanProgram {
        instrs,
        regions,
        mask_base,
        agg_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::ColumnPredicate;

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    fn scan(query: &Query, rows: usize, mask_base: u64, predicated: bool) -> LogicScanProgram {
        let layout = DsmLayout::new(0, rows);
        lower_logic_scan(query, &layout, mask_base, predicated).expect("non-empty layout")
    }

    fn aggregate(query: &Query, rows: usize, mask_base: u64, pred: bool) -> LogicScanProgram {
        let layout = DsmLayout::new(0, rows);
        lower_logic_aggregate(query, &layout, mask_base, pred).expect("valid aggregate")
    }

    #[test]
    fn single_predicate_block_shape() {
        let prog = scan(&one_pred_query(), 64, 4096, true);
        assert_eq!(prog.regions(), 2);
        // Lock, (Load, Cmp, Store) x 2, Unlock.
        assert_eq!(prog.instrs().len(), 8);
        assert!(matches!(prog.instrs()[0], LogicInstr::Lock));
        assert!(matches!(prog.instrs()[7], LogicInstr::Unlock));
    }

    #[test]
    fn q6_emits_three_compares_per_region() {
        let prog = scan(&Query::q6(), 32, 4096, true);
        let alu = prog
            .instrs()
            .iter()
            .filter(|i| matches!(i, LogicInstr::Alu { .. }))
            .count();
        // 3 compares + 2 ANDs for one region.
        assert_eq!(alu, 5);
    }

    #[test]
    fn hive_lowering_is_unpredicated() {
        let prog = scan(&Query::q6(), 320, 1 << 16, false);
        assert!(prog.instrs().iter().all(|i| i.predicate().is_none()));
    }

    #[test]
    fn hipe_lowering_guards_everything_after_first_compare() {
        let prog = scan(&Query::q6(), 32, 1 << 16, true);
        let preds = prog
            .instrs()
            .iter()
            .filter(|i| i.predicate().is_some())
            .count();
        // Per region: 2 loads, 2 compares, 2 ANDs, 1 store are guarded.
        assert_eq!(preds, 7);
    }

    #[test]
    fn first_load_and_compare_never_predicated() {
        let prog = scan(&one_pred_query(), 3200, 1 << 20, true);
        for w in prog.instrs().windows(2) {
            if let [LogicInstr::Load { pred, .. }, LogicInstr::Alu { pred: apred, .. }] = w {
                if pred.is_none() {
                    assert!(apred.is_none(), "first compare must be unguarded");
                }
            }
        }
    }

    #[test]
    fn mask_addresses_are_disjoint_row_buffers() {
        let prog = scan(&one_pred_query(), 100, 1 << 20, true);
        assert_eq!(prog.regions(), 4);
        for i in 1..prog.regions() {
            assert_eq!(prog.mask_addr(i) - prog.mask_addr(i - 1), 256);
        }
        assert_eq!(prog.mask_bytes(), 4 * 256);
    }

    #[test]
    fn consecutive_regions_alternate_register_sets() {
        let prog = scan(&one_pred_query(), 64, 1 << 20, false);
        let dsts: Vec<_> = prog
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Load { dst, .. } => Some(dst.index()),
                _ => None,
            })
            .collect();
        assert_eq!(dsts, vec![0, 3]);
    }

    #[test]
    fn zero_rows_is_a_typed_error() {
        let layout = DsmLayout::new(0, 0);
        assert_eq!(
            lower_logic_scan(&one_pred_query(), &layout, 0, true).unwrap_err(),
            CompileError::EmptyTable
        );
        assert_eq!(
            lower_logic_aggregate(&Query::q6(), &layout, 0, true).unwrap_err(),
            CompileError::EmptyTable
        );
    }

    #[test]
    fn aggregate_lowering_rejects_plain_scans() {
        let layout = DsmLayout::new(0, 64);
        assert_eq!(
            lower_logic_aggregate(&one_pred_query(), &layout, 1 << 16, true).unwrap_err(),
            CompileError::NotAnAggregate
        );
    }

    #[test]
    fn aggregate_tail_extends_every_region() {
        let q = Query::q6();
        let plain = scan(&q, 100, 1 << 20, true);
        let fused = aggregate(&q, 100, 1 << 20, true);
        assert_eq!(fused.regions(), plain.regions());
        // Five tail instructions per region, plus one zero and one
        // flush for the single 32-region group.
        assert_eq!(
            fused.instrs().len(),
            plain.instrs().len() + 5 * fused.regions() + 2
        );
        let muls = fused
            .instrs()
            .iter()
            .filter(|i| matches!(i, LogicInstr::Alu { op: AluOp::Mul, .. }))
            .count();
        let reduce_lanes: Vec<u8> = fused
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Alu {
                    op: AluOp::AddReduce { lane },
                    b: Some(_),
                    ..
                } => Some(*lane),
                _ => None,
            })
            .collect();
        assert_eq!(muls, fused.regions());
        // One mask-dotted reduce per region, each into its own lane.
        assert_eq!(reduce_lanes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn aggregate_partials_live_after_the_mask_area() {
        let prog = aggregate(&Query::q6(), 100, 1 << 20, false);
        let base = prog.aggregate_base().expect("fused program");
        assert_eq!(base, prog.mask_base() + prog.mask_bytes());
        // One 8 B slot per region, dense from the area base.
        for i in 0..prog.regions() {
            assert_eq!(prog.agg_addr(i), base + i as u64 * AGG_SLOT_BYTES);
        }
        assert_eq!(prog.agg_bytes(), 256);
        // Four regions form one group: a single row-buffer flush into
        // the area.
        let stores: Vec<u64> = prog
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Store { addr, .. } if *addr >= base => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![base]);
    }

    #[test]
    fn aggregate_groups_flush_one_row_buffer_each() {
        // 3200 rows = 100 regions = 4 groups (32 + 32 + 32 + 4): one
        // unpredicated zero + one unpredicated flush per group, flushes
        // to consecutive area rows, and the final partial group is
        // flushed by the last region.
        let prog = aggregate(&Query::q6(), 3200, 1 << 20, true);
        let base = prog.aggregate_base().expect("fused program");
        let zeroes = prog
            .instrs()
            .iter()
            .filter(|i| {
                matches!(
                    i,
                    LogicInstr::Alu {
                        op: AluOp::Sub,
                        pred: None,
                        ..
                    }
                )
            })
            .count();
        let flushes: Vec<u64> = prog
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Store {
                    addr, pred: None, ..
                } if *addr >= base => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(zeroes, 4);
        assert_eq!(flushes, vec![base, base + 256, base + 512, base + 768]);
        assert_eq!(prog.agg_bytes(), 4 * 256);
        // Slot addresses stay inside the area, one per region.
        let mut addrs: Vec<u64> = (0..prog.regions()).map(|i| prog.agg_addr(i)).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), prog.regions());
        assert!(addrs
            .iter()
            .all(|&a| a >= base && a + AGG_SLOT_BYTES <= base + prog.agg_bytes()));
    }

    #[test]
    fn hipe_aggregate_tail_is_fully_guarded() {
        let prog = aggregate(&Query::q6(), 32, 1 << 16, true);
        // Scan guards (7) plus the five per-region tail instructions;
        // the group zero and flush must stay unpredicated.
        let preds = prog
            .instrs()
            .iter()
            .filter(|i| i.predicate().is_some())
            .count();
        assert_eq!(preds, 7 + 5);
        assert!(prog.instrs().iter().any(
            |i| matches!(i, LogicInstr::Store { addr, pred: None, .. } if *addr >= prog.aggregate_base().expect("fused"))
        ));
    }

    #[test]
    fn hive_aggregate_tail_is_unpredicated() {
        let prog = aggregate(&Query::q6(), 320, 1 << 16, false);
        assert!(prog.instrs().iter().all(|i| i.predicate().is_none()));
    }

    #[test]
    fn aggregate_tail_loads_price_and_discount_columns() {
        let layout = DsmLayout::new(0, 32);
        let prog =
            lower_logic_aggregate(&Query::q6(), &layout, 1 << 16, false).expect("valid aggregate");
        let loads: Vec<u64> = prog
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        // Scan loads the three predicate columns; the tail reloads
        // price and discount for the region.
        assert!(loads.contains(&layout.column_base(Column::ExtendedPrice)));
        assert_eq!(
            loads
                .iter()
                .filter(|&&a| a == layout.column_base(Column::Discount))
                .count(),
            2
        );
    }
}
