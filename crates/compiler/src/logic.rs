//! Lowering of select scans (and fused aggregates) to HIVE/HIPE
//! logic-layer programs — one per vault-group partition.

use crate::error::CompileError;
use hipe_db::{CmpOp, Column, DsmLayout, PruneStats, Query, ZoneMap, REGION_BYTES};
use hipe_isa::{AluOp, LogicInstr, LogicProgram, OpSize, PartitionSpec, Predicate, RegId};

/// Rows covered by one logic-layer operation: a full 256 B register
/// (32 x 8 B lanes), which is also one DRAM row buffer.
pub use hipe_db::REGION_ROWS;

/// Bytes of one per-region partial-sum slot in the aggregate output
/// area: one 8 B lane per region.
pub const AGG_SLOT_BYTES: u64 = 8;

/// Regions whose partials share one 256 B partial-sum register (and
/// therefore one row-buffer store): the lane-merging `AddReduce`
/// deposits each region's sum into its own lane, and the register is
/// flushed once per group. One store per 32 regions keeps the
/// partial-store traffic off the banks that the column-load streams
/// sweep — a store per region was measured to collide with every
/// passing stream and stall the scan. Grouping is over a partition's
/// *own* region order, so every flush stays inside its vault group.
const AGG_GROUP: usize = 32;

/// A lowered logic-layer scan: one partition-tagged instruction stream
/// per vault group, plus the shared output-area map.
///
/// Each [`LogicProgram`] is a flat in-order stream for one engine: one
/// `Lock`, then per-region blocks over the partition's own regions,
/// then one `Unlock` whose acknowledgement tells the host that
/// partition's scan (and its stores) is complete. Region `i` covers
/// rows `[32 * i, 32 * i + 32)` and writes its match mask (one 0/1
/// lane per row) to [`mask_addr`](Self::mask_addr)`(i)`; with a
/// single-partition layout the one program is exactly the historical
/// monolithic stream.
///
/// For aggregate queries lowered with [`lower_logic_aggregate`], each
/// region's block additionally loads the `l_extendedprice` and
/// `l_discount` chunks, multiplies them, and dot-product-reduces the
/// products against the match mask into a lane of its partition's
/// group partial-sum register, flushed one row buffer per 32 owned
/// regions into the partition's own vaults; region `i`'s 8 B partial
/// lands at [`agg_addr`](Self::agg_addr)`(i)` — so only compact
/// partials (not per-tuple values) ever cross the serial links.
///
/// # Example
///
/// ```
/// use hipe_compiler::{lower_logic_scan, REGION_ROWS};
/// use hipe_db::{DsmLayout, Query};
///
/// let layout = DsmLayout::new(0, 1000);
/// let prog = lower_logic_scan(&Query::q6(), &layout, true, None).expect("non-empty layout");
/// assert_eq!(prog.regions(), 1000usize.div_ceil(REGION_ROWS));
/// assert_eq!(prog.partitions(), 1);
/// assert_eq!(prog.mask_addr(2), layout.mask_base() + 512);
/// // Lock + per-region block + Unlock.
/// assert!(prog.total_instrs() > 2 * prog.regions());
/// assert_eq!(prog.aggregate_base(), None);
/// ```
#[derive(Debug, Clone)]
pub struct LogicScanProgram {
    programs: Vec<LogicProgram>,
    layout: DsmLayout,
    aggregate: bool,
    prune: PruneStats,
}

impl LogicScanProgram {
    /// The per-partition programs, one per vault group (empty streams
    /// for partitions the table never reaches).
    pub fn programs(&self) -> &[LogicProgram] {
        &self.programs
    }

    /// Number of vault-group partitions (== engines that will run).
    pub fn partitions(&self) -> usize {
        self.programs.len()
    }

    /// Total lowered instructions across all partitions.
    pub fn total_instrs(&self) -> usize {
        self.programs.iter().map(LogicProgram::len).sum()
    }

    /// All instructions, partition-major (inspection and tests).
    pub fn iter_instrs(&self) -> impl Iterator<Item = &LogicInstr> {
        self.programs.iter().flat_map(|p| p.instrs().iter())
    }

    /// Number of 32-row regions the scan is tiled into.
    pub fn regions(&self) -> usize {
        self.layout.regions()
    }

    /// Base address of the mask output area.
    pub fn mask_base(&self) -> u64 {
        self.layout.mask_base()
    }

    /// Address of region `i`'s 256 B mask chunk.
    pub fn mask_addr(&self, i: usize) -> u64 {
        self.layout.mask_addr(i)
    }

    /// Bytes of mask output the program writes (one 256 B chunk per
    /// region).
    pub fn mask_bytes(&self) -> u64 {
        self.regions() as u64 * REGION_BYTES
    }

    /// Base address of the per-region partial-sum output area, or
    /// `None` for a plain (non-aggregating) scan program.
    pub fn aggregate_base(&self) -> Option<u64> {
        self.aggregate.then(|| self.layout.agg_base())
    }

    /// Address of region `i`'s 8 B partial-sum slot.
    ///
    /// # Panics
    ///
    /// Panics if the program carries no fused aggregate.
    pub fn agg_addr(&self, i: usize) -> u64 {
        assert!(self.aggregate, "not an aggregate program");
        self.layout.agg_slot_addr(i)
    }

    /// Bytes of the partial-sum output area (whole 256 B rows; unused
    /// pad slots stay zero and contribute nothing to the combined sum;
    /// zero for plain scans).
    pub fn agg_bytes(&self) -> u64 {
        if self.aggregate {
            self.layout.agg_area_bytes()
        } else {
            0
        }
    }

    /// Regions the emitted streams scan vs. regions the zone map let
    /// the compiler drop ([`PruneStats::unpruned`] when lowered
    /// without one).
    pub fn prune_stats(&self) -> PruneStats {
        self.prune
    }
}

/// Maps a database comparison onto the logic-layer ALU.
fn alu_op(cmp: CmpOp) -> AluOp {
    match cmp {
        CmpOp::Lt(x) => AluOp::CmpLtImm(x),
        CmpOp::Le(x) => AluOp::CmpLeImm(x),
        CmpOp::Gt(x) => AluOp::CmpGtImm(x),
        CmpOp::Ge(x) => AluOp::CmpGeImm(x),
        CmpOp::Eq(x) => AluOp::CmpEqImm(x),
        CmpOp::Range(lo, hi) => AluOp::CmpRangeImm(lo, hi),
    }
}

/// Lowers `query` over a DSM `layout` into per-partition logic-layer
/// select-scan programs whose match masks are written to the layout's
/// mask area (256 B per region).
///
/// With `predicated` set (HIPE), every instruction of a region after
/// the first compare carries an any-non-zero predicate on the running
/// mask register; without it (HIVE) the same stream is emitted
/// unpredicated. Within each partition, regions use two alternating
/// register sets so that a region's loads can overlap the previous
/// region's stores (the interlocked bank resolves the WAR hazards);
/// every engine has its own register bank, so the allocation repeats
/// per partition.
///
/// With `prune` set, regions whose zone-map summaries prove the
/// predicate conjunction can't match are dropped from the emitted
/// streams ([`LogicScanProgram::prune_stats`] counts them). A dropped
/// region's mask chunk is simply never written — the mask area starts
/// zeroed, so it reads back as the correct all-zero mask. **Empty
/// programs are a valid result**: a partition (or the whole query)
/// with every region pruned lowers to an instruction-free
/// [`LogicProgram`], which the dispatcher skips — never an error, and
/// never a panic downstream.
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows,
/// [`CompileError::PredicateUnsatisfiable`] if a predicate is
/// statically impossible (inverted range).
pub fn lower_logic_scan(
    query: &Query,
    layout: &DsmLayout,
    predicated: bool,
    prune: Option<&ZoneMap>,
) -> Result<LogicScanProgram, CompileError> {
    lower(query, layout, predicated, false, prune)
}

/// Lowers an aggregate `query` into fused per-partition logic-layer
/// programs: the select scan of [`lower_logic_scan`] with each
/// region's block extended by the near-data aggregate tail —
///
/// 1. load the region's `l_extendedprice` and `l_discount` chunks,
/// 2. `Mul` them lane-wise,
/// 3. `AddReduce` the products against the match mask (dot product,
///    so non-matching lanes contribute zero) into this region's lane
///    of its partition's group partial-sum register,
/// 4. once per 32 owned regions, flush the register's 32 partials as a
///    single row-buffer store into the partition's own vault group
///    ([`LogicScanProgram::agg_addr`] locates each region's 8 B slot).
///
/// The tail uses its own register sets so its DRAM latency hides
/// behind the next region's scan, and the one-store-per-group flush
/// keeps the partial stores from contending with the column-load
/// streams for banks. With `predicated` set (HIPE) the per-region
/// tail is guarded on the region's mask being non-zero, so regions
/// with no matching tuple squash it in a sequencer slot per
/// instruction without touching DRAM; the group's register is zeroed
/// unpredicated at group start, which makes a squashed region's lane
/// an exact zero.
///
/// With `prune` set, zone-map-pruned regions lose their whole block —
/// scan *and* tail. Pruning never renumbers a surviving region's
/// partial-sum slot: lanes and flush rows are keyed by the region's
/// *unpruned* local index, a group's register is zeroed at its first
/// surviving region and flushed after its last, and groups with every
/// region pruned emit nothing — their slots keep the reset image's
/// zeros, so the combined sum is bit-identical to the unpruned run.
/// As with the plain scan, a fully-pruned partition (or query) lowers
/// to valid empty programs, never an error.
///
/// # Errors
///
/// Returns [`CompileError::EmptyTable`] if the layout has zero rows,
/// [`CompileError::NotAnAggregate`] if the query does not aggregate,
/// [`CompileError::PredicateUnsatisfiable`] if a predicate is
/// statically impossible (inverted range).
pub fn lower_logic_aggregate(
    query: &Query,
    layout: &DsmLayout,
    predicated: bool,
    prune: Option<&ZoneMap>,
) -> Result<LogicScanProgram, CompileError> {
    if !query.aggregates() {
        return Err(CompileError::NotAnAggregate);
    }
    lower(query, layout, predicated, true, prune)
}

/// Shared emitter of scan and fused-aggregate programs.
fn lower(
    query: &Query,
    layout: &DsmLayout,
    predicated: bool,
    fused_aggregate: bool,
    prune: Option<&ZoneMap>,
) -> Result<LogicScanProgram, CompileError> {
    if layout.rows() == 0 {
        return Err(CompileError::EmptyTable);
    }
    if query.predicates().iter().any(|p| !p.cmp.satisfiable()) {
        return Err(CompileError::PredicateUnsatisfiable);
    }
    if let Some(zm) = prune {
        assert_eq!(
            zm.regions(),
            layout.regions(),
            "zone map summarizes a different table than the layout"
        );
    }
    let mut stats = PruneStats::default();
    let size = OpSize::MAX;
    let npreds = query.predicates().len();
    let tail_len = if fused_aggregate { 6 } else { 0 };

    let reg = |i: usize| RegId::new(i).expect("register in bank");
    // Register sets rotated between consecutive regions of one
    // partition: two scan sets of (data, mask, tmp), and — for fused
    // aggregates — four tail sets of (price, discount, mask copy). The
    // tail gets its own, wider rotation so its column loads' DRAM
    // latency stays off the next regions' scan chain (the balanced
    // bank has 36 registers; the scan alone leaves 30 of them idle).
    // Each partition runs on its own engine with its own bank, so the
    // same allocation repeats per partition.
    let set = |base: usize| (reg(base), reg(base + 1), reg(base + 2));
    let scan_sets = [set(0), set(3)];
    let agg_sets = [set(6), set(9), set(12), set(15)];
    // Group partial-sum registers, alternated between consecutive
    // 32-region groups so a group's flush overlaps the next group's
    // reduces.
    let parts = [reg(18), reg(19)];

    let mut programs = Vec::with_capacity(layout.partitions());
    for p in 0..layout.partitions() {
        let spec = {
            let vaults = layout.vault_group(p);
            PartitionSpec::new(p, vaults.start, vaults.len())
        };
        let owned: Vec<usize> = layout.partition_regions(p).collect();
        // The pruning pass: keep only regions the zone map can't prove
        // empty. Survivors keep their *unpruned* local index (computed
        // below) so output slots never move.
        let survivors: Vec<usize> = match prune {
            Some(zm) => owned
                .iter()
                .copied()
                .filter(|&r| zm.region_may_match(query, r))
                .collect(),
            None => owned.clone(),
        };
        stats.scanned += survivors.len();
        stats.pruned += owned.len() - survivors.len();
        if survivors.is_empty() {
            programs.push(LogicProgram::new(spec, Vec::new()));
            continue;
        }
        let mut instrs = Vec::with_capacity(2 + survivors.len() * (3 * npreds + 1 + tail_len));
        instrs.push(LogicInstr::Lock);
        let mut prev_group = None;
        for (pos, &region) in survivors.iter().enumerate() {
            // `pos` rotates register sets (pure allocation); `k` is
            // the region's local index in the *unpruned* partition
            // order, which keys every lane and flush address so a
            // pruned neighbour never shifts this region's slot. With
            // no zone map the two are equal and the stream is
            // byte-identical to the historical lowering.
            let k = layout.local_region_index(region);
            let (r_data, r_mask, r_tmp) = scan_sets[pos % 2];
            let chunk = region as u64 * size.bytes();
            let guard = predicated.then(|| Predicate::any_nonzero(r_mask));
            for (pi, pred_col) in query.predicates().iter().enumerate() {
                let addr = layout.column_base(pred_col.column) + chunk;
                // The first predicate of a region establishes the mask
                // and cannot be guarded by it.
                let pred = if pi == 0 { None } else { guard };
                instrs.push(LogicInstr::Load {
                    dst: r_data,
                    addr,
                    size,
                    pred,
                });
                if pi == 0 {
                    instrs.push(LogicInstr::Alu {
                        op: alu_op(pred_col.cmp),
                        dst: r_mask,
                        a: r_data,
                        b: None,
                        size,
                        pred: None,
                    });
                } else {
                    instrs.push(LogicInstr::Alu {
                        op: alu_op(pred_col.cmp),
                        dst: r_tmp,
                        a: r_data,
                        b: None,
                        size,
                        pred,
                    });
                    instrs.push(LogicInstr::Alu {
                        op: AluOp::And,
                        dst: r_mask,
                        a: r_mask,
                        b: Some(r_tmp),
                        size,
                        pred,
                    });
                }
            }
            // The mask area starts zeroed, so a squashed store leaves
            // the correct all-zero mask behind.
            instrs.push(LogicInstr::Store {
                src: r_mask,
                addr: layout.mask_addr(region),
                size,
                pred: guard,
            });
            if fused_aggregate {
                let (r_price, r_disc, r_mcopy) = agg_sets[pos % 4];
                let group = k / AGG_GROUP;
                let r_part = parts[group % 2];
                if prev_group != Some(group) {
                    // Fresh group: zero its partial register (never
                    // predicated — on HIPE a squashed region must
                    // leave its lane at exactly zero, not at the
                    // previous group's value).
                    instrs.push(LogicInstr::Alu {
                        op: AluOp::Sub,
                        dst: r_part,
                        a: r_part,
                        b: Some(r_part),
                        size,
                        pred: None,
                    });
                }
                // Snapshot the final mask into a tail register
                // immediately: the copy consumes `r_mask` as soon as
                // it is ready, so the reduce (which waits ~a DRAM
                // latency for the price chunk) does not stretch the
                // scan's cross-region WAR chain on the mask register.
                instrs.push(LogicInstr::Alu {
                    op: AluOp::Or,
                    dst: r_mcopy,
                    a: r_mask,
                    b: Some(r_mask),
                    size,
                    pred: guard,
                });
                instrs.push(LogicInstr::Load {
                    dst: r_price,
                    addr: layout.column_base(Column::ExtendedPrice) + chunk,
                    size,
                    pred: guard,
                });
                instrs.push(LogicInstr::Load {
                    dst: r_disc,
                    addr: layout.column_base(Column::Discount) + chunk,
                    size,
                    pred: guard,
                });
                instrs.push(LogicInstr::Alu {
                    op: AluOp::Mul,
                    dst: r_price,
                    a: r_price,
                    b: Some(r_disc),
                    size,
                    pred: guard,
                });
                // Dot product against the 0/1 match mask into this
                // region's lane of the group partial register:
                // non-matching lanes (and the zero-padded tail of the
                // last region) contribute nothing.
                instrs.push(LogicInstr::Alu {
                    op: AluOp::AddReduce {
                        lane: (k % AGG_GROUP) as u8,
                    },
                    dst: r_part,
                    a: r_price,
                    b: Some(r_mcopy),
                    size,
                    pred: guard,
                });
                let next_group = survivors
                    .get(pos + 1)
                    .map(|&r| layout.local_region_index(r) / AGG_GROUP);
                if next_group != Some(group) {
                    // Flush the group's 32 partials as one row-buffer
                    // store into the partition's own vault group
                    // (never predicated: earlier regions of the group
                    // may have matched even if this one did not).
                    // Pruned lanes were zeroed with the register, so
                    // the store writes their slots' correct zeros.
                    instrs.push(LogicInstr::Store {
                        src: r_part,
                        addr: layout.agg_flush_addr(p, group),
                        size,
                        pred: None,
                    });
                }
                prev_group = Some(group);
            }
        }
        instrs.push(LogicInstr::Unlock);
        programs.push(LogicProgram::new(spec, instrs));
    }

    Ok(LogicScanProgram {
        programs,
        layout: *layout,
        aggregate: fused_aggregate,
        prune: stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::ColumnPredicate;

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    fn scan(query: &Query, rows: usize, predicated: bool) -> LogicScanProgram {
        let layout = DsmLayout::new(0, rows);
        lower_logic_scan(query, &layout, predicated, None).expect("non-empty layout")
    }

    fn aggregate(query: &Query, rows: usize, pred: bool) -> LogicScanProgram {
        let layout = DsmLayout::new(0, rows);
        lower_logic_aggregate(query, &layout, pred, None).expect("valid aggregate")
    }

    fn flat(prog: &LogicScanProgram) -> Vec<LogicInstr> {
        prog.iter_instrs().copied().collect()
    }

    #[test]
    fn single_predicate_block_shape() {
        let prog = scan(&one_pred_query(), 64, true);
        assert_eq!(prog.regions(), 2);
        let instrs = flat(&prog);
        // Lock, (Load, Cmp, Store) x 2, Unlock.
        assert_eq!(instrs.len(), 8);
        assert!(matches!(instrs[0], LogicInstr::Lock));
        assert!(matches!(instrs[7], LogicInstr::Unlock));
    }

    #[test]
    fn q6_emits_three_compares_per_region() {
        let prog = scan(&Query::q6(), 32, true);
        let alu = prog
            .iter_instrs()
            .filter(|i| matches!(i, LogicInstr::Alu { .. }))
            .count();
        // 3 compares + 2 ANDs for one region.
        assert_eq!(alu, 5);
    }

    #[test]
    fn hive_lowering_is_unpredicated() {
        let prog = scan(&Query::q6(), 320, false);
        assert!(prog.iter_instrs().all(|i| i.predicate().is_none()));
    }

    #[test]
    fn hipe_lowering_guards_everything_after_first_compare() {
        let prog = scan(&Query::q6(), 32, true);
        let preds = prog
            .iter_instrs()
            .filter(|i| i.predicate().is_some())
            .count();
        // Per region: 2 loads, 2 compares, 2 ANDs, 1 store are guarded.
        assert_eq!(preds, 7);
    }

    #[test]
    fn first_load_and_compare_never_predicated() {
        let prog = scan(&one_pred_query(), 3200, true);
        for w in flat(&prog).windows(2) {
            if let [LogicInstr::Load { pred, .. }, LogicInstr::Alu { pred: apred, .. }] = w {
                if pred.is_none() {
                    assert!(apred.is_none(), "first compare must be unguarded");
                }
            }
        }
    }

    #[test]
    fn mask_addresses_are_disjoint_row_buffers() {
        let prog = scan(&one_pred_query(), 100, true);
        assert_eq!(prog.regions(), 4);
        for i in 1..prog.regions() {
            assert_eq!(prog.mask_addr(i) - prog.mask_addr(i - 1), 256);
        }
        assert_eq!(prog.mask_bytes(), 4 * 256);
    }

    #[test]
    fn consecutive_regions_alternate_register_sets() {
        let prog = scan(&one_pred_query(), 64, false);
        let dsts: Vec<_> = prog
            .iter_instrs()
            .filter_map(|i| match i {
                LogicInstr::Load { dst, .. } => Some(dst.index()),
                _ => None,
            })
            .collect();
        assert_eq!(dsts, vec![0, 3]);
    }

    #[test]
    fn zero_rows_is_a_typed_error() {
        let layout = DsmLayout::new(0, 0);
        assert_eq!(
            lower_logic_scan(&one_pred_query(), &layout, true, None).unwrap_err(),
            CompileError::EmptyTable
        );
        assert_eq!(
            lower_logic_aggregate(&Query::q6(), &layout, true, None).unwrap_err(),
            CompileError::EmptyTable
        );
    }

    #[test]
    fn aggregate_lowering_rejects_plain_scans() {
        let layout = DsmLayout::new(0, 64);
        assert_eq!(
            lower_logic_aggregate(&one_pred_query(), &layout, true, None).unwrap_err(),
            CompileError::NotAnAggregate
        );
    }

    #[test]
    fn aggregate_tail_extends_every_region() {
        let q = Query::q6();
        let plain = scan(&q, 100, true);
        let fused = aggregate(&q, 100, true);
        assert_eq!(fused.regions(), plain.regions());
        // Five tail instructions per region, plus one zero and one
        // flush for the single 32-region group.
        assert_eq!(
            fused.total_instrs(),
            plain.total_instrs() + 5 * fused.regions() + 2
        );
        let muls = fused
            .iter_instrs()
            .filter(|i| matches!(i, LogicInstr::Alu { op: AluOp::Mul, .. }))
            .count();
        let reduce_lanes: Vec<u8> = fused
            .iter_instrs()
            .filter_map(|i| match i {
                LogicInstr::Alu {
                    op: AluOp::AddReduce { lane },
                    b: Some(_),
                    ..
                } => Some(*lane),
                _ => None,
            })
            .collect();
        assert_eq!(muls, fused.regions());
        // One mask-dotted reduce per region, each into its own lane.
        assert_eq!(reduce_lanes, vec![0, 1, 2, 3]);
    }

    #[test]
    fn aggregate_partials_live_after_the_mask_area() {
        let layout = DsmLayout::new(0, 100);
        let prog = aggregate(&Query::q6(), 100, false);
        let base = prog.aggregate_base().expect("fused program");
        assert_eq!(base, layout.mask_base() + layout.mask_area_bytes());
        // One 8 B slot per region, dense from the area base.
        for i in 0..prog.regions() {
            assert_eq!(prog.agg_addr(i), base + i as u64 * AGG_SLOT_BYTES);
        }
        assert_eq!(prog.agg_bytes(), 256);
        // Four regions form one group: a single row-buffer flush into
        // the area.
        let stores: Vec<u64> = prog
            .iter_instrs()
            .filter_map(|i| match i {
                LogicInstr::Store { addr, .. } if *addr >= base => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(stores, vec![base]);
    }

    #[test]
    fn aggregate_groups_flush_one_row_buffer_each() {
        // 3200 rows = 100 regions = 4 groups (32 + 32 + 32 + 4): one
        // unpredicated zero + one unpredicated flush per group, flushes
        // to consecutive area rows, and the final partial group is
        // flushed by the last region.
        let prog = aggregate(&Query::q6(), 3200, true);
        let base = prog.aggregate_base().expect("fused program");
        let zeroes = prog
            .iter_instrs()
            .filter(|i| {
                matches!(
                    i,
                    LogicInstr::Alu {
                        op: AluOp::Sub,
                        pred: None,
                        ..
                    }
                )
            })
            .count();
        let flushes: Vec<u64> = prog
            .iter_instrs()
            .filter_map(|i| match i {
                LogicInstr::Store {
                    addr, pred: None, ..
                } if *addr >= base => Some(*addr),
                _ => None,
            })
            .collect();
        assert_eq!(zeroes, 4);
        assert_eq!(flushes, vec![base, base + 256, base + 512, base + 768]);
        assert_eq!(prog.agg_bytes(), 4 * 256);
        // Slot addresses stay inside the area, one per region.
        let mut addrs: Vec<u64> = (0..prog.regions()).map(|i| prog.agg_addr(i)).collect();
        addrs.dedup();
        assert_eq!(addrs.len(), prog.regions());
        assert!(addrs
            .iter()
            .all(|&a| a >= base && a + AGG_SLOT_BYTES <= base + prog.agg_bytes()));
    }

    #[test]
    fn hipe_aggregate_tail_is_fully_guarded() {
        let prog = aggregate(&Query::q6(), 32, true);
        // Scan guards (7) plus the five per-region tail instructions;
        // the group zero and flush must stay unpredicated.
        let preds = prog
            .iter_instrs()
            .filter(|i| i.predicate().is_some())
            .count();
        assert_eq!(preds, 7 + 5);
        assert!(prog.iter_instrs().any(
            |i| matches!(i, LogicInstr::Store { addr, pred: None, .. } if *addr >= prog.aggregate_base().expect("fused"))
        ));
    }

    #[test]
    fn hive_aggregate_tail_is_unpredicated() {
        let prog = aggregate(&Query::q6(), 320, false);
        assert!(prog.iter_instrs().all(|i| i.predicate().is_none()));
    }

    #[test]
    fn aggregate_tail_loads_price_and_discount_columns() {
        let layout = DsmLayout::new(0, 32);
        let prog =
            lower_logic_aggregate(&Query::q6(), &layout, false, None).expect("valid aggregate");
        let loads: Vec<u64> = prog
            .iter_instrs()
            .filter_map(|i| match i {
                LogicInstr::Load { addr, .. } => Some(*addr),
                _ => None,
            })
            .collect();
        // Scan loads the three predicate columns; the tail reloads
        // price and discount for the region.
        assert!(loads.contains(&layout.column_base(Column::ExtendedPrice)));
        assert_eq!(
            loads
                .iter()
                .filter(|&&a| a == layout.column_base(Column::Discount))
                .count(),
            2
        );
    }

    #[test]
    fn partitioned_lowering_splits_regions_across_programs() {
        // 4096 rows = 128 regions over 4 partitions: 32 regions each,
        // tagged with their vault groups, streams shaped like a
        // 32-region single-partition scan.
        let layout = DsmLayout::partitioned(0, 4096, 4);
        let prog = lower_logic_scan(&Query::q6(), &layout, true, None).expect("non-empty layout");
        assert_eq!(prog.partitions(), 4);
        for (p, lp) in prog.programs().iter().enumerate() {
            assert_eq!(lp.spec().index, p);
            assert_eq!(lp.spec().vaults(), layout.vault_group(p));
            // Lock + 32 x (Load,Cmp, Load,Cmp,And, Load,Cmp,And, Store)
            // + Unlock.
            assert_eq!(lp.len(), 2 + 32 * 9);
            assert!(matches!(lp.instrs()[0], LogicInstr::Lock));
            assert!(matches!(lp.instrs()[lp.len() - 1], LogicInstr::Unlock));
        }
        // Every region's mask store appears exactly once, in its
        // owner's program.
        for r in 0..prog.regions() {
            let owner = layout.partition_of_region(r);
            for (p, lp) in prog.programs().iter().enumerate() {
                let stores = lp
                    .instrs()
                    .iter()
                    .filter(|i| {
                        matches!(i, LogicInstr::Store { addr, .. } if *addr == prog.mask_addr(r))
                    })
                    .count();
                assert_eq!(stores, usize::from(p == owner), "region {r} partition {p}");
            }
        }
    }

    #[test]
    fn partitioned_programs_only_touch_their_own_vaults() {
        let layout = DsmLayout::partitioned(0, 2048, 8);
        for fused in [false, true] {
            let prog = if fused {
                aggregate_over(&layout)
            } else {
                lower_logic_scan(&Query::q6(), &layout, true, None).expect("non-empty layout")
            };
            for lp in prog.programs() {
                for i in lp.instrs() {
                    let addr = match i {
                        LogicInstr::Load { addr, .. } | LogicInstr::Store { addr, .. } => *addr,
                        _ => continue,
                    };
                    let vault = (addr / 256) as usize % hipe_db::VAULTS;
                    assert!(
                        lp.spec().owns_vault(vault),
                        "partition {} touched vault {vault} (fused={fused})",
                        lp.spec().index
                    );
                }
            }
        }
    }

    fn aggregate_over(layout: &DsmLayout) -> LogicScanProgram {
        lower_logic_aggregate(&Query::q6(), layout, true, None).expect("valid aggregate")
    }

    #[test]
    fn empty_partitions_get_empty_programs() {
        // 64 rows = 2 regions, both in partition 0 of 8.
        let layout = DsmLayout::partitioned(0, 64, 8);
        let prog =
            lower_logic_scan(&one_pred_query(), &layout, true, None).expect("non-empty layout");
        assert_eq!(prog.partitions(), 8);
        assert!(!prog.programs()[0].is_empty());
        for lp in &prog.programs()[1..] {
            assert!(lp.is_empty(), "partition {} not idle", lp.spec().index);
        }
    }

    fn clustered_zonemap(rows: usize) -> hipe_db::ZoneMap {
        let t = hipe_db::LineitemTable::generate_clustered_range(7, 0, rows, rows);
        hipe_db::ZoneMap::build(&t)
    }

    #[test]
    fn inverted_range_is_a_typed_error() {
        let layout = DsmLayout::new(0, 64);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Range(10, 5))],
            false,
        );
        assert_eq!(
            lower_logic_scan(&q, &layout, true, None).unwrap_err(),
            CompileError::PredicateUnsatisfiable
        );
        assert_eq!(
            lower_logic_aggregate(&q.with_aggregate(), &layout, true, None).unwrap_err(),
            CompileError::PredicateUnsatisfiable
        );
    }

    #[test]
    fn pruned_lowering_drops_regions_but_not_surviving_stores() {
        let rows = 2048; // 64 regions
        let zm = clustered_zonemap(rows);
        let layout = DsmLayout::new(0, rows);
        let q = Query::shipdate_window_permille(100);
        let full = lower_logic_scan(&q, &layout, true, None).expect("valid");
        let pruned = lower_logic_scan(&q, &layout, true, Some(&zm)).expect("valid");
        assert_eq!(full.prune_stats(), hipe_db::PruneStats::unpruned(64));
        let s = pruned.prune_stats();
        assert_eq!(s.total(), 64);
        assert!(s.pruned > 32, "only {} pruned", s.pruned);
        assert!(pruned.total_instrs() < full.total_instrs());
        // Every surviving region's mask store lands at the same
        // address as in the full stream.
        let stores = |p: &LogicScanProgram| -> Vec<u64> {
            p.iter_instrs()
                .filter_map(|i| match i {
                    LogicInstr::Store { addr, .. } => Some(*addr),
                    _ => None,
                })
                .collect()
        };
        let full_stores = stores(&full);
        for a in stores(&pruned) {
            assert!(full_stores.contains(&a), "store to {a} not in full stream");
        }
    }

    #[test]
    fn pruned_aggregate_lanes_stay_keyed_to_unpruned_indices() {
        // The load-bearing invariant: pruning must never renumber a
        // surviving region's partial-sum lane or flush row, or the
        // host would read partials from the wrong slots.
        let rows = 4096; // 128 regions over 2 partitions
        let zm = clustered_zonemap(rows);
        let layout = DsmLayout::partitioned(0, rows, 2);
        let q = Query::shipdate_window_permille(300).with_aggregate();
        let pruned = lower_logic_aggregate(&q, &layout, true, Some(&zm)).expect("valid");
        assert!(pruned.prune_stats().pruned > 0);
        for (p, lp) in pruned.programs().iter().enumerate() {
            let expected: Vec<u8> = layout
                .partition_regions(p)
                .filter(|&r| zm.region_may_match(&q, r))
                .map(|r| (layout.local_region_index(r) % AGG_GROUP) as u8)
                .collect();
            let lanes: Vec<u8> = lp
                .instrs()
                .iter()
                .filter_map(|i| match i {
                    LogicInstr::Alu {
                        op: AluOp::AddReduce { lane },
                        ..
                    } => Some(*lane),
                    _ => None,
                })
                .collect();
            assert_eq!(lanes, expected, "partition {p}");
            // Flush addresses are a subset of the unpruned group rows.
            for i in lp.instrs() {
                if let LogicInstr::Store {
                    addr, pred: None, ..
                } = i
                {
                    if *addr >= layout.agg_base() {
                        let off = addr - layout.agg_flush_addr(p, 0);
                        assert_eq!(off % 256, 0, "partition {p} flush at {addr}");
                    }
                }
            }
        }
    }

    #[test]
    fn fully_pruned_query_lowers_to_empty_programs() {
        // A shard holding only late rows of a clustered table against
        // an early date window: every region pruned, valid empty
        // programs, zero scanned.
        let total = 4096;
        let t = hipe_db::LineitemTable::generate_clustered_range(3, total / 2, total / 2, total);
        let zm = hipe_db::ZoneMap::build(&t);
        let layout = DsmLayout::new(0, total / 2);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(0, 100))],
            false,
        );
        let prog = lower_logic_scan(&q, &layout, true, Some(&zm)).expect("empty is valid");
        assert_eq!(prog.prune_stats().scanned, 0);
        assert_eq!(prog.prune_stats().pruned, 64);
        assert!(prog.programs().iter().all(|p| p.is_empty()));
        assert_eq!(prog.total_instrs(), 0);
    }

    #[test]
    fn partitioned_aggregate_groups_by_local_region_order() {
        // 8192 rows = 256 regions over 2 partitions = 128 regions each
        // = 4 flush groups per partition, each into the partition's
        // own vault group.
        let layout = DsmLayout::partitioned(0, 8192, 2);
        let prog = aggregate_over(&layout);
        for (p, lp) in prog.programs().iter().enumerate() {
            let flushes: Vec<u64> = lp
                .instrs()
                .iter()
                .filter_map(|i| match i {
                    LogicInstr::Store {
                        addr, pred: None, ..
                    } if *addr >= layout.agg_base() => Some(*addr),
                    _ => None,
                })
                .collect();
            assert_eq!(flushes.len(), 4, "partition {p}");
            for (j, addr) in flushes.iter().enumerate() {
                assert_eq!(*addr, layout.agg_flush_addr(p, j));
            }
            // Reduce lanes restart per partition: 32 regions per group.
            let lanes: Vec<u8> = lp
                .instrs()
                .iter()
                .filter_map(|i| match i {
                    LogicInstr::Alu {
                        op: AluOp::AddReduce { lane },
                        ..
                    } => Some(*lane),
                    _ => None,
                })
                .collect();
            let expect: Vec<u8> = (0..128).map(|k| (k % 32) as u8).collect();
            assert_eq!(lanes, expect, "partition {p}");
        }
    }
}
