//! Lowering of select scans to HIVE/HIPE logic-layer programs.

use hipe_db::{CmpOp, DsmLayout, Query};
use hipe_isa::{AluOp, LogicInstr, OpSize, Predicate, RegId};

/// Rows covered by one logic-layer operation: a full 256 B register
/// (32 x 8 B lanes), which is also one DRAM row buffer.
pub const REGION_ROWS: usize = 32;

/// A lowered logic-layer select scan.
///
/// The program is a flat in-order instruction stream: one `Lock`, then
/// per-region compare/AND/store blocks, then one `Unlock` whose
/// acknowledgement tells the host the scan (and its mask stores) is
/// complete. Region `i` covers rows `[32 * i, 32 * i + 32)` and writes
/// its match mask (one 0/1 lane per row) to `mask_addr(i)`.
///
/// # Example
///
/// ```
/// use hipe_compiler::{lower_logic_scan, REGION_ROWS};
/// use hipe_db::{DsmLayout, Query};
///
/// let layout = DsmLayout::new(0, 1000);
/// let prog = lower_logic_scan(&Query::q6(), &layout, 1 << 20, true);
/// assert_eq!(prog.regions(), 1000usize.div_ceil(REGION_ROWS));
/// assert_eq!(prog.mask_addr(2), (1 << 20) + 512);
/// // Lock + per-region block + Unlock.
/// assert!(prog.instrs().len() > 2 * prog.regions());
/// ```
#[derive(Debug, Clone)]
pub struct LogicScanProgram {
    instrs: Vec<LogicInstr>,
    regions: usize,
    mask_base: u64,
}

impl LogicScanProgram {
    /// The instruction stream, in program order.
    pub fn instrs(&self) -> &[LogicInstr] {
        &self.instrs
    }

    /// Number of 32-row regions the scan is tiled into.
    pub fn regions(&self) -> usize {
        self.regions
    }

    /// Base address of the mask output area.
    pub fn mask_base(&self) -> u64 {
        self.mask_base
    }

    /// Address of region `i`'s 256 B mask chunk.
    pub fn mask_addr(&self, i: usize) -> u64 {
        self.mask_base + i as u64 * OpSize::MAX.bytes()
    }

    /// Bytes of mask output the program writes (one 256 B chunk per
    /// region).
    pub fn mask_bytes(&self) -> u64 {
        self.regions as u64 * OpSize::MAX.bytes()
    }
}

/// Maps a database comparison onto the logic-layer ALU.
fn alu_op(cmp: CmpOp) -> AluOp {
    match cmp {
        CmpOp::Lt(x) => AluOp::CmpLtImm(x),
        CmpOp::Le(x) => AluOp::CmpLeImm(x),
        CmpOp::Gt(x) => AluOp::CmpGtImm(x),
        CmpOp::Ge(x) => AluOp::CmpGeImm(x),
        CmpOp::Eq(x) => AluOp::CmpEqImm(x),
        CmpOp::Range(lo, hi) => AluOp::CmpRangeImm(lo, hi),
    }
}

/// Lowers `query` over a DSM `layout` into a logic-layer program whose
/// match masks are written starting at `mask_base` (256 B per region).
///
/// With `predicated` set (HIPE), every instruction of a region after
/// the first compare carries an any-non-zero predicate on the running
/// mask register; without it (HIVE) the same stream is emitted
/// unpredicated. Regions use two alternating register sets so that a
/// region's loads can overlap the previous region's stores (the
/// interlocked bank resolves the WAR hazards).
///
/// # Panics
///
/// Panics if the layout has zero rows.
pub fn lower_logic_scan(
    query: &Query,
    layout: &DsmLayout,
    mask_base: u64,
    predicated: bool,
) -> LogicScanProgram {
    assert!(layout.rows() > 0, "cannot lower a scan over zero rows");
    let size = OpSize::MAX;
    let regions = layout.rows().div_ceil(REGION_ROWS);
    let npreds = query.predicates().len();
    // Lock + Unlock + per region: 2 + 3 * (npreds - 1) + 1.
    let mut instrs = Vec::with_capacity(2 + regions * (3 * npreds));

    // Two register sets, alternated between consecutive regions:
    // (data, mask, tmp).
    let set = |base: usize| {
        (
            RegId::new(base).expect("register in bank"),
            RegId::new(base + 1).expect("register in bank"),
            RegId::new(base + 2).expect("register in bank"),
        )
    };
    let sets = [set(0), set(3)];

    instrs.push(LogicInstr::Lock);
    for region in 0..regions {
        let (r_data, r_mask, r_tmp) = sets[region % 2];
        let chunk = region as u64 * size.bytes();
        let guard = predicated.then(|| Predicate::any_nonzero(r_mask));
        for (pi, p) in query.predicates().iter().enumerate() {
            let addr = layout.column_base(p.column) + chunk;
            // The first predicate of a region establishes the mask and
            // cannot be guarded by it.
            let pred = if pi == 0 { None } else { guard };
            instrs.push(LogicInstr::Load {
                dst: r_data,
                addr,
                size,
                pred,
            });
            if pi == 0 {
                instrs.push(LogicInstr::Alu {
                    op: alu_op(p.cmp),
                    dst: r_mask,
                    a: r_data,
                    b: None,
                    size,
                    pred: None,
                });
            } else {
                instrs.push(LogicInstr::Alu {
                    op: alu_op(p.cmp),
                    dst: r_tmp,
                    a: r_data,
                    b: None,
                    size,
                    pred,
                });
                instrs.push(LogicInstr::Alu {
                    op: AluOp::And,
                    dst: r_mask,
                    a: r_mask,
                    b: Some(r_tmp),
                    size,
                    pred,
                });
            }
        }
        // The mask area starts zeroed, so a squashed store leaves the
        // correct all-zero mask behind.
        instrs.push(LogicInstr::Store {
            src: r_mask,
            addr: mask_base + chunk,
            size,
            pred: guard,
        });
    }
    instrs.push(LogicInstr::Unlock);

    LogicScanProgram {
        instrs,
        regions,
        mask_base,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::{Column, ColumnPredicate};

    fn one_pred_query() -> Query {
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        )
    }

    #[test]
    fn single_predicate_block_shape() {
        let layout = DsmLayout::new(0, 64);
        let prog = lower_logic_scan(&one_pred_query(), &layout, 4096, true);
        assert_eq!(prog.regions(), 2);
        // Lock, (Load, Cmp, Store) x 2, Unlock.
        assert_eq!(prog.instrs().len(), 8);
        assert!(matches!(prog.instrs()[0], LogicInstr::Lock));
        assert!(matches!(prog.instrs()[7], LogicInstr::Unlock));
    }

    #[test]
    fn q6_emits_three_compares_per_region() {
        let layout = DsmLayout::new(0, 32);
        let prog = lower_logic_scan(&Query::q6(), &layout, 4096, true);
        let alu = prog
            .instrs()
            .iter()
            .filter(|i| matches!(i, LogicInstr::Alu { .. }))
            .count();
        // 3 compares + 2 ANDs for one region.
        assert_eq!(alu, 5);
    }

    #[test]
    fn hive_lowering_is_unpredicated() {
        let layout = DsmLayout::new(0, 320);
        let prog = lower_logic_scan(&Query::q6(), &layout, 1 << 16, false);
        assert!(prog.instrs().iter().all(|i| i.predicate().is_none()));
    }

    #[test]
    fn hipe_lowering_guards_everything_after_first_compare() {
        let layout = DsmLayout::new(0, 32);
        let prog = lower_logic_scan(&Query::q6(), &layout, 1 << 16, true);
        let preds = prog
            .instrs()
            .iter()
            .filter(|i| i.predicate().is_some())
            .count();
        // Per region: 2 loads, 2 compares, 2 ANDs, 1 store are guarded.
        assert_eq!(preds, 7);
    }

    #[test]
    fn first_load_and_compare_never_predicated() {
        let layout = DsmLayout::new(0, 3200);
        let prog = lower_logic_scan(&one_pred_query(), &layout, 1 << 20, true);
        for w in prog.instrs().windows(2) {
            if let [LogicInstr::Load { pred, .. }, LogicInstr::Alu { pred: apred, .. }] = w {
                if pred.is_none() {
                    assert!(apred.is_none(), "first compare must be unguarded");
                }
            }
        }
    }

    #[test]
    fn mask_addresses_are_disjoint_row_buffers() {
        let layout = DsmLayout::new(0, 100);
        let prog = lower_logic_scan(&one_pred_query(), &layout, 1 << 20, true);
        assert_eq!(prog.regions(), 4);
        for i in 1..prog.regions() {
            assert_eq!(prog.mask_addr(i) - prog.mask_addr(i - 1), 256);
        }
        assert_eq!(prog.mask_bytes(), 4 * 256);
    }

    #[test]
    fn consecutive_regions_alternate_register_sets() {
        let layout = DsmLayout::new(0, 64);
        let prog = lower_logic_scan(&one_pred_query(), &layout, 1 << 20, false);
        let dsts: Vec<_> = prog
            .instrs()
            .iter()
            .filter_map(|i| match i {
                LogicInstr::Load { dst, .. } => Some(dst.index()),
                _ => None,
            })
            .collect();
        assert_eq!(dsts, vec![0, 3]);
    }

    #[test]
    #[should_panic(expected = "zero rows")]
    fn zero_rows_panics() {
        let layout = DsmLayout::new(0, 0);
        let _ = lower_logic_scan(&one_pred_query(), &layout, 0, true);
    }
}
