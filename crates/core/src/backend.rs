//! The open backend abstraction: compile once, execute many times.

use crate::report::{Arch, RunReport};
use crate::session::Session;
use crate::system::System;
use crate::{host, neardata};
use hipe_compiler::{CompileError, LogicScanProgram, STOCK_HMC_OP};
use hipe_db::{PruneStats, Query};
use hipe_isa::{MicroOp, OpSize};

/// One architecture's compile/execute implementation.
///
/// A backend is stateless: [`compile`](Self::compile) lowers a query
/// against a [`System`]'s layout into an [`ExecutablePlan`], and
/// [`execute`](Self::execute) runs a plan inside a [`Session`] (which
/// owns the warm cube image). The split means a plan is lowered once
/// per query and reused across a whole batch, and adding a machine to
/// the comparison is one new `Backend` implementation — the driver,
/// benches and tests iterate [`Arch::ALL`] unchanged.
///
/// Invalid inputs (e.g. a zero-row layout handed to the lowering
/// functions directly) surface as a typed
/// [`CompileError`](hipe_compiler::CompileError) from `compile` rather
/// than a panic from inside the compiler.
///
/// `execute` expects the session in its reset state;
/// [`Session::run_plan`] handles that and is the normal entry point.
///
/// # Example
///
/// ```
/// use hipe::{Arch, System};
/// use hipe_db::Query;
///
/// let sys = System::new(1024, 3);
/// let backend = System::backend(Arch::Hipe);
/// let plan = backend.compile(&sys, &Query::q6()).expect("a live system always compiles");
/// let mut session = sys.session();
/// let report = session.run_plan(&plan);
/// assert_eq!(report.arch, Arch::Hipe);
/// ```
pub trait Backend {
    /// The architecture label this backend implements.
    fn arch(&self) -> Arch;

    /// Lowers `query` into this architecture's executable form.
    ///
    /// # Errors
    ///
    /// Returns the compiler's typed [`CompileError`] when the query
    /// cannot be lowered (never for queries over a live [`System`],
    /// whose layouts are non-empty by construction).
    fn compile(&self, sys: &System, query: &Query) -> Result<ExecutablePlan, CompileError>;

    /// Executes a compiled plan against the session's warm image.
    ///
    /// # Panics
    ///
    /// Panics if `plan` was compiled by a different architecture's
    /// backend.
    fn execute(&self, session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport;
}

/// The architecture-specific payload of a plan.
#[derive(Debug, Clone)]
pub(crate) enum PlanCode {
    /// A micro-op stream executed by the out-of-order core (x86
    /// baseline and HMC-ISA machines).
    Micro(Vec<MicroOp>),
    /// Per-partition logic-layer programs posted to the in-cube
    /// engine cluster (HIVE/HIPE) — one program per vault group.
    /// Aggregate queries carry the fused aggregate tail unless the
    /// backend was configured for the host-gather comparison path.
    Logic {
        program: LogicScanProgram,
        predicated: bool,
    },
}

/// A query lowered for one architecture, ready to execute.
///
/// Produced by [`Backend::compile`]; executed — any number of times —
/// via [`Session::run_plan`]. The plan captures everything derived
/// from the query and the system's address layout, so executing it does
/// not re-lower anything.
#[derive(Debug, Clone)]
pub struct ExecutablePlan {
    arch: Arch,
    query: Query,
    rows: usize,
    partitions: usize,
    prune: PruneStats,
    code: PlanCode,
}

impl ExecutablePlan {
    /// The architecture the plan was compiled for.
    pub fn arch(&self) -> Arch {
        self.arch
    }

    /// The query the plan computes.
    pub fn query(&self) -> &Query {
        &self.query
    }

    /// Table rows the plan was compiled against (plans are layout
    /// specific; [`Session::run_plan`] checks this).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Vault-group partitions the plan was compiled for (also checked
    /// by [`Session::run_plan`] — partition counts change the layout).
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Number of lowered instructions in the plan (micro-ops or
    /// logic-layer instructions).
    pub fn instructions(&self) -> usize {
        match &self.code {
            PlanCode::Micro(ops) => ops.len(),
            PlanCode::Logic { program, .. } => program.total_instrs(),
        }
    }

    /// How many 32-row regions the plan scans versus how many the
    /// zone map pruned at compile time. Without
    /// [`SystemConfig::pruning`](crate::SystemConfig) every region is
    /// scanned and `pruned` is zero.
    pub fn prune_stats(&self) -> PruneStats {
        self.prune
    }

    /// Returns `true` when the plan runs its aggregate fused inside
    /// the logic layer (per-region partials read back over the links)
    /// rather than as a host-side gather of matched tuples.
    pub fn fused_aggregate(&self) -> bool {
        match &self.code {
            PlanCode::Micro(_) => false,
            PlanCode::Logic { program, .. } => program.aggregate_base().is_some(),
        }
    }

    pub(crate) fn code(&self) -> &PlanCode {
        &self.code
    }

    fn check_arch(&self, expect: Arch) {
        assert_eq!(
            self.arch, expect,
            "plan compiled for {} executed on the {} backend",
            self.arch, expect
        );
    }
}

/// The x86/AVX baseline: vectorized column-at-a-time scan through the
/// cache hierarchy.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostX86Backend;

impl Backend for HostX86Backend {
    fn arch(&self) -> Arch {
        Arch::HostX86
    }

    fn compile(&self, sys: &System, query: &Query) -> Result<ExecutablePlan, CompileError> {
        sys.note_compilation();
        let (ops, prune) = hipe_compiler::lower_host_scan(query, sys.layout(), sys.prune())?;
        Ok(ExecutablePlan {
            arch: Arch::HostX86,
            query: query.clone(),
            rows: sys.config().rows,
            partitions: sys.config().partitions,
            prune,
            code: PlanCode::Micro(ops),
        })
    }

    fn execute(&self, session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
        plan.check_arch(Arch::HostX86);
        host::execute(session, plan)
    }
}

/// The stock HMC atomic-ISA machine: per-vault read-operate dispatches
/// with host-side mask combining.
#[derive(Debug, Clone, Copy)]
pub struct HmcIsaBackend {
    /// Operand size of one vault operation. The stock machine uses
    /// [`STOCK_HMC_OP`] (16 B); larger sizes model the paper's
    /// operand-size extension sweep.
    pub op_size: OpSize,
}

impl Default for HmcIsaBackend {
    fn default() -> Self {
        HmcIsaBackend {
            op_size: STOCK_HMC_OP,
        }
    }
}

impl Backend for HmcIsaBackend {
    fn arch(&self) -> Arch {
        Arch::HmcIsa
    }

    fn compile(&self, sys: &System, query: &Query) -> Result<ExecutablePlan, CompileError> {
        sys.note_compilation();
        let (ops, prune) =
            hipe_compiler::lower_hmc_scan(query, sys.layout(), self.op_size, sys.prune())?;
        Ok(ExecutablePlan {
            arch: Arch::HmcIsa,
            query: query.clone(),
            rows: sys.config().rows,
            partitions: sys.config().partitions,
            prune,
            code: PlanCode::Micro(ops),
        })
    }

    fn execute(&self, session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
        plan.check_arch(Arch::HmcIsa);
        host::execute(session, plan)
    }
}

/// HIVE: unpredicated logic-layer execution inside the cube.
///
/// Aggregate queries compile to the fused `Mul`/`AddReduce` program by
/// default; set `fused_aggregate: false` to keep the host-side gather
/// (the paper's comparison point, and the path the x86/HMC-ISA
/// machines always use).
#[derive(Debug, Clone, Copy)]
pub struct HiveBackend {
    /// Run aggregates inside the logic layer (default) instead of
    /// gathering matched tuples over the links.
    pub fused_aggregate: bool,
}

impl Default for HiveBackend {
    fn default() -> Self {
        HiveBackend {
            fused_aggregate: true,
        }
    }
}

/// HIPE: HIVE plus the predication match logic (which also squashes
/// the whole fused-aggregate tail of matchless regions).
#[derive(Debug, Clone, Copy)]
pub struct HipeBackend {
    /// Run aggregates inside the logic layer (default) instead of
    /// gathering matched tuples over the links.
    pub fused_aggregate: bool,
}

impl Default for HipeBackend {
    fn default() -> Self {
        HipeBackend {
            fused_aggregate: true,
        }
    }
}

fn compile_logic(
    sys: &System,
    query: &Query,
    arch: Arch,
    predicated: bool,
    fused_aggregate: bool,
) -> Result<ExecutablePlan, CompileError> {
    sys.note_compilation();
    let program = if query.aggregates() && fused_aggregate {
        hipe_compiler::lower_logic_aggregate(query, sys.layout(), predicated, sys.prune())?
    } else {
        hipe_compiler::lower_logic_scan(query, sys.layout(), predicated, sys.prune())?
    };
    Ok(ExecutablePlan {
        arch,
        query: query.clone(),
        rows: sys.config().rows,
        partitions: sys.config().partitions,
        prune: program.prune_stats(),
        code: PlanCode::Logic {
            program,
            predicated,
        },
    })
}

impl Backend for HiveBackend {
    fn arch(&self) -> Arch {
        Arch::Hive
    }

    fn compile(&self, sys: &System, query: &Query) -> Result<ExecutablePlan, CompileError> {
        compile_logic(sys, query, Arch::Hive, false, self.fused_aggregate)
    }

    fn execute(&self, session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
        plan.check_arch(Arch::Hive);
        neardata::execute(session, plan)
    }
}

impl Backend for HipeBackend {
    fn arch(&self) -> Arch {
        Arch::Hipe
    }

    fn compile(&self, sys: &System, query: &Query) -> Result<ExecutablePlan, CompileError> {
        compile_logic(sys, query, Arch::Hipe, true, self.fused_aggregate)
    }

    fn execute(&self, session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
        plan.check_arch(Arch::Hipe);
        neardata::execute(session, plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backends_report_their_arch() {
        for arch in Arch::ALL {
            assert_eq!(System::backend(arch).arch(), arch);
        }
    }

    #[test]
    fn compile_captures_query_rows_and_code() {
        let sys = System::new(128, 1);
        let q = Query::q6();
        for arch in Arch::ALL {
            let plan = System::backend(arch)
                .compile(&sys, &q)
                .expect("live systems always compile");
            assert_eq!(plan.arch(), arch);
            assert_eq!(plan.query(), &q);
            assert_eq!(plan.rows(), 128);
            assert!(plan.instructions() > 0);
        }
    }

    #[test]
    fn stock_hmc_backend_uses_16_byte_ops() {
        assert_eq!(HmcIsaBackend::default().op_size, STOCK_HMC_OP);
    }

    #[test]
    fn aggregates_fuse_on_the_logic_machines_only() {
        let sys = System::new(256, 2);
        let q6 = Query::q6();
        for arch in Arch::ALL {
            let plan = System::backend(arch)
                .compile(&sys, &q6)
                .expect("Q6 compiles");
            let fused = matches!(arch, Arch::Hive | Arch::Hipe);
            assert_eq!(plan.fused_aggregate(), fused, "{arch}");
        }
        // Non-aggregating queries never fuse.
        let scan = Query::quantity_below_permille(100);
        let plan = System::backend(Arch::Hipe)
            .compile(&sys, &scan)
            .expect("scan compiles");
        assert!(!plan.fused_aggregate());
        // The explicit host-gather configuration is preserved for the
        // fused-vs-gather comparison experiments.
        let host_gather = HipeBackend {
            fused_aggregate: false,
        };
        let plan = host_gather.compile(&sys, &q6).expect("Q6 compiles");
        assert!(!plan.fused_aggregate());
    }

    #[test]
    fn fused_plans_carry_the_aggregate_tail() {
        let sys = System::new(256, 2);
        let fused = System::backend(Arch::Hive)
            .compile(&sys, &Query::q6())
            .expect("Q6 compiles");
        let gather = HiveBackend {
            fused_aggregate: false,
        }
        .compile(&sys, &Query::q6())
        .expect("Q6 compiles");
        // Five tail instructions per 32-row region, plus the zero and
        // flush of the single 32-region partial group.
        assert_eq!(
            fused.instructions(),
            gather.instructions() + 5 * 256usize.div_ceil(hipe_compiler::REGION_ROWS) + 2
        );
    }

    #[test]
    fn pruning_config_threads_into_every_backend() {
        use crate::system::SystemConfig;
        use hipe_db::TableShape;
        let rows = 2048;
        let mut cfg = SystemConfig::paper(rows, 5);
        cfg.shape = TableShape::ClusteredShipdate { total_rows: rows };
        cfg.pruning = true;
        let sys = System::with_config(cfg);
        let q = Query::shipdate_window_permille(100);
        for arch in Arch::ALL {
            let plan = System::backend(arch)
                .compile(&sys, &q)
                .expect("live systems always compile");
            let s = plan.prune_stats();
            assert_eq!(s.total(), rows / 32, "{arch}");
            assert!(s.pruned > 0, "{arch} pruned nothing on a clustered table");
        }
        // Without the flag the same system scans everything.
        let mut unpruned_cfg = sys.config().clone();
        unpruned_cfg.pruning = false;
        let unpruned = System::with_config(unpruned_cfg);
        for arch in Arch::ALL {
            let plan = System::backend(arch)
                .compile(&unpruned, &q)
                .expect("live systems always compile");
            assert_eq!(plan.prune_stats().pruned, 0, "{arch}");
        }
    }

    #[test]
    #[should_panic(expected = "executed on the")]
    fn executing_a_foreign_plan_panics() {
        let sys = System::new(64, 2);
        let plan = System::backend(Arch::Hive)
            .compile(&sys, &Query::q6())
            .expect("Q6 compiles");
        let mut session = sys.session();
        let _ = System::backend(Arch::Hipe).execute(&mut session, &plan);
    }
}
