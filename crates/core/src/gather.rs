//! Timed host-side gather of matched values for aggregate queries.
//!
//! On every evaluated machine the `SUM(l_extendedprice * l_discount)`
//! aggregate itself runs on the host: after the scan, the matching
//! tuples' price and discount values are fetched, multiplied and
//! accumulated. This module emits that micro-op stream so the gather
//! phase is cycle-accounted like everything else — through the cache
//! hierarchy on the host-only machines, over the serial links
//! (uncached) on the near-data ones.

use crate::system::System;
use hipe_cpu::{Core, MemoryPort};
use hipe_db::{Bitmask, Column};
use hipe_hmc::{AccessKind, Hmc};
use hipe_isa::{MicroOp, MicroOpKind, OpSize, VaultOp};
use hipe_sim::Cycle;

/// Link payload bytes of one partial-readback packet: up to one row
/// buffer of 8 B partial-sum slots per read.
const READBACK_PACKET_BYTES: u64 = 256;

/// Emits the gather/multiply/accumulate stream for every set bit of
/// `mask` onto `core`, routing the value loads through `port`.
pub(crate) fn emit<P: MemoryPort>(core: &mut Core, port: &mut P, sys: &System, mask: &Bitmask) {
    for i in mask.iter_ones() {
        let price = sys.layout().value_addr(Column::ExtendedPrice, i);
        let discount = sys.layout().value_addr(Column::Discount, i);
        core.execute(
            MicroOp::new(MicroOpKind::Load {
                addr: price,
                bytes: 8,
            }),
            port,
        );
        core.execute(
            MicroOp::new(MicroOpKind::Load {
                addr: discount,
                bytes: 8,
            }),
            port,
        );
        // price * discount, then the serial accumulate (the previous
        // tuple's accumulate is four ops back in the dynamic stream).
        core.execute(MicroOp::new(MicroOpKind::IntMul).with_deps(1, 2), port);
        core.execute(MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 4), port);
    }
}

/// Emits the fused path's gather phase: the per-region partial sums
/// stored by the logic-layer aggregate tail are read back in row-
/// buffer-sized link packets and folded into the final sum by a
/// dependent accumulate chain — a few packets instead of a per-tuple
/// gather.
pub(crate) fn emit_partial_readback<P: MemoryPort>(
    core: &mut Core,
    port: &mut P,
    agg_base: u64,
    agg_bytes: u64,
) {
    let mut addr = agg_base;
    let end = agg_base + agg_bytes;
    while addr < end {
        let bytes = (end - addr).min(READBACK_PACKET_BYTES);
        core.execute(MicroOp::new(MicroOpKind::Load { addr, bytes }), port);
        // One accumulate per 8 B slot: the first of a packet consumes
        // the packet's load and the previous packet's running sum, the
        // rest chain on their predecessor.
        for slot in 0..bytes / hipe_compiler::AGG_SLOT_BYTES {
            let deps = if slot == 0 { (1, 2) } else { (1, 0) };
            core.execute(
                MicroOp::new(MicroOpKind::IntAlu).with_deps(deps.0, deps.1),
                port,
            );
        }
        addr += bytes;
    }
}

/// Memory port of the near-data machines' gather phase: demand
/// reads/writes cross the serial links uncached (the scan itself ran
/// inside the cube, so the host caches hold nothing useful).
pub(crate) struct UncachedPort<'a> {
    pub hmc: &'a mut Hmc,
}

impl MemoryPort for UncachedPort<'_> {
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, AccessKind::Read)
            .complete
    }

    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, AccessKind::Write)
            .complete
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        _op: VaultOp,
        result_bytes: u64,
    ) -> Cycle {
        self.hmc
            .access(
                cycle,
                addr,
                size.bytes(),
                AccessKind::PimOp { result_bytes },
            )
            .complete
    }

    fn logic_dispatch(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("the gather phase posts no logic-layer instructions")
    }

    fn logic_wait(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("the gather phase posts no logic-layer instructions")
    }
}
