//! The x86 baseline runner: micro-op stream through core + caches.

use crate::report::{Arch, RunReport};
use crate::system::System;
use hipe_cache::CacheHierarchy;
use hipe_cpu::{Core, MemoryPort};
use hipe_db::{Bitmask, Query};
use hipe_hmc::{AccessKind, Hmc};
use hipe_isa::{OpSize, VaultOp};
use hipe_sim::Cycle;

/// Memory port of the host-only architectures: demand reads/writes go
/// through the cache hierarchy, HMC-ISA dispatches go straight to the
/// cube, and logic-layer hooks are unreachable (the host lowering
/// never emits them).
struct CachedPort<'a> {
    hmc: &'a mut Hmc,
    caches: &'a mut CacheHierarchy,
}

impl MemoryPort for CachedPort<'_> {
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.caches.read(self.hmc, cycle, addr, bytes)
    }

    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.caches.write(self.hmc, cycle, addr, bytes)
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        _op: VaultOp,
        result_bytes: u64,
    ) -> Cycle {
        self.hmc
            .access(
                cycle,
                addr,
                size.bytes(),
                AccessKind::PimOp { result_bytes },
            )
            .complete
    }

    fn logic_dispatch(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("the host baseline has no logic-layer engine")
    }

    fn logic_wait(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("the host baseline has no logic-layer engine")
    }
}

/// Executes `query` on the x86 baseline.
pub(crate) fn run(sys: &System, query: &Query) -> RunReport {
    let mut hmc = sys.fresh_hmc();
    let mut caches = CacheHierarchy::new(sys.config().hierarchy);
    let mut core = Core::new(sys.config().core);

    let ops = hipe_compiler::lower_host_scan(query, sys.layout(), sys.mask_base());
    {
        let mut port = CachedPort {
            hmc: &mut hmc,
            caches: &mut caches,
        };
        for op in ops {
            core.execute(op, &mut port);
        }
    }
    let cycles = core.finish();

    // Functional outcome of the vector kernel: evaluate the predicates
    // over the column values resident in the cube image and write the
    // packed mask words the store stream modelled.
    let rows = sys.layout().rows();
    let bitmask: Bitmask = (0..rows)
        .map(|i| query.matches_with(|c| hmc.read_u64(sys.layout().value_addr(c, i)) as i64))
        .collect();
    for (w, word) in pack_words(&bitmask).into_iter().enumerate() {
        hmc.write_u64(sys.mask_base() + w as u64 * 8, word);
    }
    let result = sys.finish_result(&hmc, query, bitmask);

    hmc.charge_cache_accesses(caches.stats().total_lookups());
    hmc.finish(cycles);

    RunReport {
        arch: Arch::HostX86,
        result,
        cycles,
        energy: hmc.energy(),
        core: core.stats(),
        cache: Some(caches.stats()),
        engine: None,
        hmc: hmc.stats(),
    }
}

/// Packs a bitmask into little-endian `u64` words (1 bit per row).
fn pack_words(mask: &Bitmask) -> Vec<u64> {
    let mut words = vec![0u64; mask.len().div_ceil(64)];
    for i in mask.iter_ones() {
        words[i / 64] |= 1 << (i % 64);
    }
    words
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::scan;

    #[test]
    fn baseline_matches_reference_executor() {
        let sys = System::new(3000, 21);
        let q = Query::q6();
        let report = run(&sys, &q);
        let reference = scan::reference(sys.table(), &q);
        assert_eq!(report.result, reference);
        assert!(report.cycles > 0);
    }

    #[test]
    fn baseline_streams_through_caches_and_links() {
        let sys = System::new(4096, 5);
        let q = Query::quantity_below_permille(100);
        let report = run(&sys, &q);
        let cache = report.cache.expect("host path has caches");
        assert!(cache.accesses > 0);
        assert!(report.hmc.link_bytes > 0);
        // The whole quantity column crossed the DRAM banks.
        assert!(report.hmc.bytes_read >= 4096 * 8);
    }

    #[test]
    fn packed_mask_lands_in_image() {
        let sys = System::new(128, 9);
        let q = Query::quantity_below_permille(500);
        let report = run(&sys, &q);
        let hmc = {
            // Re-run functionally: the report's mask was written to a
            // cube we dropped, so recompute on a fresh image.
            let mut h = sys.fresh_hmc();
            for (w, word) in pack_words(&report.result.bitmask).into_iter().enumerate() {
                h.write_u64(sys.mask_base() + w as u64 * 8, word);
            }
            h
        };
        for w in 0..2 {
            let mut expect = 0u64;
            for b in 0..64 {
                if report.result.bitmask.get(w * 64 + b) {
                    expect |= 1 << b;
                }
            }
            assert_eq!(hmc.read_u64(sys.mask_base() + w as u64 * 8), expect);
        }
    }
}
