//! The host-side executor: micro-op streams through core + caches.
//!
//! Executes the plans of both host-driven machines — the x86/AVX
//! baseline and the stock HMC atomic ISA. Demand reads/writes go
//! through the cache hierarchy; HMC-ISA dispatches cross the links and
//! run in the vault functional units.

use crate::backend::{ExecutablePlan, PlanCode};
use crate::gather;
use crate::report::{PartitionPhase, PhaseBreakdown, RunReport};
use crate::session::Session;
use hipe_cache::CacheHierarchy;
use hipe_cpu::{Core, MemoryPort};
use hipe_db::Bitmask;
use hipe_hmc::{AccessKind, Hmc};
use hipe_isa::{MicroOpKind, OpSize, VaultOp};
use hipe_sim::Cycle;

/// Memory port of the host-driven architectures: demand reads/writes go
/// through the cache hierarchy, HMC-ISA dispatches go straight to the
/// cube, and logic-layer hooks are unreachable (the host lowerings
/// never emit them).
struct CachedPort<'a> {
    hmc: &'a mut Hmc,
    caches: &'a mut CacheHierarchy,
}

impl MemoryPort for CachedPort<'_> {
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.caches.read(self.hmc, cycle, addr, bytes)
    }

    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.caches.write(self.hmc, cycle, addr, bytes)
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        _op: VaultOp,
        result_bytes: u64,
    ) -> Cycle {
        self.hmc
            .access(
                cycle,
                addr,
                size.bytes(),
                AccessKind::PimOp { result_bytes },
            )
            .complete
    }

    fn logic_dispatch(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("host-driven machines have no logic-layer engine")
    }

    fn logic_wait(&mut self, _cycle: Cycle) -> Cycle {
        unreachable!("host-driven machines have no logic-layer engine")
    }
}

/// Executes a compiled micro-op plan (x86 baseline or HMC-ISA) against
/// the session's warm image.
pub(crate) fn execute(session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
    let sys = session.system();
    let PlanCode::Micro(ops) = plan.code() else {
        unreachable!("the host executor requires a micro-op plan");
    };
    let query = plan.query();
    let mut caches = CacheHierarchy::new(sys.config().hierarchy);
    let mut core = Core::new(sys.config().core);

    let mut dispatch_end = 0;
    {
        let mut port = CachedPort {
            hmc: session.hmc_mut(),
            caches: &mut caches,
        };
        for op in ops {
            let end = core.execute(*op, &mut port);
            if matches!(op.kind, MicroOpKind::HmcDispatch { .. }) {
                dispatch_end = dispatch_end.max(end);
            }
        }
    }
    let scan_end = core.finish();
    // Scan-phase DRAM traffic, snapshotted before the gather mixes
    // aggregate readback into the meters (mirrors the logic path's
    // per-partition accounting).
    let scan_stats = session.hmc().stats();

    // Functional outcome of the scan kernel: evaluate the predicates
    // over the column values resident in the cube image and write the
    // packed mask words the store stream modelled.
    let rows = sys.layout().rows();
    let hmc = session.hmc_mut();
    let bitmask = Bitmask::from_fn(rows, |w| {
        let start = w * 64;
        let end = (start + 64).min(rows);
        let mut bits = 0u64;
        for i in start..end {
            let hit = query.matches_with(|c| hmc.read_u64(sys.layout().value_addr(c, i)) as i64);
            bits |= (hit as u64) << (i - start);
        }
        bits
    });
    for (w, word) in bitmask.words().iter().enumerate() {
        hmc.write_u64(sys.mask_base() + w as u64 * 8, *word);
    }

    // Host-side aggregate gather, through the caches like any other
    // demand traffic.
    if query.aggregates() {
        let mut port = CachedPort {
            hmc: session.hmc_mut(),
            caches: &mut caches,
        };
        gather::emit(&mut core, &mut port, sys, &bitmask);
    }
    let cycles = core.finish();

    let hmc = session.hmc_mut();
    let result = sys.finish_result(hmc, query, bitmask);
    hmc.charge_cache_accesses(caches.stats().total_lookups());
    hmc.finish(cycles);

    let dispatch = if dispatch_end > 0 {
        dispatch_end
    } else {
        scan_end
    };
    RunReport {
        arch: plan.arch(),
        result,
        cycles,
        phases: PhaseBreakdown {
            // The x86 baseline executes the scan in place (no separate
            // dispatch phase); the HMC ISA's phase ends with the last
            // vault dispatch response.
            dispatch,
            scan: scan_end,
            gather_aggregate: cycles - scan_end,
        },
        // Host-driven machines run undivided: one partition spanning
        // the whole vault sweep.
        partitions: vec![PartitionPhase {
            partition: 0,
            first_vault: 0,
            vaults: sys.config().hmc.vaults,
            instructions: ops.len() as u64,
            dispatch,
            scan: scan_end,
            dram_bytes: scan_stats.bytes_read + scan_stats.bytes_written,
        }],
        regions_scanned: plan.prune_stats().scanned,
        regions_pruned: plan.prune_stats().pruned,
        energy: hmc.energy(),
        core: core.stats(),
        cache: Some(caches.stats()),
        engine: None,
        hmc: hmc.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Arch;
    use crate::system::System;
    use hipe_db::{scan, Query};

    fn run(sys: &System, arch: Arch, q: &Query) -> RunReport {
        sys.session().run(arch, q)
    }

    #[test]
    fn baseline_matches_reference_executor() {
        let sys = System::new(3000, 21);
        let q = Query::q6();
        let report = run(&sys, Arch::HostX86, &q);
        let reference = scan::reference(sys.table(), &q);
        assert_eq!(report.result, reference);
        assert!(report.cycles > 0);
    }

    #[test]
    fn hmc_isa_matches_reference_executor() {
        let sys = System::new(3000, 21);
        let q = Query::q6();
        let report = run(&sys, Arch::HmcIsa, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        // Every dispatched vault op ran in a functional unit.
        assert!(report.hmc.fu_ops > 0);
        assert!(report.phases.dispatch <= report.phases.scan);
    }

    #[test]
    fn baseline_streams_through_caches_and_links() {
        let sys = System::new(4096, 5);
        let q = Query::quantity_below_permille(100);
        let report = run(&sys, Arch::HostX86, &q);
        let cache = report.cache.expect("host path has caches");
        assert!(cache.accesses > 0);
        assert!(report.hmc.link_bytes > 0);
        // The whole quantity column crossed the DRAM banks.
        assert!(report.hmc.bytes_read >= 4096 * 8);
    }

    #[test]
    fn wider_hmc_ops_cut_link_traffic_and_cycles() {
        // The paper's operand-size argument: the stock 16 B atomic ops
        // pay a packet-header round trip per two rows, so the links see
        // more traffic than even the streaming baseline; widening the
        // operand to a full row buffer amortizes the headers away.
        use crate::backend::{Backend, HmcIsaBackend};
        use hipe_isa::OpSize;

        let sys = System::new(4096, 5);
        let q = Query::quantity_below_permille(100);
        let stock = run(&sys, Arch::HmcIsa, &q);
        let wide_backend = HmcIsaBackend {
            op_size: OpSize::MAX,
        };
        let plan = wide_backend.compile(&sys, &q).expect("scan compiles");
        let mut session = sys.session();
        session.reset();
        let wide = wide_backend.execute(&mut session, &plan);
        assert_eq!(stock.result, wide.result);
        assert!(wide.hmc.link_bytes < stock.hmc.link_bytes / 4);
        assert!(wide.cycles < stock.cycles);
    }

    #[test]
    fn packed_mask_lands_in_image() {
        let sys = System::new(128, 9);
        let q = Query::quantity_below_permille(500);
        let mut session = sys.session();
        let report = session.run(Arch::HostX86, &q);
        for w in 0..2 {
            let mut expect = 0u64;
            for b in 0..64 {
                if report.result.bitmask.get(w * 64 + b) {
                    expect |= 1 << b;
                }
            }
            assert_eq!(
                session.hmc().read_u64(sys.mask_base() + w as u64 * 8),
                expect
            );
        }
    }

    #[test]
    fn aggregate_gather_is_timed() {
        let sys = System::new(4096, 11);
        let with = run(&sys, Arch::HostX86, &Query::q6());
        assert!(with.phases.gather_aggregate > 0);
        assert_eq!(with.cycles, with.phases.scan + with.phases.gather_aggregate);
        let without = run(&sys, Arch::HostX86, &Query::quantity_below_permille(100));
        assert_eq!(without.phases.gather_aggregate, 0);
        assert_eq!(without.cycles, without.phases.scan);
    }
}
