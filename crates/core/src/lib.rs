//! Top-level driver of the HIPE reproduction.
//!
//! This crate (library name `hipe`) assembles the component models of
//! the workspace into runnable *architectures* and drives the paper's
//! headline experiment end to end: a select scan over a TPC-H-style
//! `lineitem` table, compiled once per target and executed on the four
//! machines of the paper's comparison:
//!
//! * **x86 baseline** ([`Arch::HostX86`]) — the query is lowered to a
//!   vectorized micro-op stream ([`hipe_compiler::lower_host_scan`])
//!   executed by the out-of-order core; all data crosses the HMC serial
//!   links and the cache hierarchy;
//! * **stock HMC ISA** ([`Arch::HmcIsa`]) — the core dispatches 16 B
//!   read-operate instructions ([`hipe_compiler::lower_hmc_scan`]) that
//!   execute in the vault functional units; only result flits return,
//!   but every operation is a full link round trip and the mask
//!   combining stays on the host;
//! * **HIVE** ([`Arch::Hive`]) — the query is lowered to a logic-layer
//!   program ([`hipe_compiler::lower_logic_scan`]) posted to the
//!   in-cube engine; column data never leaves the cube;
//! * **HIPE** ([`Arch::Hipe`]) — the same program with predication:
//!   regions whose running mask is all-zero squash their remaining
//!   instructions in one sequencer slot each.
//!
//! # Compile → session → execute
//!
//! Execution is split into three stages behind the open [`Backend`]
//! abstraction:
//!
//! 1. [`System::backend`] resolves an [`Arch`] label to its stateless
//!    [`Backend`];
//! 2. [`Backend::compile`] lowers a query into an [`ExecutablePlan`]
//!    (once per query, reusable); invalid inputs surface as a typed
//!    [`CompileError`] instead of a panic. On HIVE/HIPE, aggregate
//!    queries compile to the *fused* program — the logic layer
//!    multiplies and reduces matched values next to the banks and the
//!    host only reads back per-region partial sums, instead of
//!    gathering every matched tuple over the links (the path the
//!    host-driven machines keep);
//! 3. a [`Session`] — opened with [`System::session`] — owns one warm,
//!    materialized cube image and executes plans against it, applying
//!    a reset protocol between runs so warm results are bit- and
//!    cycle-identical to cold ones.
//!
//! [`System::run`] and [`System::compare`] remain as one-shot wrappers.
//!
//! # Partitioned execution
//!
//! The logic machines scale out with [`SystemConfig::partitions`] (or
//! [`System::partitioned`]): the table layout is carved into vault
//! groups, the compiler emits one program per group, and a cluster of
//! per-group engines scans them concurrently against the shared cube —
//! each engine confined to its own vaults' banks, so the existing
//! contention models price the overlap honestly. `partitions: 1` (the
//! default) reproduces the paper's single-engine figures cycle for
//! cycle; [`RunReport::partitions`] carries the per-engine breakdown.
//!
//! Every run is *co-simulated*: timing comes from the cycle models,
//! while the functional result is computed from the bytes actually
//! stored in the cube's memory image, so the returned
//! [`hipe_db::scan::ScanResult`]s can be compared bit for bit across
//! architectures (the cross-crate integration tests in the workspace
//! root do exactly that).
//!
//! # Example
//!
//! ```
//! use hipe::{Arch, System};
//! use hipe_db::Query;
//!
//! let sys = System::new(4096, 42);
//! let q = Query::quantity_below_permille(30); // ~3 % selectivity
//! let mut session = sys.session(); // one materialization...
//! let reports: Vec<_> = Arch::ALL
//!     .iter()
//!     .map(|&arch| session.run(arch, &q))
//!     .collect(); // ...four machines
//! assert_eq!(sys.materializations(), 1);
//! // Same answer everywhere, fewer cycles near-data.
//! let (base, hipe) = (&reports[0], &reports[3]);
//! assert_eq!(base.result.bitmask, hipe.result.bitmask);
//! assert!(hipe.cycles < base.cycles);
//! ```

mod backend;
mod gather;
mod host;
mod neardata;
mod report;
mod session;
mod system;

pub use backend::{
    Backend, ExecutablePlan, HipeBackend, HiveBackend, HmcIsaBackend, HostX86Backend,
};
pub use hipe_compiler::CompileError;
pub use hipe_db::{PruneStats, TableShape, ZoneMap};
pub use report::{Arch, PartitionPhase, PhaseBreakdown, RunReport, TraceCtx};
pub use session::{PlanCache, Session};
pub use system::{System, SystemConfig};
