//! Top-level driver of the HIPE reproduction.
//!
//! This crate (library name `hipe`) assembles the component models of
//! the workspace into runnable *architectures* and drives the paper's
//! headline experiment end to end: a select scan over a TPC-H-style
//! `lineitem` table, compiled once per target and executed on
//!
//! * **x86 baseline** ([`Arch::HostX86`]) — the query is lowered to a
//!   vectorized micro-op stream ([`hipe_compiler::lower_host_scan`])
//!   executed by the out-of-order core; all data crosses the HMC serial
//!   links and the cache hierarchy;
//! * **HIVE** ([`Arch::Hive`]) — the query is lowered to a logic-layer
//!   program ([`hipe_compiler::lower_logic_scan`]) posted to the
//!   in-cube engine; column data never leaves the cube;
//! * **HIPE** ([`Arch::Hipe`]) — the same program with predication:
//!   regions whose running mask is all-zero squash their remaining
//!   instructions in one sequencer slot each.
//!
//! Every run is *co-simulated*: timing comes from the cycle models,
//! while the functional result is computed from the bytes actually
//! stored in the cube's memory image, so the returned
//! [`hipe_db::scan::ScanResult`]s can be compared bit for bit across
//! architectures (the cross-crate integration tests in the workspace
//! root do exactly that).
//!
//! # Example
//!
//! ```
//! use hipe::{Arch, System};
//! use hipe_db::Query;
//!
//! let sys = System::new(4096, 42);
//! let q = Query::quantity_below_permille(30); // ~3 % selectivity
//! let base = sys.run(Arch::HostX86, &q);
//! let hipe = sys.run(Arch::Hipe, &q);
//! // Same answer, fewer cycles near-data.
//! assert_eq!(base.result.bitmask, hipe.result.bitmask);
//! assert!(hipe.cycles < base.cycles);
//! ```

mod host;
mod neardata;
mod report;
mod system;

pub use report::{Arch, RunReport};
pub use system::{System, SystemConfig};
