//! The near-data executor: HIVE and HIPE logic-layer execution.
//!
//! Aggregate queries run *fused* by default: the compiled program's
//! per-region tail multiplies and reduces the matched values inside
//! the logic layer, and the host only reads back the compact partial
//! sums (timed as the `gather_aggregate` phase). Plans compiled with
//! `fused_aggregate: false` keep the per-tuple host gather instead.

use crate::backend::{ExecutablePlan, PlanCode};
use crate::gather;
use crate::report::{PhaseBreakdown, RunReport};
use crate::session::Session;
use hipe_compiler::{LogicScanProgram, REGION_ROWS};
use hipe_cpu::{Core, MemoryPort};
use hipe_db::scan::ScanResult;
use hipe_db::Bitmask;
use hipe_hmc::Hmc;
use hipe_isa::{LogicInstr, MicroOp, MicroOpKind, OpSize, VaultOp};
use hipe_logic::Engine;
use hipe_sim::Cycle;

/// Encoded size of one logic-layer instruction on the link: one 16 B
/// flit. The packet header (`HmcConfig::packet_header_bytes`) is added
/// on top when the dispatch packet is sized.
const INSTR_FLIT_BYTES: u64 = 16;

/// Memory port of the HIVE/HIPE architectures: `logic_dispatch`
/// forwards the next queued instruction over the request link into the
/// co-simulated engine; `logic_wait` blocks on the unlock
/// acknowledgement. Demand reads/writes bypass the caches (the scan
/// kernel itself never issues them; they exist so diagnostics and
/// future mixed kernels have an uncached path).
struct LogicPort<'a> {
    hmc: &'a mut Hmc,
    engine: &'a mut Engine,
    /// Program instructions not yet dispatched.
    next: std::slice::Iter<'a, LogicInstr>,
    /// Link bytes of one instruction packet.
    instr_bytes: u64,
    /// One-way link latency (to convert arrival back to handoff time).
    link_latency: Cycle,
    /// Arrival cycle of the most recent unlock acknowledgement.
    ack: Cycle,
}

impl MemoryPort for LogicPort<'_> {
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, hipe_hmc::AccessKind::Read)
            .complete
    }

    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, hipe_hmc::AccessKind::Write)
            .complete
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        _op: VaultOp,
        result_bytes: u64,
    ) -> Cycle {
        self.hmc
            .access(
                cycle,
                addr,
                size.bytes(),
                hipe_hmc::AccessKind::PimOp { result_bytes },
            )
            .complete
    }

    fn logic_dispatch(&mut self, cycle: Cycle) -> Cycle {
        let instr = *self
            .next
            .next()
            .expect("more dispatch micro-ops than program instructions");
        let at_cube = self.hmc.link_request(cycle, self.instr_bytes);
        let outcome = self.engine.execute(self.hmc, instr, at_cube);
        if matches!(instr, LogicInstr::Unlock) {
            self.ack = self
                .hmc
                .link_response(outcome.done, self.instr_bytes)
                .max(self.ack);
        }
        // The store-queue entry frees once the last byte left the host,
        // i.e. one link latency before the packet reaches the cube.
        at_cube - self.link_latency
    }

    fn logic_wait(&mut self, cycle: Cycle) -> Cycle {
        cycle.max(self.ack)
    }
}

/// Executes a compiled logic-layer plan (HIVE or HIPE) against the
/// session's warm image.
pub(crate) fn execute(session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
    let sys = session.system();
    let PlanCode::Logic {
        program,
        predicated,
    } = plan.code()
    else {
        unreachable!("the near-data executor requires a logic-layer plan");
    };
    let query = plan.query();
    let logic_cfg = if *predicated {
        sys.config().hipe
    } else {
        sys.config().hive
    };
    let mut engine = Engine::new(logic_cfg);
    let mut core = Core::new(sys.config().core);

    let mut dispatch_end = 0;
    {
        let mut port = LogicPort {
            hmc: session.hmc_mut(),
            engine: &mut engine,
            next: program.instrs().iter(),
            instr_bytes: sys.config().hmc.packet_header_bytes + INSTR_FLIT_BYTES,
            link_latency: sys.config().hmc.link_latency,
            ack: 0,
        };
        // The host posts one dispatch micro-op per instruction, then
        // blocks on the engine's unlock acknowledgement.
        for _ in 0..program.instrs().len() {
            let end = core.execute(MicroOp::new(MicroOpKind::LogicDispatch), &mut port);
            dispatch_end = dispatch_end.max(end);
        }
        core.execute(MicroOp::new(MicroOpKind::LogicWait), &mut port);
    }
    let scan_end = core.finish();

    let bitmask = read_mask(session.hmc(), program, sys.layout().rows());

    // Aggregate phase. The fused path reads back and combines the
    // engine-stored per-region partials — a few link packets; the
    // host-gather path (x86/HMC-ISA style, kept on the logic machines
    // for the paper's comparison) fetches every matched tuple's values
    // over the serial links uncached.
    if query.aggregates() {
        let mut port = gather::UncachedPort {
            hmc: session.hmc_mut(),
        };
        if let Some(agg_base) = program.aggregate_base() {
            gather::emit_partial_readback(&mut core, &mut port, agg_base, program.agg_bytes());
        } else {
            gather::emit(&mut core, &mut port, sys, &bitmask);
        }
    }
    let cycles = core.finish();

    let hmc = session.hmc_mut();
    let result = if program.aggregate_base().is_some() {
        // The functional aggregate comes from the partials the engine
        // actually stored, so the fused path is checked bit for bit
        // against the reference executor like everything else.
        let matches = bitmask.count_ones();
        let aggregate = (0..program.regions())
            .map(|i| hmc.read_u64(program.agg_addr(i)) as i64 as i128)
            .sum();
        ScanResult {
            bitmask,
            matches,
            aggregate: Some(aggregate),
        }
    } else {
        sys.finish_result(hmc, query, bitmask)
    };
    hmc.finish(cycles);

    RunReport {
        arch: plan.arch(),
        result,
        cycles,
        phases: PhaseBreakdown {
            dispatch: dispatch_end,
            scan: scan_end,
            gather_aggregate: cycles - scan_end,
        },
        energy: hmc.energy(),
        core: core.stats(),
        cache: None,
        engine: Some(engine.stats()),
        hmc: hmc.stats(),
    }
}

/// Reads the engine-written per-region masks (one 0/1 lane per row)
/// back from the cube image as a row bitmask.
fn read_mask(hmc: &Hmc, program: &LogicScanProgram, rows: usize) -> Bitmask {
    (0..rows)
        .map(|i| {
            let region = i / REGION_ROWS;
            let lane = (i % REGION_ROWS) as u64;
            hmc.read_u64(program.mask_addr(region) + lane * 8) != 0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Arch;
    use crate::system::System;
    use hipe_db::{scan, Query};

    fn run(sys: &System, predicated: bool, q: &Query) -> RunReport {
        let arch = if predicated { Arch::Hipe } else { Arch::Hive };
        sys.session().run(arch, q)
    }

    #[test]
    fn hive_matches_reference_executor() {
        let sys = System::new(2000, 31);
        let q = Query::q6();
        let report = run(&sys, false, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        let engine = report.engine.expect("logic path has an engine");
        assert_eq!(engine.squashed, 0);
        assert_eq!(engine.blocks, 1);
    }

    #[test]
    fn hipe_matches_reference_and_squashes() {
        let sys = System::new(5000, 32);
        // 1 % selectivity: most regions die after the first compare.
        let q = Query::quantity_below_permille(10);
        let report = run(&sys, true, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        assert!(report.engine.expect("engine stats").squashed > 0);
    }

    #[test]
    fn hipe_no_faster_than_hive_is_never_true() {
        let sys = System::new(8192, 33);
        let q = Query::quantity_below_permille(10);
        let hive = run(&sys, false, &q);
        let hipe = run(&sys, true, &q);
        assert_eq!(hive.result, hipe.result);
        assert!(hipe.cycles <= hive.cycles, "predication slowed the scan");
    }

    #[test]
    fn column_data_stays_off_the_links() {
        let sys = System::new(4096, 34);
        let q = Query::quantity_below_permille(100);
        let report = run(&sys, true, &q);
        // Only instruction packets and the ack cross the links: far less
        // than the 8 B/row the baseline must move.
        assert!(report.hmc.link_bytes < 4096 * 8 / 2);
    }

    #[test]
    fn fused_aggregate_matches_reference_and_reads_back_partials() {
        let sys = System::new(3000, 36);
        let q = Query::q6();
        for predicated in [false, true] {
            let report = run(&sys, predicated, &q);
            // The aggregate is reconstructed from the partials the
            // engine stored — bit-identical to the reference executor.
            assert_eq!(report.result, scan::reference(sys.table(), &q));
            // The readback is timed as the gather phase.
            assert!(report.phases.gather_aggregate > 0);
            let engine = report.engine.expect("logic path has an engine");
            // Scan ALUs plus one Mul and one AddReduce per live region.
            assert!(engine.alu_ops > 0);
        }
    }

    #[test]
    fn squashed_aggregate_tails_leave_zero_partials() {
        // A matchless aggregate: every region squashes its tail (HIPE),
        // and the combined sum is exactly zero on both machines.
        let sys = System::new(2048, 37);
        let q = Query::quantity_below_permille(0).with_aggregate();
        let hive = run(&sys, false, &q);
        let hipe = run(&sys, true, &q);
        assert_eq!(hive.result.aggregate, Some(0));
        assert_eq!(hipe.result.aggregate, Some(0));
        assert_eq!(hive.result, hipe.result);
        assert!(hipe.engine.expect("engine stats").squashed > 0);
        // HIPE's squashed tails skip the price/discount loads.
        assert!(hipe.hmc.bytes_read < hive.hmc.bytes_read);
    }

    #[test]
    fn dispatch_phase_precedes_scan_completion() {
        let sys = System::new(4096, 35);
        let report = run(&sys, true, &Query::q6());
        assert!(report.phases.dispatch > 0);
        assert!(report.phases.dispatch <= report.phases.scan);
        assert_eq!(
            report.cycles,
            report.phases.scan + report.phases.gather_aggregate
        );
    }
}
