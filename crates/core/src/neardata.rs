//! The near-data executor: HIVE and HIPE logic-layer execution on a
//! cluster of per-vault-group engines.
//!
//! A compiled plan carries one [`hipe_isa::LogicProgram`] per vault
//! group. The host posts the programs' instructions round-robin across
//! partitions — so every engine starts draining its stream almost
//! immediately — and then blocks until the *last* engine's unlock
//! acknowledgement. Each engine runs only against its own vault
//! group's banks (the [`EngineCluster`] enforces this), so N engines
//! overlap their DRAM latencies and the scan phase shrinks
//! near-linearly with the partition count until the shared link and
//! readback bandwidth saturates. A single-partition plan reproduces
//! the historical monolithic dispatch cycle for cycle.
//!
//! Aggregate queries run *fused* by default: the compiled programs'
//! per-region tails multiply and reduce the matched values inside the
//! logic layer, and the host only reads back the compact partial sums
//! (timed as the `gather_aggregate` phase). Plans compiled with
//! `fused_aggregate: false` keep the per-tuple host gather instead.

use crate::backend::{ExecutablePlan, PlanCode};
use crate::gather;
use crate::report::{PartitionPhase, PhaseBreakdown, RunReport};
use crate::session::Session;
use hipe_compiler::{LogicScanProgram, REGION_ROWS};
use hipe_cpu::{Core, MemoryPort};
use hipe_db::scan::ScanResult;
use hipe_db::Bitmask;
use hipe_hmc::Hmc;
use hipe_isa::{LogicInstr, MicroOp, MicroOpKind, OpSize, VaultOp};
use hipe_logic::EngineCluster;
use hipe_sim::Cycle;

/// Encoded size of one logic-layer instruction on the link: one 16 B
/// flit. The packet header (`HmcConfig::packet_header_bytes`) is added
/// on top when the dispatch packet is sized.
const INSTR_FLIT_BYTES: u64 = 16;

/// Memory port of the HIVE/HIPE architectures: `logic_dispatch`
/// forwards the next scheduled instruction over the request link into
/// its partition's co-simulated engine; `logic_wait` blocks on the
/// last outstanding unlock acknowledgement. Demand reads/writes bypass
/// the caches (the scan kernel itself never issues them; they exist so
/// diagnostics and future mixed kernels have an uncached path).
struct ClusterPort<'a> {
    hmc: &'a mut Hmc,
    cluster: &'a mut EngineCluster,
    /// Per-partition instruction cursors.
    next: Vec<std::slice::Iter<'a, LogicInstr>>,
    /// Round-robin dispatch schedule: the partition of each
    /// `logic_dispatch` call, in order.
    schedule: std::slice::Iter<'a, usize>,
    /// Link bytes of one instruction packet.
    instr_bytes: u64,
    /// One-way link latency (to convert arrival back to handoff time).
    link_latency: Cycle,
    /// Arrival cycle of each partition's unlock acknowledgement.
    acks: Vec<Cycle>,
}

impl MemoryPort for ClusterPort<'_> {
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, hipe_hmc::AccessKind::Read)
            .complete
    }

    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        self.hmc
            .access(cycle, addr, bytes, hipe_hmc::AccessKind::Write)
            .complete
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        _op: VaultOp,
        result_bytes: u64,
    ) -> Cycle {
        self.hmc
            .access(
                cycle,
                addr,
                size.bytes(),
                hipe_hmc::AccessKind::PimOp { result_bytes },
            )
            .complete
    }

    fn logic_dispatch(&mut self, cycle: Cycle) -> Cycle {
        let p = *self
            .schedule
            .next()
            .expect("more dispatch micro-ops than scheduled instructions");
        let instr = *self.next[p]
            .next()
            .expect("schedule outran partition program");
        let at_cube = self.hmc.link_request(cycle, self.instr_bytes);
        let outcome = self.cluster.execute(self.hmc, p, instr, at_cube);
        if matches!(instr, LogicInstr::Unlock) {
            self.acks[p] = self
                .hmc
                .link_response(outcome.done, self.instr_bytes)
                .max(self.acks[p]);
        }
        // The store-queue entry frees once the last byte left the host,
        // i.e. one link latency before the packet reaches the cube.
        at_cube - self.link_latency
    }

    fn logic_wait(&mut self, cycle: Cycle) -> Cycle {
        cycle.max(self.acks.iter().copied().max().unwrap_or(0))
    }
}

/// Builds the dispatch schedule: instruction `i` of every non-empty
/// partition, partitions interleaved round-robin so all engines fill
/// concurrently (with one partition this is exactly the historical
/// in-order stream).
fn dispatch_schedule(program: &LogicScanProgram) -> Vec<usize> {
    let mut schedule = Vec::with_capacity(program.total_instrs());
    let longest = program
        .programs()
        .iter()
        .map(|p| p.len())
        .max()
        .unwrap_or(0);
    for i in 0..longest {
        for (p, lp) in program.programs().iter().enumerate() {
            if i < lp.len() {
                schedule.push(p);
            }
        }
    }
    schedule
}

/// Executes a compiled logic-layer plan (HIVE or HIPE) against the
/// session's warm image.
pub(crate) fn execute(session: &mut Session<'_>, plan: &ExecutablePlan) -> RunReport {
    let sys = session.system();
    let PlanCode::Logic {
        program,
        predicated,
    } = plan.code()
    else {
        unreachable!("the near-data executor requires a logic-layer plan");
    };
    let query = plan.query();
    let logic_cfg = if *predicated {
        sys.config().hipe
    } else {
        sys.config().hive
    };
    let nparts = program.partitions();
    let specs: Vec<hipe_isa::PartitionSpec> = program.programs().iter().map(|p| p.spec()).collect();
    let mut cluster = EngineCluster::new(logic_cfg, &specs);
    let mut core = Core::new(sys.config().core);

    let schedule = dispatch_schedule(program);
    let mut dispatch_ends = vec![0 as Cycle; nparts];
    let mut acks = vec![0 as Cycle; nparts];
    {
        let mut port = ClusterPort {
            hmc: session.hmc_mut(),
            cluster: &mut cluster,
            next: program
                .programs()
                .iter()
                .map(|p| p.instrs().iter())
                .collect(),
            schedule: schedule.iter(),
            instr_bytes: sys.config().hmc.packet_header_bytes + INSTR_FLIT_BYTES,
            link_latency: sys.config().hmc.link_latency,
            acks: vec![0; nparts],
        };
        // The host posts one dispatch micro-op per scheduled
        // instruction, then blocks on the last engine's unlock
        // acknowledgement.
        for &p in &schedule {
            let end = core.execute(MicroOp::new(MicroOpKind::LogicDispatch), &mut port);
            dispatch_ends[p] = dispatch_ends[p].max(end);
        }
        core.execute(MicroOp::new(MicroOpKind::LogicWait), &mut port);
        acks.copy_from_slice(&port.acks);
    }
    let scan_end = core.finish();
    // Scan-phase DRAM traffic per vault group, before the gather mixes
    // host readback into the meters.
    let scan_group_activity = session.hmc().group_activity(nparts);

    let bitmask = read_mask(session.hmc(), program, sys.layout().rows());

    // Aggregate phase. The fused path reads back and combines the
    // engine-stored per-region partials — a few link packets; the
    // host-gather path (x86/HMC-ISA style, kept on the logic machines
    // for the paper's comparison) fetches every matched tuple's values
    // over the serial links uncached.
    if query.aggregates() {
        let mut port = gather::UncachedPort {
            hmc: session.hmc_mut(),
        };
        if let Some(agg_base) = program.aggregate_base() {
            gather::emit_partial_readback(&mut core, &mut port, agg_base, program.agg_bytes());
        } else {
            gather::emit(&mut core, &mut port, sys, &bitmask);
        }
    }
    let cycles = core.finish();

    let hmc = session.hmc_mut();
    let result = if program.aggregate_base().is_some() {
        // The functional aggregate comes from the partials the engines
        // actually stored, so the fused path is checked bit for bit
        // against the reference executor like everything else.
        let matches = bitmask.count_ones();
        let aggregate = (0..program.regions())
            .map(|i| hmc.read_u64(program.agg_addr(i)) as i64 as i128)
            .sum();
        ScanResult {
            bitmask,
            matches,
            aggregate: Some(aggregate),
        }
    } else {
        sys.finish_result(hmc, query, bitmask)
    };
    hmc.finish(cycles);

    let partitions = program
        .programs()
        .iter()
        .enumerate()
        .map(|(p, lp)| {
            let activity = scan_group_activity[p];
            PartitionPhase {
                partition: p,
                first_vault: lp.spec().first_vault,
                vaults: lp.spec().vault_count,
                instructions: lp.len() as u64,
                dispatch: dispatch_ends[p],
                scan: acks[p],
                dram_bytes: activity.bytes_read + activity.bytes_written,
            }
        })
        .collect();

    RunReport {
        arch: plan.arch(),
        result,
        cycles,
        phases: PhaseBreakdown {
            dispatch: dispatch_ends.iter().copied().max().unwrap_or(0),
            scan: scan_end,
            gather_aggregate: cycles - scan_end,
        },
        partitions,
        regions_scanned: plan.prune_stats().scanned,
        regions_pruned: plan.prune_stats().pruned,
        energy: hmc.energy(),
        core: core.stats(),
        cache: None,
        engine: Some(cluster.stats()),
        hmc: hmc.stats(),
    }
}

/// Reads the engine-written per-region masks (one 0/1 lane per row)
/// back from the cube image as a row bitmask.
fn read_mask(hmc: &Hmc, program: &LogicScanProgram, rows: usize) -> Bitmask {
    (0..rows)
        .map(|i| {
            let region = i / REGION_ROWS;
            let lane = (i % REGION_ROWS) as u64;
            hmc.read_u64(program.mask_addr(region) + lane * 8) != 0
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::Arch;
    use crate::system::System;
    use hipe_db::{scan, Query};

    fn run(sys: &System, predicated: bool, q: &Query) -> RunReport {
        let arch = if predicated { Arch::Hipe } else { Arch::Hive };
        sys.session().run(arch, q)
    }

    #[test]
    fn hive_matches_reference_executor() {
        let sys = System::new(2000, 31);
        let q = Query::q6();
        let report = run(&sys, false, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        let engine = report.engine.expect("logic path has an engine");
        assert_eq!(engine.squashed, 0);
        assert_eq!(engine.blocks, 1);
    }

    #[test]
    fn hipe_matches_reference_and_squashes() {
        let sys = System::new(5000, 32);
        // 1 % selectivity: most regions die after the first compare.
        let q = Query::quantity_below_permille(10);
        let report = run(&sys, true, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        assert!(report.engine.expect("engine stats").squashed > 0);
    }

    #[test]
    fn hipe_no_faster_than_hive_is_never_true() {
        let sys = System::new(8192, 33);
        let q = Query::quantity_below_permille(10);
        let hive = run(&sys, false, &q);
        let hipe = run(&sys, true, &q);
        assert_eq!(hive.result, hipe.result);
        assert!(hipe.cycles <= hive.cycles, "predication slowed the scan");
    }

    #[test]
    fn column_data_stays_off_the_links() {
        let sys = System::new(4096, 34);
        let q = Query::quantity_below_permille(100);
        let report = run(&sys, true, &q);
        // Only instruction packets and the ack cross the links: far less
        // than the 8 B/row the baseline must move.
        assert!(report.hmc.link_bytes < 4096 * 8 / 2);
    }

    #[test]
    fn fused_aggregate_matches_reference_and_reads_back_partials() {
        let sys = System::new(3000, 36);
        let q = Query::q6();
        for predicated in [false, true] {
            let report = run(&sys, predicated, &q);
            // The aggregate is reconstructed from the partials the
            // engine stored — bit-identical to the reference executor.
            assert_eq!(report.result, scan::reference(sys.table(), &q));
            // The readback is timed as the gather phase.
            assert!(report.phases.gather_aggregate > 0);
            let engine = report.engine.expect("logic path has an engine");
            // Scan ALUs plus one Mul and one AddReduce per live region.
            assert!(engine.alu_ops > 0);
        }
    }

    #[test]
    fn squashed_aggregate_tails_leave_zero_partials() {
        // A matchless aggregate: every region squashes its tail (HIPE),
        // and the combined sum is exactly zero on both machines.
        let sys = System::new(2048, 37);
        let q = Query::quantity_below_permille(0).with_aggregate();
        let hive = run(&sys, false, &q);
        let hipe = run(&sys, true, &q);
        assert_eq!(hive.result.aggregate, Some(0));
        assert_eq!(hipe.result.aggregate, Some(0));
        assert_eq!(hive.result, hipe.result);
        assert!(hipe.engine.expect("engine stats").squashed > 0);
        // HIPE's squashed tails skip the price/discount loads.
        assert!(hipe.hmc.bytes_read < hive.hmc.bytes_read);
    }

    #[test]
    fn dispatch_phase_precedes_scan_completion() {
        let sys = System::new(4096, 35);
        let report = run(&sys, true, &Query::q6());
        assert!(report.phases.dispatch > 0);
        assert!(report.phases.dispatch <= report.phases.scan);
        assert_eq!(
            report.cycles,
            report.phases.scan + report.phases.gather_aggregate
        );
    }

    #[test]
    fn single_partition_reports_one_whole_sweep_partition() {
        let sys = System::new(2048, 40);
        let report = run(&sys, true, &Query::q6());
        assert_eq!(report.partitions.len(), 1);
        let p = &report.partitions[0];
        assert_eq!((p.partition, p.first_vault, p.vaults), (0, 0, 32));
        assert_eq!(p.scan, report.phases.scan);
        assert_eq!(p.dispatch, report.phases.dispatch);
        assert!(p.dram_bytes > 0);
    }

    #[test]
    fn partitioned_run_reports_per_engine_phases() {
        let sys = System::partitioned(4096, 41, 4);
        for predicated in [false, true] {
            let report = run(&sys, predicated, &Query::q6());
            assert_eq!(report.result, scan::reference(sys.table(), &Query::q6()));
            assert_eq!(report.partitions.len(), 4);
            let plan_instrs: u64 = report.partitions.iter().map(|p| p.instructions).sum();
            assert_eq!(
                plan_instrs,
                report.engine.expect("cluster stats").instructions
            );
            for p in &report.partitions {
                assert_eq!(p.vaults, 8);
                assert_eq!(p.first_vault, p.partition * 8);
                // 4096 rows spread all partitions: everyone worked.
                assert!(p.instructions > 0);
                assert!(p.scan > 0 && p.scan <= report.phases.scan);
                assert!(p.dram_bytes > 0, "partition {} idle", p.partition);
            }
            // The overall scan ends with the slowest engine.
            let max_scan = report.partitions.iter().map(|p| p.scan).max();
            assert_eq!(max_scan, Some(report.phases.scan));
        }
    }

    #[test]
    fn empty_partitions_stay_idle() {
        // 64 rows = 2 regions, both in partition 0 of 8.
        let sys = System::partitioned(64, 42, 8);
        let q = Query::quantity_below_permille(500);
        let report = run(&sys, true, &q);
        assert_eq!(report.result, scan::reference(sys.table(), &q));
        assert_eq!(report.partitions.len(), 8);
        assert!(report.partitions[0].instructions > 0);
        for p in &report.partitions[1..] {
            assert_eq!(p.instructions, 0, "partition {}", p.partition);
            assert_eq!(p.scan, 0);
            assert_eq!(p.dram_bytes, 0);
        }
    }

    #[test]
    fn round_robin_schedule_interleaves_partitions() {
        let sys = System::partitioned(4096, 43, 4);
        let plan = System::backend(Arch::Hive)
            .compile(&sys, &Query::q6())
            .expect("Q6 compiles");
        let PlanCode::Logic { program, .. } = plan.code() else {
            unreachable!("logic plan");
        };
        let schedule = dispatch_schedule(program);
        assert_eq!(schedule.len(), program.total_instrs());
        // The first four dispatches hit four different engines.
        assert_eq!(&schedule[..4], &[0, 1, 2, 3]);
    }
}
