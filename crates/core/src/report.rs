//! Run reports: what one end-to-end query execution produced.

use hipe_cache::CacheStats;
use hipe_cpu::CoreStats;
use hipe_db::scan::ScanResult;
use hipe_db::Bitmask;
use hipe_hmc::{EnergyBreakdown, HmcStats};
use hipe_logic::EngineStats;
use hipe_sim::Cycle;
use hipe_trace::{Metrics, TraceSink, TrackId};

/// The simulated architectures.
///
/// `Arch` is a thin label: each variant resolves to a stateless
/// [`Backend`](crate::Backend) via
/// [`System::backend`](crate::System::backend), which owns the actual
/// compile and execute logic. Adding a machine means adding a variant
/// and a backend — nothing else in the driver changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// x86/AVX baseline: everything in the core, data through the
    /// caches and serial links.
    HostX86,
    /// Stock HMC atomic ISA: the core dispatches 16 B read-operate
    /// instructions executed by the vault functional units; mask
    /// combining stays on the host.
    HmcIsa,
    /// HIVE: unpredicated logic-layer execution inside the cube.
    Hive,
    /// HIPE: HIVE plus the predication match logic.
    Hipe,
}

impl Arch {
    /// All four machines in the paper's comparison order.
    pub const ALL: [Arch; 4] = [Arch::HostX86, Arch::HmcIsa, Arch::Hive, Arch::Hipe];
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arch::HostX86 => "x86",
            Arch::HmcIsa => "HMC-ISA",
            Arch::Hive => "HIVE",
            Arch::Hipe => "HIPE",
        })
    }
}

/// Cycle-level breakdown of one run into its pipeline phases.
///
/// The phases partition the run's timeline:
///
/// * `dispatch` — cycle at which the host finished handing the lowered
///   scan program to its execution engine (completion of the last
///   posted logic-layer instruction packet for HIVE/HIPE, of the last
///   vault dispatch for the HMC ISA; equal to `scan` on the x86
///   baseline, which executes the scan in place);
/// * `scan` — cycle at which the match mask was complete in cube
///   memory;
/// * `gather_aggregate` — additional cycles spent on the host-side
///   gather of matched values for the query's aggregate (zero for
///   non-aggregating queries).
///
/// `scan + gather_aggregate` equals [`RunReport::cycles`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Completion cycle of command dispatch.
    pub dispatch: Cycle,
    /// Completion cycle of the scan itself.
    pub scan: Cycle,
    /// Extra cycles of the host-side aggregate gather.
    pub gather_aggregate: Cycle,
}

/// One execution partition's share of a run.
///
/// On HIVE/HIPE each partition is one vault group's logic-layer
/// engine; the host-driven machines report a single partition covering
/// the whole cube. An idle partition (its vault group holds no region
/// of the table) reports zero instructions and zero-cycle phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PartitionPhase {
    /// Partition index.
    pub partition: usize,
    /// First vault of the partition's vault group.
    pub first_vault: usize,
    /// Vaults in the group.
    pub vaults: usize,
    /// Lowered instructions this partition executed.
    pub instructions: u64,
    /// Completion cycle of this partition's command dispatch.
    pub dispatch: Cycle,
    /// Completion cycle of this partition's scan (its engine's unlock
    /// acknowledgement arriving at the host; [`PhaseBreakdown::scan`]
    /// is the maximum over partitions).
    pub scan: Cycle,
    /// DRAM bytes moved in this partition's vault group during the
    /// scan phase (reads + writes).
    pub dram_bytes: u64,
}

/// Outcome of one query execution on one architecture.
///
/// `result` is the functional answer (identical across architectures
/// by construction — the integration tests enforce it); the remaining
/// fields are the measurements the paper's figures are built from.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture that produced this report.
    pub arch: Arch,
    /// Functional scan result (bitmask, match count, aggregate).
    pub result: ScanResult,
    /// End-to-end cycle count (scan plus aggregate gather).
    pub cycles: Cycle,
    /// Per-phase cycle breakdown (dispatch / scan / gather-aggregate).
    pub phases: PhaseBreakdown,
    /// Per-partition breakdown: one entry per vault-group engine on
    /// HIVE/HIPE, a single whole-cube entry on the host machines.
    pub partitions: Vec<PartitionPhase>,
    /// 32-row regions the compiled plan actually scanned.
    pub regions_scanned: usize,
    /// 32-row regions the zone map pruned at compile time (zero unless
    /// the system was configured with
    /// [`pruning`](crate::SystemConfig::pruning)). Pruned regions
    /// contribute exact-zero mask words and aggregate lanes, so
    /// `result` is bit-identical to the unpruned run's.
    pub regions_pruned: usize,
    /// Energy accumulated across cube, links, logic and caches.
    pub energy: EnergyBreakdown,
    /// Out-of-order core activity.
    pub core: CoreStats,
    /// Cache hierarchy activity (host-path architectures only).
    pub cache: Option<CacheStats>,
    /// Logic-layer engine activity (HIVE/HIPE only).
    pub engine: Option<EngineStats>,
    /// Cube activity.
    pub hmc: HmcStats,
}

impl RunReport {
    /// The report of a sub-query that was never dispatched because a
    /// zone-map rollup proved no region of the `rows`-tuple table
    /// could match: an all-zero mask (the exact answer), zero cycles
    /// and energy, and every one of the table's `regions` counted as
    /// pruned. `hipe-serve` synthesizes these for shards its scatter
    /// path skips; an aggregating query gets the exact `Some(0)` sum.
    pub fn skipped(arch: Arch, rows: usize, regions: usize, aggregating: bool) -> RunReport {
        RunReport {
            arch,
            result: ScanResult {
                bitmask: Bitmask::zeros(rows),
                matches: 0,
                aggregate: aggregating.then_some(0),
            },
            cycles: 0,
            phases: PhaseBreakdown::default(),
            partitions: Vec::new(),
            regions_scanned: 0,
            regions_pruned: regions,
            energy: EnergyBreakdown::new(),
            core: CoreStats::default(),
            cache: None,
            engine: None,
            hmc: HmcStats::default(),
        }
    }

    /// Speedup of this run relative to `other` (>1 means faster).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of tuples selected by the scan.
    ///
    /// Defined as 0.0 over an empty table (no division by the zero
    /// row count), so [`Display`](std::fmt::Display)'s percentage is
    /// never NaN.
    pub fn selectivity(&self) -> f64 {
        if self.result.bitmask.is_empty() {
            0.0
        } else {
            self.result.matches as f64 / self.result.bitmask.len() as f64
        }
    }

    /// Emits this run onto `track` of `sink` as a `name`d span at
    /// absolute cycle `at`, with the phase breakdown nested inside it:
    /// `dispatch` (omitted on the x86 baseline, whose in-place scan
    /// has no separate dispatch phase), `scan`, and `gather` when the
    /// query aggregates. A zone-map pruning decision becomes a
    /// `zonemap` instant, and each partition contributes a
    /// `dram_bytes` counter sample at its scan-completion cycle.
    ///
    /// Emission only *reads* the report — tracing can never perturb
    /// the cycle accounting it describes.
    pub fn trace_into(&self, sink: &mut dyn TraceSink, track: TrackId, at: Cycle, name: &str) {
        sink.span_on(
            track,
            name,
            at,
            at + self.cycles,
            vec![
                ("arch", self.arch.to_string().into()),
                ("matches", self.result.matches.into()),
                ("regions_scanned", self.regions_scanned.into()),
                ("regions_pruned", self.regions_pruned.into()),
            ],
        );
        if self.regions_pruned > 0 {
            sink.instant(
                track,
                "zonemap",
                at,
                vec![
                    ("scanned", self.regions_scanned.into()),
                    ("pruned", self.regions_pruned.into()),
                ],
            );
        }
        if self.cycles == 0 {
            // A zone-map-skipped sub-query: no phases to show.
            return;
        }
        let p = self.phases;
        let dispatch_end = if p.dispatch < p.scan { p.dispatch } else { 0 };
        if dispatch_end > 0 {
            sink.span_on(track, "dispatch", at, at + dispatch_end, Vec::new());
        }
        sink.span_on(
            track,
            "scan",
            at + dispatch_end,
            at + p.scan,
            vec![("partitions", self.partitions.len().into())],
        );
        if p.gather_aggregate > 0 {
            sink.span_on(
                track,
                "gather",
                at + p.scan,
                at + p.scan + p.gather_aggregate,
                Vec::new(),
            );
        }
        for part in &self.partitions {
            sink.counter(track, "dram_bytes", at + part.scan, part.dram_bytes);
        }
    }

    /// Emits each partition's scan as a span on its own track (one
    /// viewer row per vault-group engine), placed at absolute cycle
    /// `at` — partitions run concurrently, so they cannot share a
    /// sync track.
    ///
    /// # Panics
    ///
    /// Panics unless `tracks` holds exactly one track per partition.
    pub fn trace_partitions_into(&self, sink: &mut dyn TraceSink, tracks: &[TrackId], at: Cycle) {
        assert_eq!(
            tracks.len(),
            self.partitions.len(),
            "one track per partition"
        );
        for (part, &track) in self.partitions.iter().zip(tracks) {
            sink.span_on(
                track,
                &format!("p{} scan", part.partition),
                at + part.dispatch,
                at + part.scan,
                vec![
                    ("first_vault", part.first_vault.into()),
                    ("vaults", part.vaults.into()),
                    ("instructions", part.instructions.into()),
                    ("dram_bytes", part.dram_bytes.into()),
                ],
            );
        }
    }

    /// Projects every component counter of this run into `metrics`
    /// under `prefix` (e.g. `"shard0."`): core, cube, cache and
    /// engine activity, zone-map decisions, and a per-partition
    /// scan-completion histogram — one uniform namespace instead of
    /// four ad-hoc stats structs.
    pub fn export_metrics(&self, prefix: &str, metrics: &mut Metrics) {
        metrics.gauge_set(&format!("{prefix}cycles"), self.cycles as i64);
        metrics.gauge_set(&format!("{prefix}matches"), self.result.matches as i64);
        metrics.counter_add(
            &format!("{prefix}zonemap.regions_scanned"),
            self.regions_scanned as u64,
        );
        metrics.counter_add(
            &format!("{prefix}zonemap.regions_pruned"),
            self.regions_pruned as u64,
        );
        self.core.export_metrics(prefix, metrics);
        self.hmc.export_metrics(prefix, metrics);
        if let Some(cache) = &self.cache {
            cache.export_metrics(prefix, metrics);
        }
        if let Some(engine) = &self.engine {
            engine.export_metrics(prefix, metrics);
        }
        for part in &self.partitions {
            metrics.observe(&format!("{prefix}partition.scan_cyc"), part.scan);
            metrics.counter_add(&format!("{prefix}partition.dram_bytes"), part.dram_bytes);
        }
    }
}

/// Where and when a traced execution should emit: the sink, the track
/// to emit onto, and the absolute cycle the run is placed at. Bundled
/// so the seam through the stack stays a single
/// `Option<TraceCtx<'_>>` argument.
pub struct TraceCtx<'a> {
    /// Recorder to emit into.
    pub sink: &'a mut dyn TraceSink,
    /// Track the run's spans land on.
    pub track: TrackId,
    /// Absolute cycle of the run's start.
    pub at: Cycle,
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cyc, {} / {} tuples ({:.2} %), energy {}",
            self.arch,
            self.cycles,
            self.result.matches,
            self.result.bitmask.len(),
            100.0 * self.selectivity(),
            self.energy,
        )?;
        if self.regions_pruned > 0 {
            write!(
                f,
                " [zonemap: {} regions scanned, {} pruned]",
                self.regions_scanned, self.regions_pruned
            )?;
        }
        if self.partitions.len() > 1 {
            write!(f, " [{} engines: scan", self.partitions.len())?;
            for (i, p) in self.partitions.iter().enumerate() {
                let sep = if i == 0 { ' ' } else { '/' };
                write!(f, "{sep}{}", p.scan)?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::Bitmask;

    fn dummy(arch: Arch, cycles: Cycle, matches: usize) -> RunReport {
        let mut bitmask = Bitmask::zeros(100);
        for i in 0..matches {
            bitmask.set(i);
        }
        RunReport {
            arch,
            result: ScanResult {
                bitmask,
                matches,
                aggregate: None,
            },
            cycles,
            phases: PhaseBreakdown {
                dispatch: cycles,
                scan: cycles,
                gather_aggregate: 0,
            },
            partitions: vec![PartitionPhase {
                partition: 0,
                first_vault: 0,
                vaults: 32,
                instructions: 1,
                dispatch: cycles,
                scan: cycles,
                dram_bytes: 0,
            }],
            regions_scanned: 4,
            regions_pruned: 0,
            energy: EnergyBreakdown::new(),
            core: CoreStats::default(),
            cache: None,
            engine: None,
            hmc: HmcStats::default(),
        }
    }

    #[test]
    fn speedup_and_selectivity() {
        let a = dummy(Arch::HostX86, 1000, 2);
        let b = dummy(Arch::Hipe, 250, 2);
        assert_eq!(b.speedup_over(&a), 4.0);
        assert_eq!(a.selectivity(), 0.02);
    }

    #[test]
    fn empty_table_selectivity_is_zero_not_nan() {
        // Regression: an all-empty bitmask (zero rows) must not divide
        // by zero — selectivity is defined as 0.0 and the Display
        // percentage stays finite.
        let mut r = dummy(Arch::Hipe, 10, 0);
        r.result.bitmask = Bitmask::zeros(0);
        assert_eq!(r.selectivity(), 0.0);
        assert!(!r.selectivity().is_nan());
        assert!(r.to_string().contains("(0.00 %)"), "display: {r}");
    }

    #[test]
    fn fully_pruned_run_has_finite_selectivity_and_shows_prune_counts() {
        // Regression: a run whose every region was pruned still has a
        // row-sized (all-zero) bitmask, so selectivity is an ordinary
        // 0/len division — finite, no NaN — and Display reports the
        // zone-map counters.
        let mut r = dummy(Arch::Hipe, 10, 0);
        r.regions_scanned = 0;
        r.regions_pruned = 4;
        assert_eq!(r.selectivity(), 0.0);
        assert!(!r.selectivity().is_nan());
        let s = r.to_string();
        assert!(s.contains("(0.00 %)"), "display: {s}");
        assert!(
            s.contains("[zonemap: 0 regions scanned, 4 pruned]"),
            "display: {s}"
        );
    }

    #[test]
    fn unpruned_runs_keep_the_historical_display_form() {
        let r = dummy(Arch::Hipe, 10, 2);
        assert!(!r.to_string().contains("zonemap"), "display: {r}");
    }

    #[test]
    fn display_mentions_arch() {
        let r = dummy(Arch::Hive, 10, 0);
        assert!(r.to_string().starts_with("HIVE:"));
        assert_eq!(Arch::HmcIsa.to_string(), "HMC-ISA");
    }

    #[test]
    fn display_appends_per_partition_scan_ends() {
        let mut r = dummy(Arch::Hipe, 100, 0);
        // A single partition keeps the historical one-line form.
        assert!(!r.to_string().contains("engines"));
        r.partitions = (0..4)
            .map(|p| PartitionPhase {
                partition: p,
                first_vault: p * 8,
                vaults: 8,
                instructions: 10,
                dispatch: 5,
                scan: 20 + p as u64,
                dram_bytes: 0,
            })
            .collect();
        let s = r.to_string();
        assert!(s.contains("[4 engines: scan 20/21/22/23]"), "display: {s}");
    }

    #[test]
    fn all_archs_are_distinct_labels() {
        let labels: Vec<String> = Arch::ALL.iter().map(Arch::to_string).collect();
        let mut dedup = labels.clone();
        dedup.dedup();
        assert_eq!(labels.len(), 4);
        assert_eq!(labels, dedup);
    }
}
