//! Run reports: what one end-to-end query execution produced.

use hipe_cache::CacheStats;
use hipe_cpu::CoreStats;
use hipe_db::scan::ScanResult;
use hipe_hmc::{EnergyBreakdown, HmcStats};
use hipe_logic::EngineStats;
use hipe_sim::Cycle;

/// The simulated architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// x86/AVX baseline: everything in the core, data through the
    /// caches and serial links.
    HostX86,
    /// HIVE: unpredicated logic-layer execution inside the cube.
    Hive,
    /// HIPE: HIVE plus the predication match logic.
    Hipe,
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Arch::HostX86 => "x86",
            Arch::Hive => "HIVE",
            Arch::Hipe => "HIPE",
        })
    }
}

/// Outcome of one query execution on one architecture.
///
/// `result` is the functional answer (identical across architectures
/// by construction — the integration tests enforce it); the remaining
/// fields are the measurements the paper's figures are built from.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Architecture that produced this report.
    pub arch: Arch,
    /// Functional scan result (bitmask, match count, aggregate).
    pub result: ScanResult,
    /// End-to-end cycle count of the scan.
    pub cycles: Cycle,
    /// Energy accumulated across cube, links, logic and caches.
    pub energy: EnergyBreakdown,
    /// Out-of-order core activity.
    pub core: CoreStats,
    /// Cache hierarchy activity (host-path architectures only).
    pub cache: Option<CacheStats>,
    /// Logic-layer engine activity (HIVE/HIPE only).
    pub engine: Option<EngineStats>,
    /// Cube activity.
    pub hmc: HmcStats,
}

impl RunReport {
    /// Speedup of this run relative to `other` (>1 means faster).
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Fraction of tuples selected by the scan.
    pub fn selectivity(&self) -> f64 {
        if self.result.bitmask.is_empty() {
            0.0
        } else {
            self.result.matches as f64 / self.result.bitmask.len() as f64
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} cycles, {} / {} tuples ({:.2} %), energy {}",
            self.arch,
            self.cycles,
            self.result.matches,
            self.result.bitmask.len(),
            100.0 * self.selectivity(),
            self.energy,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_db::Bitmask;

    fn dummy(arch: Arch, cycles: Cycle, matches: usize) -> RunReport {
        let mut bitmask = Bitmask::zeros(100);
        for i in 0..matches {
            bitmask.set(i);
        }
        RunReport {
            arch,
            result: ScanResult {
                bitmask,
                matches,
                aggregate: None,
            },
            cycles,
            energy: EnergyBreakdown::new(),
            core: CoreStats::default(),
            cache: None,
            engine: None,
            hmc: HmcStats::default(),
        }
    }

    #[test]
    fn speedup_and_selectivity() {
        let a = dummy(Arch::HostX86, 1000, 2);
        let b = dummy(Arch::Hipe, 250, 2);
        assert_eq!(b.speedup_over(&a), 4.0);
        assert_eq!(a.selectivity(), 0.02);
    }

    #[test]
    fn display_mentions_arch() {
        let r = dummy(Arch::Hive, 10, 0);
        assert!(r.to_string().starts_with("HIVE:"));
    }
}
