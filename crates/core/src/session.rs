//! Warm execution sessions: one materialized cube image, many runs.

use crate::backend::ExecutablePlan;
use crate::report::{Arch, RunReport};
use crate::system::System;
use hipe_db::Query;
use hipe_hmc::Hmc;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A compiled-plan cache shared by sessions over bit-identical
/// systems — the replicas of one `hipe-serve` shard. Replicas are
/// constructed from the same seed, rows and configuration, and
/// compilation is deterministic, so a plan lowered against any of them
/// is *the* plan for all of them: the first session to need an
/// `(arch, query)` pair compiles it for every replica, cutting
/// [`System::compilations`] by the replication factor.
///
/// Sessions keep their private per-arch map for lock-free hot-path
/// hits; the shared map is consulted only on a local miss. The lock is
/// held across the compile so racing sessions lower each key exactly
/// once.
#[derive(Debug, Default)]
pub struct PlanCache {
    plans: Mutex<HashMap<(Arch, Query), Arc<ExecutablePlan>>>,
}

impl PlanCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Number of distinct `(arch, query)` plans cached so far.
    pub fn len(&self) -> usize {
        self.plans.lock().expect("plan cache poisoned").len()
    }

    /// Returns `true` if no plan has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cached plan for `(arch, query)`, lowering it against `sys`
    /// on first use.
    fn get_or_compile(&self, sys: &System, arch: Arch, query: &Query) -> Arc<ExecutablePlan> {
        let mut plans = self.plans.lock().expect("plan cache poisoned");
        let plan = plans.entry((arch, query.clone())).or_insert_with(|| {
            Arc::new(
                System::backend(arch)
                    .compile(sys, query)
                    .expect("queries over a live system always compile"),
            )
        });
        Arc::clone(plan)
    }
}

/// A warm execution context over one [`System`].
///
/// Creating a session materializes the generated table into the cube
/// image **once**; every subsequent run reuses that image. Before each
/// run the session applies its *reset protocol* — the mask output area
/// is cleared and the cube's run-scoped timing, stats and energy
/// meters are rebuilt ([`Hmc::reset_run_state`]) while the table bytes
/// stay put — so a warm run is bit- and cycle-identical to a cold
/// [`System::run`] (the integration tests assert this).
///
/// This is the execution half of the compile → session → execute
/// split: plans compiled by a [`Backend`](crate::Backend) can be
/// executed any number of times, on any architecture, against the one
/// materialization.
///
/// # Example
///
/// ```
/// use hipe::{Arch, System};
/// use hipe_db::Query;
///
/// let sys = System::new(2048, 7);
/// let mut session = sys.session();
/// let reports = session.run_all(Arch::Hipe, &[Query::q6(), Query::quantity_below_permille(100)]);
/// assert_eq!(reports.len(), 2);
/// assert_eq!(sys.materializations(), 1);
/// ```
#[derive(Debug)]
pub struct Session<'a> {
    sys: &'a System,
    hmc: Hmc,
    /// Compiled-plan cache: one entry per distinct `(arch, query)`
    /// the session has run. Batch loops re-running the same queries
    /// compile once, not per run ([`System::compilations`] counts).
    /// Keyed arch-first so the hot hit path looks up by `&Query`
    /// without cloning it.
    plans: HashMap<Arch, HashMap<Query, Arc<ExecutablePlan>>>,
    /// Cross-session fallback consulted on a local miss; see
    /// [`PlanCache`]. `None` for standalone sessions.
    shared: Option<Arc<PlanCache>>,
}

// Compile-time guard for host-parallel co-simulation: a `System` must
// be shareable across worker threads and a `Session` movable onto one.
// If a future change smuggles in `Rc`, `RefCell` or a raw pointer,
// this fails to build instead of failing at a distant spawn site.
const _: () = {
    fn _assert_send<T: Send>() {}
    fn _assert_sync<T: Sync>() {}
    fn _guards() {
        _assert_send::<System>();
        _assert_sync::<System>();
        _assert_send::<Session<'_>>();
        _assert_send::<Arc<ExecutablePlan>>();
        _assert_sync::<ExecutablePlan>();
        _assert_send::<PlanCache>();
        _assert_sync::<PlanCache>();
    }
};

impl<'a> Session<'a> {
    /// Creates a session, materializing the table image (the one
    /// expensive setup step a warm batch amortizes).
    pub(crate) fn new(sys: &'a System) -> Self {
        Session::build(sys, None)
    }

    /// Creates a session whose plan lookups fall back to a shared
    /// [`PlanCache`] (see [`System::session_with_plans`]).
    pub(crate) fn with_shared_plans(sys: &'a System, plans: Arc<PlanCache>) -> Self {
        Session::build(sys, Some(plans))
    }

    fn build(sys: &'a System, shared: Option<Arc<PlanCache>>) -> Self {
        Session {
            sys,
            hmc: sys.fresh_hmc(),
            plans: HashMap::new(),
            shared,
        }
    }

    /// The system this session executes against.
    pub fn system(&self) -> &'a System {
        self.sys
    }

    /// The cube holding the warm image (read-only view).
    pub fn hmc(&self) -> &Hmc {
        &self.hmc
    }

    /// Mutable cube access for the executing backend.
    pub(crate) fn hmc_mut(&mut self) -> &mut Hmc {
        &mut self.hmc
    }

    /// Applies the reset protocol: zeroes the mask output area and
    /// rebuilds the cube's run-scoped timing/stat/energy state, leaving
    /// the table image untouched.
    ///
    /// [`run`](Self::run), [`run_plan`](Self::run_plan) and
    /// [`run_all`](Self::run_all) call this before every execution;
    /// it only needs to be invoked directly when driving a
    /// [`Backend`](crate::Backend) by hand.
    pub fn reset(&mut self) {
        let mask_base = self.sys.mask_base();
        let mask_len = self.hmc.image_len() - mask_base as usize;
        self.hmc.zero_bytes(mask_base, mask_len);
        self.hmc.reset_run_state();
    }

    /// Compiles and executes `query` on `arch` against the warm image.
    ///
    /// Plans are cached per `(arch, query)`: the first run of a query
    /// lowers it, every later run of the same query on the same arch
    /// reuses the compiled [`ExecutablePlan`] (compilation is
    /// deterministic, so the cached plan is the plan a fresh compile
    /// would produce; [`System::compilations`] observes the saving).
    ///
    /// Compile errors cannot occur here: a live [`System`] always has
    /// at least one row, which is the only way a query over it could
    /// fail to lower. (Driving a [`Backend`](crate::Backend) by hand
    /// exposes the typed error.)
    pub fn run(&mut self, arch: Arch, query: &Query) -> RunReport {
        let plan = self.plan(arch, query);
        self.run_plan(&plan)
    }

    /// Like [`run`](Self::run), emitting the run's phase spans into
    /// the trace context when one is given. `None` takes a single
    /// branch and is otherwise the exact [`run`](Self::run) path, and
    /// emission happens strictly after execution from the finished
    /// [`RunReport`] — so the report (cycles, masks, digests) is
    /// bit-identical whether or not the run is traced.
    pub fn run_traced(
        &mut self,
        arch: Arch,
        query: &Query,
        trace: Option<crate::TraceCtx<'_>>,
    ) -> RunReport {
        let report = self.run(arch, query);
        if let Some(ctx) = trace {
            report.trace_into(ctx.sink, ctx.track, ctx.at, "query");
        }
        report
    }

    /// The session's cached plan for `(arch, query)`, compiling it on
    /// first use.
    pub fn plan(&mut self, arch: Arch, query: &Query) -> Arc<ExecutablePlan> {
        if let Some(plan) = self.plans.get(&arch).and_then(|m| m.get(query)) {
            return Arc::clone(plan);
        }
        let plan = match &self.shared {
            Some(cache) => cache.get_or_compile(self.sys, arch, query),
            None => Arc::new(
                System::backend(arch)
                    .compile(self.sys, query)
                    .expect("queries over a live system always compile"),
            ),
        };
        self.plans
            .entry(arch)
            .or_default()
            .insert(query.clone(), Arc::clone(&plan));
        plan
    }

    /// Rewrites the table image in place over the warm cube — the
    /// zero-copy rematerialization path. Every image byte (column
    /// arrays, alignment padding, mask and aggregate areas) is
    /// overwritten, so the next run is bit- and cycle-identical to a
    /// cold one even after arbitrary scribbling on the image. Counts
    /// one [`System::materializations`].
    pub fn rematerialize(&mut self) {
        self.sys.rematerialize_into(&mut self.hmc);
    }

    /// Executes an already-compiled plan against the warm image.
    ///
    /// # Panics
    ///
    /// Panics if the plan was compiled for a differently-sized or
    /// differently-partitioned system (both change the address layout
    /// the plan's code is baked against).
    pub fn run_plan(&mut self, plan: &ExecutablePlan) -> RunReport {
        assert_eq!(
            plan.rows(),
            self.sys.config().rows,
            "plan was compiled for a different system"
        );
        assert_eq!(
            plan.partitions(),
            self.sys.config().partitions,
            "plan was compiled for a different system (partition count)"
        );
        self.reset();
        System::backend(plan.arch()).execute(self, plan)
    }

    /// Runs a batch of queries on `arch`, reusing the single warm
    /// materialization for every one of them.
    ///
    /// The reset protocol makes batch results independent of execution
    /// order and identical to cold runs.
    pub fn run_all(&mut self, arch: Arch, queries: &[Query]) -> Vec<RunReport> {
        queries.iter().map(|q| self.run(arch, q)).collect()
    }
}
