//! The assembled system: table, memory image and backend resolution.

use crate::backend::{Backend, HipeBackend, HiveBackend, HmcIsaBackend, HostX86Backend};
use crate::report::{Arch, RunReport};
use crate::session::{PlanCache, Session};
use hipe_cache::HierarchyConfig;
use hipe_compiler::STOCK_HMC_OP;
use hipe_cpu::CoreConfig;
use hipe_db::scan::ScanResult;
use hipe_db::{Bitmask, Column, DsmLayout, LineitemTable, Query, TableShape, ZoneMap};
use hipe_hmc::{Hmc, HmcConfig};
use hipe_logic::LogicConfig;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Configuration of a full system: workload size plus the paper's
/// component parameters (all overridable for experiments).
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Tuples in the lineitem table.
    pub rows: usize,
    /// Generation seed.
    pub seed: u64,
    /// Global row index this system's table starts at. `0` — the
    /// default — generates the monolithic table; a `hipe-serve`
    /// cluster shard sets it to its range start so its rows match the
    /// monolithic table's rows value for value
    /// (`LineitemTable::generate_range`).
    pub row_offset: usize,
    /// Vault-group partitions (logic-layer engines). `1` — the paper's
    /// single-engine configuration — reproduces the original layout
    /// and cycle counts exactly; larger values (any divisor of the
    /// 32-vault sweep) scan the table with one engine per vault group.
    pub partitions: usize,
    /// Value distribution of the generated table
    /// ([`TableShape::Uniform`] is the paper's dbgen-shaped default;
    /// [`TableShape::ClusteredShipdate`] sorts shipdate by row for the
    /// zone-map skipping experiments).
    pub shape: TableShape,
    /// Compile scans against this system's [`ZoneMap`], dropping
    /// regions whose min/max summaries prove the predicate
    /// conjunction can't match. Off by default: the paper's figures
    /// measure the full scan, and on a uniform table every region
    /// spans the whole value domain anyway. The zone map itself is
    /// always built (it's one cheap pass at construction); this flag
    /// only controls whether the backends consult it.
    pub pruning: bool,
    /// Out-of-order core parameters.
    pub core: CoreConfig,
    /// Cache hierarchy parameters.
    pub hierarchy: HierarchyConfig,
    /// Cube parameters.
    pub hmc: HmcConfig,
    /// Logic-layer engine parameters for HIVE (no predication).
    pub hive: LogicConfig,
    /// Logic-layer engine parameters for HIPE (predication).
    pub hipe: LogicConfig,
}

impl SystemConfig {
    /// Table I parameters at the given workload size (one engine, as
    /// in the paper's figures).
    pub fn paper(rows: usize, seed: u64) -> Self {
        SystemConfig {
            rows,
            seed,
            row_offset: 0,
            partitions: 1,
            shape: TableShape::Uniform,
            pruning: false,
            core: CoreConfig::paper(),
            hierarchy: HierarchyConfig::paper(),
            hmc: HmcConfig::paper(),
            hive: LogicConfig::paper(),
            hipe: LogicConfig::paper_hipe(),
        }
    }
}

/// A runnable system: a generated table laid out column-wise (DSM) in
/// cube memory, ready to execute select scans on any [`Arch`].
///
/// The system itself is immutable workload state — table, layout,
/// component parameters. Execution happens through the compile →
/// session → execute API: [`System::backend`] resolves an [`Arch`]
/// label to its [`Backend`], and [`session`](Self::session) opens a
/// warm [`Session`] that materializes the cube image once and can run
/// whole batches against it. [`run`](Self::run) and
/// [`compare`](Self::compare) are one-shot wrappers over that API.
///
/// # Example
///
/// ```
/// use hipe::{Arch, System};
/// use hipe_db::Query;
///
/// let sys = System::new(2048, 7);
/// let report = sys.run(Arch::Hipe, &Query::q6());
/// assert_eq!(report.result.bitmask.len(), 2048);
/// ```
#[derive(Debug)]
pub struct System {
    cfg: SystemConfig,
    table: LineitemTable,
    layout: DsmLayout,
    /// Per-region min/max/row-count summaries of `table`, built once
    /// at construction. Consulted by the backends when
    /// [`SystemConfig::pruning`] is set, and by `hipe-serve`'s scatter
    /// path (via the table-level rollup) to skip whole shards.
    zonemap: ZoneMap,
    mask_base: u64,
    image_len: usize,
    /// Times the table image was materialized into a cube (sessions
    /// amortize this; the batch tests assert it stays at one).
    materializations: AtomicU64,
    /// Times a backend lowered a query against this system (the
    /// session plan cache amortizes this; the batch tests assert one
    /// compile per distinct query per arch).
    compilations: AtomicU64,
}

impl Clone for System {
    fn clone(&self) -> Self {
        System {
            cfg: self.cfg.clone(),
            table: self.table.clone(),
            layout: self.layout,
            zonemap: self.zonemap.clone(),
            mask_base: self.mask_base,
            image_len: self.image_len,
            materializations: AtomicU64::new(self.materializations.load(Ordering::Relaxed)),
            compilations: AtomicU64::new(self.compilations.load(Ordering::Relaxed)),
        }
    }
}

impl System {
    /// Creates a paper-configured system over `rows` tuples.
    pub fn new(rows: usize, seed: u64) -> Self {
        System::with_config(SystemConfig::paper(rows, seed))
    }

    /// Creates a paper-configured system scanned by `partitions`
    /// vault-group engines.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` does not divide the 32-vault sweep.
    pub fn partitioned(rows: usize, seed: u64, partitions: usize) -> Self {
        System::with_config(SystemConfig {
            partitions,
            ..SystemConfig::paper(rows, seed)
        })
    }

    /// Creates a system with explicit component parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.rows` is zero, or if `cfg.partitions` does not
    /// divide the vault sweep.
    pub fn with_config(cfg: SystemConfig) -> Self {
        assert!(cfg.rows > 0, "a system needs at least one tuple");
        // Vault-group ownership is computed from the layout's sweep
        // constant; it must match the cube geometry whenever the table
        // is actually partitioned (single-partition layouts never
        // consult it, so non-default vault counts stay usable there).
        assert!(
            cfg.partitions == 1 || cfg.hmc.vaults == hipe_db::VAULTS,
            "partitioned layouts require the cube's {} vaults",
            hipe_db::VAULTS
        );
        let table = LineitemTable::generate_shaped(cfg.seed, cfg.row_offset, cfg.rows, cfg.shape);
        let zonemap = ZoneMap::build(&table);
        // The layout owns the whole image map: column arrays, then the
        // mask output area, then the aggregate partial-sum area (the
        // latter two are the session reset protocol's zeroed region).
        // With partitions > 1 every area is padded to whole vault
        // sweeps so each vault-group engine stays inside its own banks.
        let layout = DsmLayout::partitioned(0, cfg.rows, cfg.partitions);
        let mask_base = layout.mask_base();
        let image_len = layout.image_bytes() as usize;
        System {
            cfg,
            table,
            layout,
            zonemap,
            mask_base,
            image_len,
            materializations: AtomicU64::new(0),
            compilations: AtomicU64::new(0),
        }
    }

    /// Resolves an architecture label to its (stateless) backend.
    ///
    /// This is the single point where [`Arch`] meets implementation:
    /// everything else — sessions, benches, tests — goes through the
    /// returned [`Backend`].
    pub fn backend(arch: Arch) -> &'static dyn Backend {
        match arch {
            Arch::HostX86 => &HostX86Backend,
            Arch::HmcIsa => &HmcIsaBackend {
                op_size: STOCK_HMC_OP,
            },
            Arch::Hive => &HiveBackend {
                fused_aggregate: true,
            },
            Arch::Hipe => &HipeBackend {
                fused_aggregate: true,
            },
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The generated table.
    pub fn table(&self) -> &LineitemTable {
        &self.table
    }

    /// The DSM layout of the table in cube memory.
    pub fn layout(&self) -> &DsmLayout {
        &self.layout
    }

    /// The table's zone map: per-region min/max/row-count summaries
    /// plus the table-level rollup, built once at construction.
    pub fn zonemap(&self) -> &ZoneMap {
        &self.zonemap
    }

    /// The zone map, but only when [`SystemConfig::pruning`] asked the
    /// backends to compile against it — this is the value every
    /// `Backend::compile` hands to the lowering functions, so the flag
    /// is honoured in exactly one place.
    pub fn prune(&self) -> Option<&ZoneMap> {
        self.cfg.pruning.then_some(&self.zonemap)
    }

    /// Base address of the match-mask output area.
    pub fn mask_base(&self) -> u64 {
        self.mask_base
    }

    /// How many times the table image has been materialized into a
    /// cube so far (each [`session`](Self::session) or cold
    /// [`run`](Self::run) adds one; warm batch runs add none).
    pub fn materializations(&self) -> u64 {
        self.materializations.load(Ordering::Relaxed)
    }

    /// How many times a [`Backend`] has lowered a query against this
    /// system so far. [`Session`]s cache compiled plans, so a batch
    /// loop re-running the same queries adds nothing here after the
    /// first pass — the batch tests assert exactly that.
    pub fn compilations(&self) -> u64 {
        self.compilations.load(Ordering::Relaxed)
    }

    /// Records one query lowering (called by every [`Backend::compile`]).
    pub(crate) fn note_compilation(&self) {
        self.compilations.fetch_add(1, Ordering::Relaxed);
    }

    /// Opens a warm execution session, materializing the cube image
    /// once.
    pub fn session(&self) -> Session<'_> {
        Session::new(self)
    }

    /// Opens a warm session whose plan lookups fall back to `plans`, a
    /// [`PlanCache`] shared with sessions over bit-identical systems
    /// (the replicas of a `hipe-serve` shard): each `(arch, query)`
    /// pair is lowered once per cache, not once per session.
    pub fn session_with_plans(&self, plans: Arc<PlanCache>) -> Session<'_> {
        Session::with_shared_plans(self, plans)
    }

    /// Builds a cold cube populated with the table image.
    pub(crate) fn fresh_hmc(&self) -> Hmc {
        let mut hmc = Hmc::new(self.cfg.hmc.clone(), self.image_len);
        self.rematerialize_into(&mut hmc);
        hmc
    }

    /// Writes the table image straight into `hmc`'s backing bytes —
    /// the zero-copy materialization path (no image-sized temporary).
    /// Overwrites every image byte, restoring the exact cold image,
    /// and counts one materialization.
    pub(crate) fn rematerialize_into(&self, hmc: &mut Hmc) {
        self.materializations.fetch_add(1, Ordering::Relaxed);
        let image = hmc.bytes_mut(self.layout.base(), self.image_len);
        self.layout.materialize_into(&self.table, image);
    }

    /// Executes `query` on `arch` and reports results and measurements.
    ///
    /// One-shot wrapper over the session API: equivalent to opening a
    /// fresh [`Session`] and running the query once (cold).
    pub fn run(&self, arch: Arch, query: &Query) -> RunReport {
        self.session().run(arch, query)
    }

    /// Convenience: runs `query` on the host baseline and on HIPE,
    /// sharing one warm session (a single table materialization).
    pub fn compare(&self, query: &Query) -> (RunReport, RunReport) {
        let mut session = self.session();
        (
            session.run(Arch::HostX86, query),
            session.run(Arch::Hipe, query),
        )
    }

    /// Completes a scan `bitmask` into a [`ScanResult`], computing the
    /// aggregate (if the query has one) from the values in the cube
    /// image — i.e. from what the simulated machine actually stored.
    pub(crate) fn finish_result(&self, hmc: &Hmc, query: &Query, bitmask: Bitmask) -> ScanResult {
        let matches = bitmask.count_ones();
        let aggregate = query.aggregates().then(|| {
            bitmask
                .iter_ones()
                .map(|i| {
                    let price = hmc.read_u64(self.layout.value_addr(Column::ExtendedPrice, i));
                    let discount = hmc.read_u64(self.layout.value_addr(Column::Discount, i));
                    price as i64 as i128 * discount as i64 as i128
                })
                .sum()
        });
        ScanResult {
            bitmask,
            matches,
            aggregate,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn image_covers_table_mask_and_partials() {
        let sys = System::new(100, 1);
        // 4 columns x 1 stride each + 4 mask regions + one 256 B row
        // of partial-sum slots (4 regions fit in a single row).
        let stride = 100u64.div_ceil(32) * 256;
        assert_eq!(sys.mask_base(), 4 * stride);
        assert_eq!(
            sys.fresh_hmc().image_len() as u64,
            4 * stride + 4 * 256 + 256
        );
    }

    #[test]
    fn fresh_hmc_contains_table_values() {
        let sys = System::new(64, 3);
        let hmc = sys.fresh_hmc();
        for i in [0usize, 17, 63] {
            let addr = sys.layout().value_addr(Column::Quantity, i);
            assert_eq!(
                hmc.read_u64(addr) as i64,
                sys.table().value(Column::Quantity, i)
            );
        }
    }

    #[test]
    fn compare_materializes_once() {
        let sys = System::new(512, 4);
        let (base, hipe) = sys.compare(&Query::q6());
        assert_eq!(base.result, hipe.result);
        assert_eq!(sys.materializations(), 1);
        // A cold run pays its own materialization.
        let _ = sys.run(Arch::Hipe, &Query::q6());
        assert_eq!(sys.materializations(), 2);
    }

    #[test]
    fn backend_resolution_is_total() {
        for arch in Arch::ALL {
            assert_eq!(System::backend(arch).arch(), arch);
        }
    }

    #[test]
    fn layout_vault_constant_matches_cube_geometry() {
        // The partitioned layout's vault-sweep constant and the cube's
        // vault count must agree, or region-to-vault ownership is
        // fiction.
        assert_eq!(hipe_db::VAULTS, HmcConfig::paper().vaults);
    }

    #[test]
    fn partitioned_systems_pad_every_area_to_vault_sweeps() {
        let sys = System::partitioned(1000, 2, 4);
        assert_eq!(sys.config().partitions, 4);
        assert_eq!(sys.layout().partitions(), 4);
        assert_eq!(sys.mask_base() % 8192, 0);
        assert_eq!(
            sys.fresh_hmc().image_len() as u64,
            sys.layout().image_bytes()
        );
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn bad_partition_count_panics() {
        let _ = System::partitioned(100, 1, 5);
    }

    #[test]
    fn single_partition_allows_nonstandard_vault_counts() {
        // Only partitioned layouts depend on the 32-vault sweep;
        // a single-engine experiment may still shrink the cube.
        let mut cfg = SystemConfig::paper(256, 1);
        cfg.hmc.vaults = 16;
        let sys = System::with_config(cfg);
        let q = Query::quantity_below_permille(500);
        let report = sys.run(Arch::Hipe, &q);
        assert_eq!(report.result, hipe_db::scan::reference(sys.table(), &q));
    }

    #[test]
    #[should_panic(expected = "require the cube's 32 vaults")]
    fn partitioned_configs_reject_nonstandard_vault_counts() {
        let mut cfg = SystemConfig::paper(256, 1);
        cfg.hmc.vaults = 16;
        cfg.partitions = 4;
        let _ = System::with_config(cfg);
    }

    #[test]
    #[should_panic(expected = "at least one tuple")]
    fn zero_rows_panics() {
        let _ = System::new(0, 0);
    }
}
