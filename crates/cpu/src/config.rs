//! Core configuration (paper Table I).

use hipe_sim::Cycle;

/// Out-of-order core parameters.
///
/// # Example
///
/// ```
/// use hipe_cpu::CoreConfig;
/// let c = CoreConfig::paper();
/// assert_eq!(c.issue_width, 6);
/// assert_eq!(c.rob_entries, 168);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreConfig {
    /// Micro-ops issued per cycle (6-wide in Table I).
    pub issue_width: usize,
    /// Reorder-buffer entries (168).
    pub rob_entries: usize,
    /// Memory-order-buffer read entries (64).
    pub mob_read: usize,
    /// Memory-order-buffer write entries (36).
    pub mob_write: usize,
    /// Integer ALU units (3) and latency (1).
    pub int_alu_units: usize,
    /// Integer ALU latency.
    pub int_alu_latency: Cycle,
    /// Integer multiplier units (1) and latency (3).
    pub int_mul_units: usize,
    /// Integer multiply latency.
    pub int_mul_latency: Cycle,
    /// Integer divider units (1) and latency (32).
    pub int_div_units: usize,
    /// Integer divide latency.
    pub int_div_latency: Cycle,
    /// FP ALU units (1) and latency (3).
    pub fp_alu_units: usize,
    /// FP ALU latency.
    pub fp_alu_latency: Cycle,
    /// FP multiplier units (1) and latency (5).
    pub fp_mul_units: usize,
    /// FP multiply latency.
    pub fp_mul_latency: Cycle,
    /// FP divider units (1) and latency (10).
    pub fp_div_units: usize,
    /// FP divide latency.
    pub fp_div_latency: Cycle,
    /// Load units (1, 1-cycle AGU).
    pub load_units: usize,
    /// Store units (1, 1-cycle).
    pub store_units: usize,
    /// Front-end refill penalty of a branch mispredict.
    pub mispredict_penalty: Cycle,
    /// Bytes of vector data processed per cycle by one ALU pipe
    /// (AVX-512-capable: 64 B/cycle).
    pub vector_bytes_per_cycle: u64,
}

impl CoreConfig {
    /// Table I parameters.
    pub fn paper() -> Self {
        CoreConfig {
            issue_width: 6,
            rob_entries: 168,
            mob_read: 64,
            mob_write: 36,
            int_alu_units: 3,
            int_alu_latency: 1,
            int_mul_units: 1,
            int_mul_latency: 3,
            int_div_units: 1,
            int_div_latency: 32,
            fp_alu_units: 1,
            fp_alu_latency: 3,
            fp_mul_units: 1,
            fp_mul_latency: 5,
            fp_div_units: 1,
            fp_div_latency: 10,
            load_units: 1,
            store_units: 1,
            mispredict_penalty: 14,
            vector_bytes_per_cycle: 64,
        }
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_matches_table_one() {
        let c = CoreConfig::paper();
        assert_eq!((c.mob_read, c.mob_write), (64, 36));
        assert_eq!(c.int_alu_units, 3);
        assert_eq!(c.int_div_latency, 32);
        assert_eq!(c.fp_mul_latency, 5);
    }
}
