//! The interval-style out-of-order core.

use crate::config::CoreConfig;
use crate::port::MemoryPort;
use hipe_isa::{MicroOp, MicroOpKind};
use hipe_sim::{Cycle, FifoWindow, MultiServer, Window};
use std::collections::VecDeque;

/// Execution counters of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreStats {
    /// Micro-ops executed.
    pub ops: u64,
    /// Loads (including HMC dispatches and logic waits).
    pub loads: u64,
    /// Stores (including posted logic dispatches).
    pub stores: u64,
    /// Branches executed.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
}

impl CoreStats {
    /// Adds the counters into a [`Metrics`](hipe_trace::Metrics)
    /// registry under `{prefix}core.*`.
    pub fn export_metrics(&self, prefix: &str, metrics: &mut hipe_trace::Metrics) {
        metrics.counter_add(&format!("{prefix}core.ops"), self.ops);
        metrics.counter_add(&format!("{prefix}core.loads"), self.loads);
        metrics.counter_add(&format!("{prefix}core.stores"), self.stores);
        metrics.counter_add(&format!("{prefix}core.branches"), self.branches);
        metrics.counter_add(&format!("{prefix}core.mispredicts"), self.mispredicts);
    }
}

/// The out-of-order core model.
///
/// Feed it the dynamic micro-op stream in program order via
/// [`execute`](Self::execute); it returns each op's completion cycle
/// and tracks the overall critical path, available from
/// [`finish`](Self::finish).
///
/// See the crate docs for what the interval model does and does not
/// capture.
#[derive(Debug)]
pub struct Core {
    cfg: CoreConfig,
    rob: FifoWindow,
    mob_r: Window,
    mob_w: Window,
    int_alu: MultiServer,
    int_mul: MultiServer,
    int_div: MultiServer,
    fp_alu: MultiServer,
    fp_mul: MultiServer,
    fp_div: MultiServer,
    load_agu: MultiServer,
    store_agu: MultiServer,
    /// Earliest cycle the front end can deliver the next micro-op
    /// (advanced by mispredict refills).
    front_end: Cycle,
    /// Cycle currently being filled with issue slots.
    issue_cycle: Cycle,
    /// Slots already used in `issue_cycle`.
    issued_this_cycle: usize,
    /// Completion cycles of the most recent ops (dependency window).
    ring: VecDeque<Cycle>,
    /// Maximum completion cycle observed.
    horizon: Cycle,
    stats: CoreStats,
}

impl Core {
    /// Creates an idle core.
    pub fn new(cfg: CoreConfig) -> Self {
        Core {
            rob: FifoWindow::new(cfg.rob_entries),
            mob_r: Window::new(cfg.mob_read),
            mob_w: Window::new(cfg.mob_write),
            int_alu: MultiServer::new(cfg.int_alu_units),
            int_mul: MultiServer::new(cfg.int_mul_units),
            int_div: MultiServer::new(cfg.int_div_units),
            fp_alu: MultiServer::new(cfg.fp_alu_units),
            fp_mul: MultiServer::new(cfg.fp_mul_units),
            fp_div: MultiServer::new(cfg.fp_div_units),
            load_agu: MultiServer::new(cfg.load_units),
            store_agu: MultiServer::new(cfg.store_units),
            front_end: 0,
            issue_cycle: 0,
            issued_this_cycle: 0,
            ring: VecDeque::with_capacity(cfg.rob_entries + 1),
            horizon: 0,
            stats: CoreStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Claims one issue slot; returns its cycle.
    fn take_slot(&mut self) -> Cycle {
        if self.front_end > self.issue_cycle {
            self.issue_cycle = self.front_end;
            self.issued_this_cycle = 0;
        }
        if self.issued_this_cycle >= self.cfg.issue_width {
            self.issue_cycle += 1;
            self.issued_this_cycle = 0;
        }
        self.issued_this_cycle += 1;
        self.issue_cycle
    }

    /// Resolves a dependency distance to a ready cycle.
    fn dep_ready(&self, dist: u32) -> Cycle {
        if dist == 0 {
            return 0;
        }
        let d = dist as usize;
        if d > self.ring.len() {
            // Producer retired long ago: value is in the register file.
            return 0;
        }
        self.ring[self.ring.len() - d]
    }

    /// Executes one micro-op; returns its completion cycle.
    ///
    /// Micro-ops must be supplied in program order. Memory kinds are
    /// routed to `port`.
    pub fn execute<P: MemoryPort>(&mut self, op: MicroOp, port: &mut P) -> Cycle {
        self.stats.ops += 1;
        let slot = self.take_slot();
        let dispatch = self.rob.admit(slot);
        let ready = dispatch
            .max(self.dep_ready(op.dep1))
            .max(self.dep_ready(op.dep2));

        let end = match op.kind {
            MicroOpKind::IntAlu => self.int_alu.serve(ready, self.cfg.int_alu_latency).1,
            MicroOpKind::IntMul => self.int_mul.serve(ready, self.cfg.int_mul_latency).1,
            MicroOpKind::IntDiv => self.int_div.serve(ready, self.cfg.int_div_latency).1,
            MicroOpKind::FpAlu => self.fp_alu.serve(ready, self.cfg.fp_alu_latency).1,
            MicroOpKind::FpMul => self.fp_mul.serve(ready, self.cfg.fp_mul_latency).1,
            MicroOpKind::FpDiv => self.fp_div.serve(ready, self.cfg.fp_div_latency).1,
            MicroOpKind::VecAlu { size } => {
                // Wide vector ops occupy an ALU pipe for one cycle per
                // `vector_bytes_per_cycle` chunk.
                let cycles = size.bytes().div_ceil(self.cfg.vector_bytes_per_cycle);
                self.int_alu
                    .serve(ready, cycles.max(self.cfg.int_alu_latency))
                    .1
            }
            MicroOpKind::Load { addr, bytes } => {
                self.stats.loads += 1;
                let agu = self.load_agu.serve(ready, 1).1;
                let adm = self.mob_r.admit(agu);
                let done = port.read(adm, addr, bytes);
                self.mob_r.complete(done);
                done
            }
            MicroOpKind::Store { addr, bytes } => {
                self.stats.stores += 1;
                let agu = self.store_agu.serve(ready, 1).1;
                let adm = self.mob_w.admit(agu);
                let sent = port.write(adm, addr, bytes);
                self.mob_w.complete(sent);
                sent
            }
            MicroOpKind::Branch { mispredict } => {
                self.stats.branches += 1;
                let end = self.int_alu.serve(ready, self.cfg.int_alu_latency).1;
                if mispredict {
                    self.stats.mispredicts += 1;
                    self.front_end = self.front_end.max(end + self.cfg.mispredict_penalty);
                }
                end
            }
            MicroOpKind::HmcDispatch {
                addr,
                size,
                op: vop,
                result_bytes,
            } => {
                self.stats.loads += 1;
                let agu = self.load_agu.serve(ready, 1).1;
                let adm = self.mob_r.admit(agu);
                let done = port.hmc_dispatch(adm, addr, size, vop, result_bytes);
                self.mob_r.complete(done);
                done
            }
            MicroOpKind::LogicDispatch => {
                self.stats.stores += 1;
                let agu = self.store_agu.serve(ready, 1).1;
                let adm = self.mob_w.admit(agu);
                let sent = port.logic_dispatch(adm);
                self.mob_w.complete(sent);
                sent
            }
            MicroOpKind::LogicWait => {
                self.stats.loads += 1;
                let agu = self.load_agu.serve(ready, 1).1;
                let adm = self.mob_r.admit(agu);
                let done = port.logic_wait(adm);
                self.mob_r.complete(done);
                done
            }
        };

        self.rob.complete(end);
        self.ring.push_back(end);
        if self.ring.len() > self.cfg.rob_entries {
            self.ring.pop_front();
        }
        self.horizon = self.horizon.max(end);
        end
    }

    /// Completion cycle of the whole stream executed so far.
    pub fn finish(&self) -> Cycle {
        self.horizon
    }

    /// Execution counters.
    pub fn stats(&self) -> CoreStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::port::FlatMemory;
    use hipe_isa::OpSize;

    fn alu() -> MicroOp {
        MicroOp::new(MicroOpKind::IntAlu)
    }

    #[test]
    fn issue_width_limits_throughput() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(10);
        // 60 independent 1-cycle ALU ops, but only 3 ALU units: the ALU
        // pool (3/cycle), not the 6-wide issue, is the binding limit.
        let mut last = 0;
        for _ in 0..60 {
            last = core.execute(alu(), &mut mem);
        }
        assert!((60 / 3..=60 / 3 + 3).contains(&last), "last {last}");
    }

    #[test]
    fn dependency_chains_serialize() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(10);
        let mut last = 0;
        for _ in 0..50 {
            last = core.execute(alu().with_deps(1, 0), &mut mem);
        }
        // A chain of 50 dependent 1-cycle ops takes ~50 cycles.
        assert!(last >= 50, "chain took {last}");
    }

    #[test]
    fn mob_bounds_memory_level_parallelism() {
        let cfg = CoreConfig::paper();
        let mut core = Core::new(cfg);
        let mut mem = FlatMemory::new(400);
        let n = 640u64;
        let mut last = 0;
        for i in 0..n {
            last = core.execute(
                MicroOp::new(MicroOpKind::Load {
                    addr: i * 64,
                    bytes: 8,
                }),
                &mut mem,
            );
        }
        // 640 loads, 64 MOB entries, 400-cycle memory: >= 10 rounds.
        assert!(last >= 4000, "mlp unbounded: {last}");
        // And well below full serialization (640 * 400).
        assert!(last < 40_000, "no mlp at all: {last}");
    }

    #[test]
    fn rob_bounds_run_ahead() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(10_000);
        // One very long load followed by many independent ALU ops: the
        // ROB admits only 167 more ops until the load completes.
        core.execute(
            MicroOp::new(MicroOpKind::Load { addr: 0, bytes: 8 }),
            &mut mem,
        );
        let mut early = 0u64;
        for _ in 0..500 {
            let done = core.execute(alu(), &mut mem);
            if done < 10_000 {
                early += 1;
            }
        }
        assert!(early <= 168, "rob did not bound run-ahead: {early}");
    }

    #[test]
    fn mispredict_stalls_front_end() {
        let mut predicted = Core::new(CoreConfig::paper());
        let mut mispred = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(10);
        for _ in 0..20 {
            predicted.execute(
                MicroOp::new(MicroOpKind::Branch { mispredict: false }),
                &mut mem,
            );
            mispred.execute(
                MicroOp::new(MicroOpKind::Branch { mispredict: true }),
                &mut mem,
            );
        }
        assert!(mispred.finish() > predicted.finish() + 15 * 20 / 2);
        assert_eq!(mispred.stats().mispredicts, 20);
    }

    #[test]
    fn vector_ops_occupy_pipes_by_width() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(10);
        // 256 B vector op = 4 pipe-cycles on a 64 B/cycle pipe.
        let one = core.execute(
            MicroOp::new(MicroOpKind::VecAlu { size: OpSize::MAX }),
            &mut mem,
        );
        assert_eq!(one, 4);
    }

    #[test]
    fn stores_are_posted() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(400);
        let done = core.execute(
            MicroOp::new(MicroOpKind::Store { addr: 0, bytes: 8 }),
            &mut mem,
        );
        // FlatMemory::write returns cycle+1: the store does not wait
        // 400 cycles.
        assert!(done < 10);
    }

    #[test]
    fn stats_classify_ops() {
        let mut core = Core::new(CoreConfig::paper());
        let mut mem = FlatMemory::new(1);
        core.execute(alu(), &mut mem);
        core.execute(
            MicroOp::new(MicroOpKind::Load { addr: 0, bytes: 8 }),
            &mut mem,
        );
        core.execute(MicroOp::new(MicroOpKind::LogicDispatch), &mut mem);
        core.execute(MicroOp::new(MicroOpKind::LogicWait), &mut mem);
        let s = core.stats();
        assert_eq!(s.ops, 4);
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
    }
}
