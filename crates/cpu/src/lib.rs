//! Interval-style out-of-order core timing model.
//!
//! Replaces SiNUCA's cycle-accurate pipeline with an interval model of
//! the paper's Sandy-Bridge-like core (Table I): 6-wide issue at
//! 2 GHz, a 168-entry reorder buffer, 64-read/36-write memory order
//! buffer, the listed functional-unit mix and latencies, and a
//! two-level GAs branch predictor whose mispredictions stall the
//! front end.
//!
//! The model consumes a dynamic [`hipe_isa::MicroOp`] stream in program
//! order and computes, per micro-op, dispatch (bounded by issue width,
//! front-end stalls and ROB occupancy), operand-ready (explicit
//! dependency distances), execution (functional-unit contention) and
//! completion. Memory operations are delegated to a [`MemoryPort`] —
//! the cache hierarchy, the HMC dispatch path, or the logic-layer
//! engine — so the same core model drives all four architectures.
//!
//! What the interval model keeps from a full pipeline simulation:
//! instruction throughput limits, memory-level parallelism limits
//! (ROB/MOB), dependency serialization and branch-mispredict stalls —
//! the four effects the paper's figures hinge on. What it drops:
//! wrong-path execution and register-renaming stalls, which are
//! second-order for streaming scans (see DESIGN.md).
//!
//! # Example
//!
//! ```
//! use hipe_cpu::{Core, CoreConfig, FlatMemory};
//! use hipe_isa::{MicroOp, MicroOpKind};
//!
//! let mut core = Core::new(CoreConfig::paper());
//! let mut mem = FlatMemory::new(100); // fixed 100-cycle memory
//! let mut done = 0;
//! for _ in 0..12 {
//!     done = core.execute(MicroOp::new(MicroOpKind::IntAlu), &mut mem);
//! }
//! // 12 independent 1-cycle ALU ops on a 6-wide core: two cycles of
//! // issue plus the unit latency.
//! assert!(done <= 4);
//! ```

mod config;
mod core_model;
mod port;
mod predictor;

pub use config::CoreConfig;
pub use core_model::{Core, CoreStats};
pub use port::{FlatMemory, MemoryPort};
pub use predictor::GasPredictor;
