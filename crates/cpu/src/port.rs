//! The memory-port abstraction between the core and the rest of the
//! system.

use hipe_isa::{OpSize, VaultOp};
use hipe_sim::Cycle;

/// Where the core's memory micro-ops go.
///
/// The four evaluated architectures differ only in how this trait is
/// implemented:
///
/// * **x86** — reads/writes through the cache hierarchy;
///   `hmc_dispatch`/`logic_*` are unused.
/// * **HMC** — reads/writes through the caches, `hmc_dispatch` sends a
///   read-operate instruction to a vault functional unit.
/// * **HIVE/HIPE** — `logic_dispatch` posts instructions to the
///   logic-layer engine, `logic_wait` blocks on its unlock
///   acknowledgement; bitmask reads still use the cache path.
pub trait MemoryPort {
    /// A demand read of `bytes` at `addr`; returns the data-ready cycle.
    fn read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle;

    /// A store of `bytes` at `addr`; returns the cycle at which the
    /// store has left the core (post-retirement completion is the
    /// memory system's business).
    fn write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle;

    /// Dispatch of an HMC-ISA read-operate instruction; returns the
    /// cycle the response (result mask) reaches the core.
    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        addr: u64,
        size: OpSize,
        op: VaultOp,
        result_bytes: u64,
    ) -> Cycle;

    /// Posted dispatch of one logic-layer instruction; returns the
    /// cycle the packet has been handed to the link.
    fn logic_dispatch(&mut self, cycle: Cycle) -> Cycle;

    /// Wait for the engine's unlock acknowledgement; returns its
    /// arrival cycle.
    fn logic_wait(&mut self, cycle: Cycle) -> Cycle;
}

/// A trivial fixed-latency memory, useful for unit tests and for
/// isolating core-bound behaviour.
///
/// # Example
///
/// ```
/// use hipe_cpu::{FlatMemory, MemoryPort};
/// let mut m = FlatMemory::new(100);
/// assert_eq!(m.read(5, 0x40, 8), 105);
/// assert_eq!(m.write(5, 0x40, 8), 6);
/// ```
#[derive(Debug, Clone)]
pub struct FlatMemory {
    latency: Cycle,
}

impl FlatMemory {
    /// Creates a memory with a fixed read latency.
    pub fn new(latency: Cycle) -> Self {
        FlatMemory { latency }
    }
}

impl MemoryPort for FlatMemory {
    fn read(&mut self, cycle: Cycle, _addr: u64, _bytes: u64) -> Cycle {
        cycle + self.latency
    }

    fn write(&mut self, cycle: Cycle, _addr: u64, _bytes: u64) -> Cycle {
        cycle + 1
    }

    fn hmc_dispatch(
        &mut self,
        cycle: Cycle,
        _addr: u64,
        _size: OpSize,
        _op: VaultOp,
        _result_bytes: u64,
    ) -> Cycle {
        cycle + self.latency
    }

    fn logic_dispatch(&mut self, cycle: Cycle) -> Cycle {
        cycle + 1
    }

    fn logic_wait(&mut self, cycle: Cycle) -> Cycle {
        cycle + self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_memory_latencies() {
        let mut m = FlatMemory::new(42);
        assert_eq!(m.read(0, 0, 8), 42);
        assert_eq!(m.logic_wait(10), 52);
        assert_eq!(m.logic_dispatch(10), 11);
    }
}
