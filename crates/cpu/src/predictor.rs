//! Two-level GAs branch predictor model.
//!
//! Table I specifies a two-level GAs (global history, set-associative
//! pattern tables) predictor with a 4096-entry BTB. The compiler uses
//! this model while generating micro-op streams: it feeds each dynamic
//! branch outcome through the predictor and annotates the branch
//! micro-op with whether it mispredicted, making mispredict stalls
//! data-dependent exactly as in the original simulation.

/// A two-level adaptive predictor (GAs): a global history register
/// indexes per-set pattern history tables of 2-bit counters.
///
/// # Example
///
/// ```
/// use hipe_cpu::GasPredictor;
/// let mut p = GasPredictor::new();
/// // A perfectly biased branch is learned once the global history
/// // warms up (~8 + 2 iterations for 8 bits of history).
/// let mut wrong = 0;
/// for _ in 0..100 {
///     if !p.predict_and_update(0x400, true) { wrong += 1; }
/// }
/// assert!(wrong <= 12);
/// ```
#[derive(Debug, Clone)]
pub struct GasPredictor {
    /// Global history register (lower HISTORY_BITS used).
    history: u32,
    /// Pattern history tables: 2-bit saturating counters.
    pht: Vec<u8>,
}

const HISTORY_BITS: u32 = 8;
const SETS: usize = 16;

impl GasPredictor {
    /// Creates a predictor with cleared history (weakly not-taken).
    pub fn new() -> Self {
        GasPredictor {
            history: 0,
            pht: vec![1; SETS << HISTORY_BITS],
        }
    }

    fn index(&self, pc: u64) -> usize {
        let set = (pc >> 2) as usize % SETS;
        (set << HISTORY_BITS) | (self.history as usize & ((1 << HISTORY_BITS) - 1))
    }

    /// Predicts the branch at `pc`, updates the tables with the real
    /// `taken` outcome and returns `true` when the prediction was
    /// correct.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        let idx = self.index(pc);
        let counter = self.pht[idx];
        let prediction = counter >= 2;
        // Update the saturating counter.
        self.pht[idx] = match (counter, taken) {
            (c, true) if c < 3 => c + 1,
            (c, false) if c > 0 => c - 1,
            (c, _) => c,
        };
        self.history = (self.history << 1) | taken as u32;
        prediction == taken
    }
}

impl Default for GasPredictor {
    fn default() -> Self {
        GasPredictor::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_alternating_pattern() {
        let mut p = GasPredictor::new();
        let mut wrong_late = 0;
        for i in 0..400 {
            let taken = i % 2 == 0;
            let ok = p.predict_and_update(0x100, taken);
            if i >= 100 && !ok {
                wrong_late += 1;
            }
        }
        // With 8 bits of history, a period-2 pattern is fully captured.
        assert_eq!(wrong_late, 0);
    }

    #[test]
    fn random_data_dependent_branches_mispredict_often() {
        let mut p = GasPredictor::new();
        // Pseudo-random outcomes (xorshift) ~50 % taken.
        let mut x = 0x12345678u32;
        let mut wrong = 0;
        for _ in 0..2000 {
            x ^= x << 13;
            x ^= x >> 17;
            x ^= x << 5;
            if !p.predict_and_update(0x200, x & 1 == 1) {
                wrong += 1;
            }
        }
        let rate = wrong as f64 / 2000.0;
        assert!(rate > 0.3, "mispredict rate {rate} suspiciously low");
    }

    #[test]
    fn distinct_pcs_use_distinct_sets() {
        let mut p = GasPredictor::new();
        for _ in 0..100 {
            p.predict_and_update(0x100, true);
        }
        // A different branch address starts fresh-ish; its counters
        // should not be saturated taken by the other branch alone.
        let first = p.predict_and_update(0x104, false);
        // Not asserting the outcome (history is shared), just that the
        // call is well-formed and tables are sized for all sets.
        let _ = first;
        assert_eq!(p.pht.len(), SETS << HISTORY_BITS);
    }
}
