//! Tuple-match bitmasks.

/// A per-tuple match bitmask, the intermediate result of
/// column-at-a-time scans ("1" for match, "0" for no match, as in the
/// paper's experiment description).
///
/// # Example
///
/// ```
/// use hipe_db::Bitmask;
/// let mut m = Bitmask::ones(10);
/// m.clear(3);
/// assert!(!m.get(3));
/// assert_eq!(m.count_ones(), 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmask {
    words: Vec<u64>,
    len: usize,
}

impl Bitmask {
    /// Creates an all-zero mask over `len` tuples.
    pub fn zeros(len: usize) -> Self {
        Bitmask {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one mask over `len` tuples.
    pub fn ones(len: usize) -> Self {
        let mut m = Bitmask {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        m.trim();
        m
    }

    /// Builds a mask over `len` tuples one packed word at a time:
    /// `f(w)` supplies the 64-tuple word `w` in the format of
    /// [`Bitmask::words`]. Bits past `len` in the last word are
    /// discarded, so `f` may fill its final word without masking.
    ///
    /// This is the allocation-free counterpart of collecting a
    /// `FromIterator<bool>` per tuple: scan kernels evaluate 64 rows
    /// into a register and hand the finished word over.
    pub fn from_fn(len: usize, f: impl FnMut(usize) -> u64) -> Self {
        let mut m = Bitmask {
            words: (0..len.div_ceil(64)).map(f).collect(),
            len,
        };
        m.trim();
        m
    }

    /// Overwrites packed word `w` (tuples `[64 * w, 64 * w + 64)`) with
    /// `bits`. Bits past `len` in the last word are discarded, keeping
    /// the zero-tail invariant.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not a valid word index.
    #[inline]
    pub fn set_word(&mut self, w: usize, bits: u64) {
        assert!(w < self.words.len(), "word {w} out of range");
        self.words[w] = bits;
        if w + 1 == self.words.len() {
            self.trim();
        }
    }

    fn trim(&mut self) {
        let extra = self.words.len() * 64 - self.len;
        if extra > 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= !0u64 >> extra;
            }
        }
    }

    /// Number of tuples covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the mask covers zero tuples.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit value for tuple `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] >> (i % 64) & 1 == 1
    }

    /// Sets bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// Clears bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit {i} out of range {}", self.len);
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Assigns bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, v: bool) {
        if v {
            self.set(i)
        } else {
            self.clear(i)
        }
    }

    /// The mask as packed little-endian `u64` words (bit `i` of word
    /// `i / 64` is tuple `64 * (i / 64) + i % 64`; trailing bits of the
    /// last word are zero).
    ///
    /// This is exactly the in-memory format the simulated scan kernels
    /// store at the mask output area.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place intersection with `other`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn and_with(&mut self, other: &Bitmask) {
        assert_eq!(self.len, other.len, "bitmask length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if any bit in tuple range `[start, end)` is set.
    ///
    /// Scans whole 64-bit words (with the boundary words masked) so a
    /// sparse or empty range costs `O(words)`, not one call per bit.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds or inverted.
    pub fn any_in(&self, start: usize, end: usize) -> bool {
        assert!(start <= end && end <= self.len, "range out of bounds");
        if start == end {
            return false;
        }
        let (first, last) = (start / 64, (end - 1) / 64);
        let head = !0u64 << (start % 64);
        let tail = !0u64 >> (63 - (end - 1) % 64);
        if first == last {
            return self.words[first] & head & tail != 0;
        }
        self.words[first] & head != 0
            || self.words[first + 1..last].iter().any(|&w| w != 0)
            || self.words[last] & tail != 0
    }

    /// Iterates over the indices of set bits, in ascending order.
    ///
    /// Word-level `trailing_zeros` scanning: all-zero words cost one
    /// comparison each, so iterating a near-empty mask is `O(words +
    /// ones)` rather than `O(len)` — this is the hot path of the
    /// host-side aggregate gather at low selectivity.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word: 0,
            bits: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the set bits of a [`Bitmask`]; see
/// [`Bitmask::iter_ones`].
///
/// Relies on the mask's invariant that bits past `len` in the last
/// word are always zero.
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    words: &'a [u64],
    /// Index of the word `bits` was taken from.
    word: usize,
    /// Unconsumed set bits of the current word.
    bits: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.bits == 0 {
            self.word += 1;
            if self.word >= self.words.len() {
                return None;
            }
            self.bits = self.words[self.word];
        }
        let bit = self.bits.trailing_zeros() as usize;
        self.bits &= self.bits - 1;
        Some(self.word * 64 + bit)
    }
}

impl FromIterator<bool> for Bitmask {
    /// Packs the bools into words as they stream by — no intermediate
    /// `Vec<bool>`, and the zero-tail invariant holds by construction.
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut words = Vec::new();
        let mut len = 0usize;
        let mut word = 0u64;
        for b in iter {
            word |= (b as u64) << (len % 64);
            len += 1;
            if len.is_multiple_of(64) {
                words.push(word);
                word = 0;
            }
        }
        if !len.is_multiple_of(64) {
            words.push(word);
        }
        Bitmask { words, len }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ones_trims_tail() {
        let m = Bitmask::ones(70);
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    fn set_get_clear() {
        let mut m = Bitmask::zeros(100);
        m.set(0);
        m.set(63);
        m.set(64);
        m.set(99);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(99));
        assert_eq!(m.count_ones(), 4);
        m.clear(63);
        assert!(!m.get(63));
    }

    #[test]
    fn and_intersects() {
        let b: Bitmask = (0..10).map(|i| i < 5).collect();
        let mut c: Bitmask = (0..10).map(|i| i % 2 == 0).collect();
        c.and_with(&b);
        assert_eq!(c.iter_ones().collect::<Vec<_>>(), vec![0, 2, 4]);
    }

    #[test]
    fn words_pack_little_endian_with_zero_tail() {
        let mut m = Bitmask::zeros(70);
        m.set(0);
        m.set(63);
        m.set(65);
        assert_eq!(m.words(), &[1 | (1 << 63), 2]);
        // Trailing bits beyond `len` stay zero even after `ones`.
        assert_eq!(Bitmask::ones(70).words()[1], 0b11_1111);
    }

    #[test]
    fn from_fn_matches_per_bit_collect() {
        for len in [0usize, 1, 63, 64, 65, 130, 200] {
            let per_bit: Bitmask = (0..len).map(|i| i % 3 == 0).collect();
            let per_word = Bitmask::from_fn(len, |w| {
                let mut bits = 0u64;
                for b in 0..64 {
                    let i = w * 64 + b;
                    if i < len && i % 3 == 0 {
                        bits |= 1 << b;
                    }
                }
                bits
            });
            assert_eq!(per_bit, per_word, "len {len}");
        }
    }

    #[test]
    fn from_fn_discards_bits_past_len() {
        // An all-ones generator must still respect the zero tail.
        let m = Bitmask::from_fn(70, |_| !0u64);
        assert_eq!(m, Bitmask::ones(70));
        assert_eq!(m.count_ones(), 70);
    }

    #[test]
    fn set_word_overwrites_and_trims() {
        let mut m = Bitmask::zeros(70);
        m.set_word(0, 0b101);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![0, 2]);
        m.set_word(0, 0b010);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![1]);
        // The last word trims bits past len.
        m.set_word(1, !0u64);
        assert_eq!(m.count_ones(), 1 + 6);
        assert_eq!(m.words()[1], 0b11_1111);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn set_word_out_of_range_panics() {
        Bitmask::zeros(64).set_word(1, 0);
    }

    #[test]
    fn any_in_ranges() {
        let mut m = Bitmask::zeros(128);
        m.set(100);
        assert!(m.any_in(96, 128));
        assert!(!m.any_in(0, 96));
        assert!(!m.any_in(50, 50));
    }

    #[test]
    fn any_in_matches_per_bit_scan_on_all_boundaries() {
        // Word-level scanning must agree with the naive per-bit loop
        // for every (start, end) pair, including word-straddling and
        // word-interior ranges.
        let mut m = Bitmask::zeros(200);
        for i in [0, 63, 64, 65, 127, 128, 190, 199] {
            m.set(i);
        }
        for start in 0..=200 {
            for end in start..=200 {
                let naive = (start..end).any(|i| m.get(i));
                assert_eq!(m.any_in(start, end), naive, "range [{start}, {end})");
            }
        }
    }

    #[test]
    fn iter_ones_matches_per_bit_scan() {
        for (len, bits) in [
            (1usize, vec![0usize]),
            (64, vec![]),
            (64, vec![0, 63]),
            (65, vec![64]),
            (130, vec![1, 63, 64, 65, 127, 128, 129]),
            (200, vec![199]),
        ] {
            let mut m = Bitmask::zeros(len);
            for &b in &bits {
                m.set(b);
            }
            let naive: Vec<usize> = (0..len).filter(|&i| m.get(i)).collect();
            assert_eq!(m.iter_ones().collect::<Vec<_>>(), naive, "len {len}");
            assert_eq!(naive, bits);
        }
        // Empty and full masks.
        assert_eq!(Bitmask::zeros(777).iter_ones().count(), 0);
        assert!(Bitmask::ones(777).iter_ones().eq(0..777));
        assert_eq!(Bitmask::zeros(0).iter_ones().next(), None);
    }

    #[test]
    fn iter_ones_skips_zero_words_cheaply() {
        // A one-in-a-million mask iterates in a handful of word reads;
        // functionally it must still find exactly the set bit.
        let mut m = Bitmask::zeros(1 << 20);
        m.set(999_999);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![999_999]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let m = Bitmask::zeros(8);
        let _ = m.get(8);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let mut a = Bitmask::zeros(8);
        let b = Bitmask::zeros(9);
        a.and_with(&b);
    }
}
