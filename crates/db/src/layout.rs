//! Storage layouts: NSM (row-store) and DSM (column-store), plus the
//! vault-partitioned image map.
//!
//! Following the paper's experiment setup, every NSM tuple occupies
//! 64 bytes — exactly one cache line — of which the four Q6 columns
//! are the first four 8-byte fields; the remaining four fields model
//! the irrelevant attributes that pollute caches in row stores.
//! DSM stores each column contiguously as 8-byte values.
//!
//! The DSM layout additionally owns the *whole image map* — column
//! arrays, the per-region mask output area and the per-region
//! aggregate partial-sum area — and can be vault-partitioned: the HMC
//! interleaves consecutive 256 B blocks across its 32 vaults, so once
//! every area is padded to a whole vault sweep, region `r` of every
//! area lands in vault `r % 32` and a partition owning a contiguous
//! *vault group* owns a fixed, disjoint stripe of row ranges. This is
//! what lets one logic-layer engine per vault group scan its share of
//! the table without ever touching another group's banks.

use crate::lineitem::{Column, LineitemTable};

/// Bytes per NSM tuple (one cache line).
pub const TUPLE_BYTES: u64 = 64;

/// 8-byte fields per NSM tuple.
pub const NSM_FIELDS: usize = 8;

/// Bytes per column value in either layout.
pub const COLUMN_BYTES: u64 = 8;

/// Bytes of one scan region: a 256 B DRAM row buffer, the interleave
/// granularity of the HMC address map.
pub const REGION_BYTES: u64 = 256;

/// Rows covered by one 256 B region (32 x 8 B column values).
pub const REGION_ROWS: usize = (REGION_BYTES / COLUMN_BYTES) as usize;

/// Vaults the HMC address map sweeps with consecutive 256 B blocks.
///
/// The partitioned layout carves this sweep into equally sized vault
/// groups, so the value must match the cube geometry
/// (`HmcConfig::paper().vaults`; `hipe-core` asserts the two agree).
pub const VAULTS: usize = 32;

/// Address geometry of a row-store (NSM) table.
///
/// # Example
///
/// ```
/// use hipe_db::{Column, NsmLayout};
/// let l = NsmLayout::new(0x1000, 100);
/// assert_eq!(l.tuple_addr(0), 0x1000);
/// assert_eq!(l.tuple_addr(1), 0x1040);
/// assert_eq!(l.field_addr(1, Column::Discount), 0x1040 + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsmLayout {
    base: u64,
    rows: usize,
}

impl NsmLayout {
    /// Creates a layout with tuples starting at `base`.
    pub fn new(base: u64, rows: usize) -> Self {
        NsmLayout { base, rows }
    }

    /// Base address of the table.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bytes occupied.
    pub fn bytes(&self) -> u64 {
        self.rows as u64 * TUPLE_BYTES
    }

    /// Address of tuple `i`.
    pub fn tuple_addr(&self, i: usize) -> u64 {
        self.base + i as u64 * TUPLE_BYTES
    }

    /// Address of `column` within tuple `i`.
    pub fn field_addr(&self, i: usize, column: Column) -> u64 {
        self.tuple_addr(i) + column.index() as u64 * COLUMN_BYTES
    }

    /// Serializes the table into bytes laid out per this layout
    /// (relative to `base`, i.e. the vector starts at offset 0).
    ///
    /// Padding fields are filled with a value derived from the row so
    /// that they are non-zero (as real attributes would be).
    pub fn materialize(&self, table: &LineitemTable) -> Vec<u8> {
        assert_eq!(self.rows, table.rows(), "layout row count mismatch");
        let mut out = vec![0u8; self.bytes() as usize];
        for i in 0..self.rows {
            let t = i * TUPLE_BYTES as usize;
            for c in Column::ALL {
                let off = t + c.index() * COLUMN_BYTES as usize;
                out[off..off + 8].copy_from_slice(&table.value(c, i).to_le_bytes());
            }
            for f in Column::ALL.len()..NSM_FIELDS {
                let off = t + f * COLUMN_BYTES as usize;
                let filler = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                out[off..off + 8].copy_from_slice(&filler.to_le_bytes());
            }
        }
        out
    }
}

/// Address geometry of a column-store (DSM) table, including the mask
/// and aggregate output areas that follow it, optionally partitioned
/// across vault groups.
///
/// Columns are laid out back to back, each padded to a 256 B boundary
/// so every column starts on its own DRAM row. With
/// [`partitioned`](Self::partitioned) layouts the padding widens to a
/// whole 32-vault sweep (8 KiB), which pins region `r` of *every* area
/// — column data, mask chunk, partial-sum slot — into vault
/// `r % 32`. Partition `p` of `n` then owns the vault group
/// `[p * 32/n, (p+1) * 32/n)` and, equivalently, every 32-row range
/// whose region index falls in that residue window. A single-partition
/// layout keeps the original 256 B alignment, so
/// `DsmLayout::partitioned(b, r, 1) == DsmLayout::new(b, r)` and the
/// paper figures are reproduced address for address.
///
/// # Example
///
/// ```
/// use hipe_db::{Column, DsmLayout};
/// let l = DsmLayout::new(0, 64);
/// assert_eq!(l.value_addr(Column::Shipdate, 3), 24);
/// // Column arrays never overlap.
/// assert!(l.column_base(Column::Discount) >= 64 * 8);
/// // The partitioned form assigns row ranges to vault groups.
/// let p = DsmLayout::partitioned(0, 4096, 4);
/// assert_eq!(p.vault_group(1), 8..16);
/// assert_eq!(p.partition_of_row(8 * 32), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmLayout {
    base: u64,
    rows: usize,
    stride: u64,
    partitions: usize,
}

impl DsmLayout {
    /// Row-alignment of each column array (single-partition layouts).
    const ALIGN: u64 = REGION_BYTES;

    /// Alignment of every area in a partitioned layout: one full
    /// vault sweep, so region `r` always lands in vault `r % 32`.
    const VAULT_ALIGN: u64 = VAULTS as u64 * REGION_BYTES;

    /// Creates a single-partition layout with column arrays starting
    /// at `base`.
    pub fn new(base: u64, rows: usize) -> Self {
        DsmLayout::partitioned(base, rows, 1)
    }

    /// Creates a layout partitioned across `partitions` vault groups.
    ///
    /// # Panics
    ///
    /// Panics unless `partitions` is non-zero and divides [`VAULTS`],
    /// and — for more than one partition — unless `base` is aligned to
    /// a whole vault sweep (a misaligned base would shift every region
    /// out of its computed vault and break the ownership map).
    pub fn partitioned(base: u64, rows: usize, partitions: usize) -> Self {
        assert!(
            partitions > 0 && VAULTS.is_multiple_of(partitions),
            "{partitions} partitions do not divide the {VAULTS}-vault sweep"
        );
        assert!(
            partitions == 1 || base.is_multiple_of(Self::VAULT_ALIGN),
            "partitioned layout base {base:#x} is not vault-sweep aligned"
        );
        let align = if partitions == 1 {
            Self::ALIGN
        } else {
            Self::VAULT_ALIGN
        };
        let raw = rows as u64 * COLUMN_BYTES;
        let stride = raw.div_ceil(align) * align;
        DsmLayout {
            base,
            rows,
            stride,
            partitions,
        }
    }

    /// Base address of the table.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bytes occupied (all four columns, padded).
    pub fn bytes(&self) -> u64 {
        self.stride * Column::ALL.len() as u64
    }

    /// Base address of one column's array.
    pub fn column_base(&self, c: Column) -> u64 {
        self.base + c.index() as u64 * self.stride
    }

    /// Address of row `i` of column `c`.
    pub fn value_addr(&self, c: Column, i: usize) -> u64 {
        self.column_base(c) + i as u64 * COLUMN_BYTES
    }

    /// Number of 32-row scan regions the table tiles into.
    pub fn regions(&self) -> usize {
        self.rows.div_ceil(REGION_ROWS)
    }

    /// Number of vault-group partitions.
    pub fn partitions(&self) -> usize {
        self.partitions
    }

    /// Vaults per partition.
    pub fn vaults_per_group(&self) -> usize {
        VAULTS / self.partitions
    }

    /// The vault ids owned by partition `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a partition index.
    pub fn vault_group(&self, p: usize) -> std::ops::Range<usize> {
        assert!(p < self.partitions, "partition {p} of {}", self.partitions);
        let g = self.vaults_per_group();
        p * g..(p + 1) * g
    }

    /// The partition owning region `r` — the vault group the HMC
    /// interleave places the region's 256 B blocks in.
    pub fn partition_of_region(&self, r: usize) -> usize {
        (r % VAULTS) / self.vaults_per_group()
    }

    /// The partition owning row `i`.
    pub fn partition_of_row(&self, i: usize) -> usize {
        self.partition_of_region(i / REGION_ROWS)
    }

    /// Global region indices owned by partition `p`, in scan order.
    pub fn partition_regions(&self, p: usize) -> impl Iterator<Item = usize> {
        let me = *self;
        (0..me.regions()).filter(move |&r| me.partition_of_region(r) == p)
    }

    /// Number of regions owned by partition `p` (zero for partitions
    /// whose vault residues the table never reaches).
    pub fn partition_region_count(&self, p: usize) -> usize {
        let g = self.vaults_per_group();
        let group = self.vault_group(p);
        let sweeps = self.regions() / VAULTS;
        let rem = self.regions() % VAULTS;
        sweeps * g + rem.clamp(group.start, group.end) - group.start
    }

    /// Position of region `r` within its owning partition's scan order.
    pub fn local_region_index(&self, r: usize) -> usize {
        let g = self.vaults_per_group();
        (r / VAULTS) * g + (r % VAULTS) % g
    }

    /// Base address of the per-region match-mask output area (one
    /// 256 B chunk per region), directly after the column arrays.
    pub fn mask_base(&self) -> u64 {
        self.base + self.bytes()
    }

    /// Address of region `r`'s 256 B mask chunk.
    pub fn mask_addr(&self, r: usize) -> u64 {
        self.mask_base() + r as u64 * REGION_BYTES
    }

    /// Bytes of the mask area (padded to a whole vault sweep on
    /// partitioned layouts so the aggregate area stays vault-aligned).
    pub fn mask_area_bytes(&self) -> u64 {
        let raw = self.regions() as u64 * REGION_BYTES;
        if self.partitions == 1 {
            raw
        } else {
            raw.div_ceil(Self::VAULT_ALIGN) * Self::VAULT_ALIGN
        }
    }

    /// Base address of the aggregate partial-sum output area (one 8 B
    /// slot per region, packed 32 to a 256 B area row), after the mask
    /// area.
    pub fn agg_base(&self) -> u64 {
        self.mask_base() + self.mask_area_bytes()
    }

    /// Flushes per partition: partial-sum area rows a partition with
    /// `partition_region_count` regions stores (one per 32 owned
    /// regions).
    fn partition_flushes(&self, p: usize) -> usize {
        self.partition_region_count(p).div_ceil(REGION_ROWS)
    }

    /// Address of the 256 B partial-sum area row that partition `p`'s
    /// `group`-th flush stores (each covers 32 of the partition's
    /// regions). The row is placed in partition `p`'s own vault group.
    pub fn agg_flush_addr(&self, p: usize, group: usize) -> u64 {
        let block = if self.partitions == 1 {
            group as u64
        } else {
            let g = self.vaults_per_group() as u64;
            let (group, p) = (group as u64, p as u64);
            (group / g) * VAULTS as u64 + p * g + group % g
        };
        self.agg_base() + block * REGION_BYTES
    }

    /// Address of region `r`'s 8 B partial-sum slot: its lane within
    /// the flush row of its owning partition.
    pub fn agg_slot_addr(&self, r: usize) -> u64 {
        let p = self.partition_of_region(r);
        let k = self.local_region_index(r);
        self.agg_flush_addr(p, k / REGION_ROWS) + (k % REGION_ROWS) as u64 * COLUMN_BYTES
    }

    /// Bytes of the aggregate partial-sum area (whole 256 B rows;
    /// unused pad slots stay zero and contribute nothing to a sum).
    pub fn agg_area_bytes(&self) -> u64 {
        if self.partitions == 1 {
            return self.partition_flushes(0) as u64 * REGION_BYTES;
        }
        let flushes = (0..self.partitions)
            .map(|p| self.partition_flushes(p))
            .max()
            .unwrap_or(0);
        flushes.div_ceil(self.vaults_per_group()) as u64 * Self::VAULT_ALIGN
    }

    /// Total image bytes from [`base`](Self::base) to the end of the
    /// aggregate area — what a cube must back to run scans over this
    /// layout.
    pub fn image_bytes(&self) -> u64 {
        self.agg_base() - self.base + self.agg_area_bytes()
    }

    /// Writes the full table image — column arrays, alignment padding,
    /// and the zeroed mask and aggregate output areas — directly into
    /// `image`, which must span exactly
    /// [`image_bytes`](Self::image_bytes) starting at
    /// [`base`](Self::base).
    ///
    /// This is the zero-copy materialization path: callers hand over
    /// the cube's own backing bytes and no image-sized temporary is
    /// ever allocated. Every byte of `image` is overwritten, so
    /// rematerializing over a dirty (post-run) image restores the
    /// exact cold image.
    ///
    /// # Panics
    ///
    /// Panics if the table's row count differs from the layout's or if
    /// `image` is not exactly `image_bytes()` long.
    pub fn materialize_into(&self, table: &LineitemTable, image: &mut [u8]) {
        assert_eq!(self.rows, table.rows(), "layout row count mismatch");
        assert_eq!(
            image.len() as u64,
            self.image_bytes(),
            "image slice does not span the layout"
        );
        let stride = self.stride as usize;
        let data = self.rows * COLUMN_BYTES as usize;
        for c in Column::ALL {
            let start = c.index() * stride;
            let (vals, pad) = image[start..start + stride].split_at_mut(data);
            for (dst, v) in vals
                .chunks_exact_mut(COLUMN_BYTES as usize)
                .zip(table.column(c))
            {
                dst.copy_from_slice(&v.to_le_bytes());
            }
            pad.fill(0);
        }
        // Mask and aggregate output areas start a run all-zero.
        image[self.bytes() as usize..].fill(0);
    }

    /// Serializes the table into a fresh image vector laid out per this
    /// layout (relative to `base`; spans the whole
    /// [`image_bytes`](Self::image_bytes) footprint). Thin wrapper over
    /// [`materialize_into`](Self::materialize_into) for callers without
    /// a resident image.
    pub fn materialize(&self, table: &LineitemTable) -> Vec<u8> {
        let mut out = vec![0u8; self.image_bytes() as usize];
        self.materialize_into(table, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem::LineitemTable;

    #[test]
    fn nsm_addresses_are_line_aligned() {
        let l = NsmLayout::new(0, 10);
        for i in 0..10 {
            assert_eq!(l.tuple_addr(i) % TUPLE_BYTES, 0);
        }
        assert_eq!(l.bytes(), 640);
    }

    #[test]
    fn nsm_materialize_round_trips_values() {
        let t = LineitemTable::generate(33, 5);
        let l = NsmLayout::new(0, 33);
        let img = l.materialize(&t);
        for i in 0..33 {
            for c in Column::ALL {
                let off = l.field_addr(i, c) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&img[off..off + 8]);
                assert_eq!(i64::from_le_bytes(b), t.value(c, i));
            }
        }
    }

    #[test]
    fn nsm_padding_fields_nonzero() {
        let t = LineitemTable::generate(4, 5);
        let img = NsmLayout::new(0, 4).materialize(&t);
        let mut b = [0u8; 8];
        b.copy_from_slice(&img[32..40]); // field 4 of tuple 0
        assert_ne!(u64::from_le_bytes(b), 0);
    }

    #[test]
    fn dsm_columns_are_row_aligned_and_disjoint() {
        let l = DsmLayout::new(0, 100);
        let mut bases: Vec<u64> = Column::ALL.iter().map(|&c| l.column_base(c)).collect();
        for b in &bases {
            assert_eq!(b % 256, 0);
        }
        bases.dedup();
        assert_eq!(bases.len(), 4);
        // Adjacent columns are at least one column array apart.
        assert!(bases[1] - bases[0] >= 100 * COLUMN_BYTES);
    }

    #[test]
    fn dsm_materialize_round_trips_values() {
        let t = LineitemTable::generate(40, 6);
        let l = DsmLayout::new(0, 40);
        let img = l.materialize(&t);
        for c in Column::ALL {
            for i in 0..40 {
                let off = l.value_addr(c, i) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&img[off..off + 8]);
                assert_eq!(i64::from_le_bytes(b), t.value(c, i));
            }
        }
    }

    #[test]
    fn dsm_is_half_the_bytes_of_nsm() {
        // 4 of 8 fields: DSM moves half the data of NSM for Q6.
        let rows = 4096;
        let nsm = NsmLayout::new(0, rows).bytes();
        let dsm = DsmLayout::new(0, rows).bytes();
        assert_eq!(dsm, nsm / 2);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn materialize_checks_rows() {
        let t = LineitemTable::generate(3, 0);
        let _ = NsmLayout::new(0, 4).materialize(&t);
    }

    #[test]
    fn single_partition_layout_is_the_plain_layout() {
        // The invariant the paper figures rest on: partitions == 1
        // reproduces the original layout address for address.
        for rows in [1, 31, 32, 100, 1024, 4097] {
            assert_eq!(
                DsmLayout::partitioned(64, rows, 1),
                DsmLayout::new(64, rows)
            );
        }
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn partitions_must_divide_the_vault_sweep() {
        let _ = DsmLayout::partitioned(0, 100, 3);
    }

    #[test]
    #[should_panic(expected = "not vault-sweep aligned")]
    fn partitioned_base_must_be_vault_aligned() {
        // A 256 B-aligned but sweep-misaligned base would shift every
        // region out of its computed vault.
        let _ = DsmLayout::partitioned(2048, 4096, 4);
    }

    #[test]
    fn sweep_aligned_bases_and_single_partitions_are_accepted() {
        let l = DsmLayout::partitioned(8192, 4096, 4);
        assert_eq!(l.base(), 8192);
        // Single-partition layouts never consult the vault map: any
        // 256 B-aligned base stays valid.
        let _ = DsmLayout::partitioned(2048, 4096, 1);
    }

    #[test]
    fn partitioned_strides_cover_whole_vault_sweeps() {
        for n in [2, 4, 8, 16, 32] {
            let l = DsmLayout::partitioned(0, 1000, n);
            assert_eq!(l.column_base(Column::Discount) % 8192, 0, "n={n}");
            assert_eq!(l.mask_base() % 8192, 0, "n={n}");
            assert_eq!(l.agg_base() % 8192, 0, "n={n}");
        }
    }

    #[test]
    fn vault_groups_partition_the_sweep() {
        let l = DsmLayout::partitioned(0, 4096, 4);
        assert_eq!(l.vaults_per_group(), 8);
        let mut covered = vec![];
        for p in 0..4 {
            covered.extend(l.vault_group(p));
        }
        assert_eq!(covered, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn regions_map_to_their_vaults_partition() {
        // Region r's blocks land in vault r % 32; the owning partition
        // must be the group holding that vault.
        let l = DsmLayout::partitioned(0, 4096, 4);
        for r in 0..l.regions() {
            let p = l.partition_of_region(r);
            assert!(l.vault_group(p).contains(&(r % 32)), "region {r}");
            for c in Column::ALL {
                let block = (l.value_addr(c, r * REGION_ROWS) / 256) as usize;
                assert!(l.vault_group(p).contains(&(block % 32)), "region {r}");
            }
            let mask_block = (l.mask_addr(r) / 256) as usize;
            assert!(l.vault_group(p).contains(&(mask_block % 32)));
            let slot_block = (l.agg_slot_addr(r) / 256) as usize;
            assert!(l.vault_group(p).contains(&(slot_block % 32)));
        }
    }

    #[test]
    fn partition_regions_cover_all_regions_disjointly() {
        for (rows, n) in [(4096, 4), (1000, 8), (33, 2), (64, 32)] {
            let l = DsmLayout::partitioned(0, rows, n);
            let mut seen = vec![false; l.regions()];
            for p in 0..n {
                let owned: Vec<usize> = l.partition_regions(p).collect();
                assert_eq!(
                    owned.len(),
                    l.partition_region_count(p),
                    "rows={rows} n={n}"
                );
                for (k, r) in owned.into_iter().enumerate() {
                    assert!(!seen[r], "region {r} owned twice");
                    seen[r] = true;
                    assert_eq!(l.partition_of_region(r), p);
                    assert_eq!(l.local_region_index(r), k);
                    assert_eq!(l.partition_of_row(r * REGION_ROWS), p);
                }
            }
            assert!(seen.iter().all(|&s| s), "rows={rows} n={n}: region unowned");
        }
    }

    #[test]
    fn small_tables_leave_high_partitions_empty() {
        // 64 rows = 2 regions, both in vaults 0 and 1 = partition 0 of
        // 8: every other partition is empty.
        let l = DsmLayout::partitioned(0, 64, 8);
        assert_eq!(l.partition_region_count(0), 2);
        for p in 1..8 {
            assert_eq!(l.partition_region_count(p), 0, "partition {p}");
            assert_eq!(l.partition_regions(p).count(), 0);
        }
    }

    #[test]
    fn single_partition_agg_map_matches_the_historical_one() {
        // partitions == 1: slot r at agg_base + 8r, flush g at
        // agg_base + 256g, area = ceil(regions/32) rows.
        let l = DsmLayout::new(0, 3200);
        assert_eq!(l.mask_area_bytes(), 100 * 256);
        assert_eq!(l.agg_base(), l.mask_base() + 100 * 256);
        for r in 0..l.regions() {
            assert_eq!(l.agg_slot_addr(r), l.agg_base() + r as u64 * 8);
        }
        for g in 0..4 {
            assert_eq!(l.agg_flush_addr(0, g), l.agg_base() + g as u64 * 256);
        }
        assert_eq!(l.agg_area_bytes(), 4 * 256);
    }

    #[test]
    fn partitioned_agg_slots_are_disjoint_and_inside_the_area() {
        for (rows, n) in [(4096, 4), (2048, 8), (1000, 2), (100, 4)] {
            let l = DsmLayout::partitioned(0, rows, n);
            let mut slots: Vec<u64> = (0..l.regions()).map(|r| l.agg_slot_addr(r)).collect();
            slots.sort_unstable();
            slots.dedup();
            assert_eq!(
                slots.len(),
                l.regions(),
                "rows={rows} n={n}: slot collision"
            );
            let end = l.agg_base() + l.agg_area_bytes();
            assert!(slots.iter().all(|&a| a >= l.agg_base() && a + 8 <= end));
        }
    }

    #[test]
    fn image_bytes_cover_every_area() {
        for n in [1, 2, 4, 8] {
            let l = DsmLayout::partitioned(0, 5000, n);
            assert_eq!(l.image_bytes(), l.agg_base() + l.agg_area_bytes());
            assert!(l.image_bytes() >= l.bytes() + l.regions() as u64 * 256);
        }
    }
}
