//! Storage layouts: NSM (row-store) and DSM (column-store).
//!
//! Following the paper's experiment setup, every NSM tuple occupies
//! 64 bytes — exactly one cache line — of which the four Q6 columns
//! are the first four 8-byte fields; the remaining four fields model
//! the irrelevant attributes that pollute caches in row stores.
//! DSM stores each column contiguously as 8-byte values.

use crate::lineitem::{Column, LineitemTable};

/// Bytes per NSM tuple (one cache line).
pub const TUPLE_BYTES: u64 = 64;

/// 8-byte fields per NSM tuple.
pub const NSM_FIELDS: usize = 8;

/// Bytes per column value in either layout.
pub const COLUMN_BYTES: u64 = 8;

/// Address geometry of a row-store (NSM) table.
///
/// # Example
///
/// ```
/// use hipe_db::{Column, NsmLayout};
/// let l = NsmLayout::new(0x1000, 100);
/// assert_eq!(l.tuple_addr(0), 0x1000);
/// assert_eq!(l.tuple_addr(1), 0x1040);
/// assert_eq!(l.field_addr(1, Column::Discount), 0x1040 + 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NsmLayout {
    base: u64,
    rows: usize,
}

impl NsmLayout {
    /// Creates a layout with tuples starting at `base`.
    pub fn new(base: u64, rows: usize) -> Self {
        NsmLayout { base, rows }
    }

    /// Base address of the table.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bytes occupied.
    pub fn bytes(&self) -> u64 {
        self.rows as u64 * TUPLE_BYTES
    }

    /// Address of tuple `i`.
    pub fn tuple_addr(&self, i: usize) -> u64 {
        self.base + i as u64 * TUPLE_BYTES
    }

    /// Address of `column` within tuple `i`.
    pub fn field_addr(&self, i: usize, column: Column) -> u64 {
        self.tuple_addr(i) + column.index() as u64 * COLUMN_BYTES
    }

    /// Serializes the table into bytes laid out per this layout
    /// (relative to `base`, i.e. the vector starts at offset 0).
    ///
    /// Padding fields are filled with a value derived from the row so
    /// that they are non-zero (as real attributes would be).
    pub fn materialize(&self, table: &LineitemTable) -> Vec<u8> {
        assert_eq!(self.rows, table.rows(), "layout row count mismatch");
        let mut out = vec![0u8; self.bytes() as usize];
        for i in 0..self.rows {
            let t = i * TUPLE_BYTES as usize;
            for c in Column::ALL {
                let off = t + c.index() * COLUMN_BYTES as usize;
                out[off..off + 8].copy_from_slice(&table.value(c, i).to_le_bytes());
            }
            for f in Column::ALL.len()..NSM_FIELDS {
                let off = t + f * COLUMN_BYTES as usize;
                let filler = (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                out[off..off + 8].copy_from_slice(&filler.to_le_bytes());
            }
        }
        out
    }
}

/// Address geometry of a column-store (DSM) table.
///
/// Columns are laid out back to back, each padded to a 256 B boundary
/// so every column starts on its own DRAM row.
///
/// # Example
///
/// ```
/// use hipe_db::{Column, DsmLayout};
/// let l = DsmLayout::new(0, 64);
/// assert_eq!(l.value_addr(Column::Shipdate, 3), 24);
/// // Column arrays never overlap.
/// assert!(l.column_base(Column::Discount) >= 64 * 8);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DsmLayout {
    base: u64,
    rows: usize,
    stride: u64,
}

impl DsmLayout {
    /// Row-alignment of each column array.
    const ALIGN: u64 = 256;

    /// Creates a layout with column arrays starting at `base`.
    pub fn new(base: u64, rows: usize) -> Self {
        let raw = rows as u64 * COLUMN_BYTES;
        let stride = raw.div_ceil(Self::ALIGN) * Self::ALIGN;
        DsmLayout { base, rows, stride }
    }

    /// Base address of the table.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Number of tuples.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Total bytes occupied (all four columns, padded).
    pub fn bytes(&self) -> u64 {
        self.stride * Column::ALL.len() as u64
    }

    /// Base address of one column's array.
    pub fn column_base(&self, c: Column) -> u64 {
        self.base + c.index() as u64 * self.stride
    }

    /// Address of row `i` of column `c`.
    pub fn value_addr(&self, c: Column, i: usize) -> u64 {
        self.column_base(c) + i as u64 * COLUMN_BYTES
    }

    /// Serializes the table into bytes laid out per this layout
    /// (relative to `base`).
    pub fn materialize(&self, table: &LineitemTable) -> Vec<u8> {
        assert_eq!(self.rows, table.rows(), "layout row count mismatch");
        let mut out = vec![0u8; self.bytes() as usize];
        for c in Column::ALL {
            let cb = (self.column_base(c) - self.base) as usize;
            for (i, &v) in table.column(c).iter().enumerate() {
                let off = cb + i * COLUMN_BYTES as usize;
                out[off..off + 8].copy_from_slice(&v.to_le_bytes());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineitem::LineitemTable;

    #[test]
    fn nsm_addresses_are_line_aligned() {
        let l = NsmLayout::new(0, 10);
        for i in 0..10 {
            assert_eq!(l.tuple_addr(i) % TUPLE_BYTES, 0);
        }
        assert_eq!(l.bytes(), 640);
    }

    #[test]
    fn nsm_materialize_round_trips_values() {
        let t = LineitemTable::generate(33, 5);
        let l = NsmLayout::new(0, 33);
        let img = l.materialize(&t);
        for i in 0..33 {
            for c in Column::ALL {
                let off = l.field_addr(i, c) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&img[off..off + 8]);
                assert_eq!(i64::from_le_bytes(b), t.value(c, i));
            }
        }
    }

    #[test]
    fn nsm_padding_fields_nonzero() {
        let t = LineitemTable::generate(4, 5);
        let img = NsmLayout::new(0, 4).materialize(&t);
        let mut b = [0u8; 8];
        b.copy_from_slice(&img[32..40]); // field 4 of tuple 0
        assert_ne!(u64::from_le_bytes(b), 0);
    }

    #[test]
    fn dsm_columns_are_row_aligned_and_disjoint() {
        let l = DsmLayout::new(0, 100);
        let mut bases: Vec<u64> = Column::ALL.iter().map(|&c| l.column_base(c)).collect();
        for b in &bases {
            assert_eq!(b % 256, 0);
        }
        bases.dedup();
        assert_eq!(bases.len(), 4);
        // Adjacent columns are at least one column array apart.
        assert!(bases[1] - bases[0] >= 100 * COLUMN_BYTES);
    }

    #[test]
    fn dsm_materialize_round_trips_values() {
        let t = LineitemTable::generate(40, 6);
        let l = DsmLayout::new(0, 40);
        let img = l.materialize(&t);
        for c in Column::ALL {
            for i in 0..40 {
                let off = l.value_addr(c, i) as usize;
                let mut b = [0u8; 8];
                b.copy_from_slice(&img[off..off + 8]);
                assert_eq!(i64::from_le_bytes(b), t.value(c, i));
            }
        }
    }

    #[test]
    fn dsm_is_half_the_bytes_of_nsm() {
        // 4 of 8 fields: DSM moves half the data of NSM for Q6.
        let rows = 4096;
        let nsm = NsmLayout::new(0, rows).bytes();
        let dsm = DsmLayout::new(0, rows).bytes();
        assert_eq!(dsm, nsm / 2);
    }

    #[test]
    #[should_panic(expected = "row count mismatch")]
    fn materialize_checks_rows() {
        let t = LineitemTable::generate(3, 0);
        let _ = NsmLayout::new(0, 4).materialize(&t);
    }
}
