//! Database substrate: TPC-H lineitem, storage layouts, select scans.
//!
//! The paper's workload is the selection scan of TPC-H Query 06 over a
//! 1 GB database. The original evaluation uses dbgen data; this crate
//! substitutes a deterministic synthetic generator with dbgen's
//! documented column distributions, which preserves the two properties
//! the experiments depend on:
//!
//! * the ~1.9 % conjunctive selectivity of Q6 (and each predicate's
//!   individual pass rate), which drives HIPE's predicated skipping;
//! * uniform value spread, so bitmask density is uncorrelated with
//!   address, as in dbgen output.
//!
//! Two storage layouts are provided, mirroring the paper's Figure 1:
//! the N-ary storage model ([`NsmLayout`], row-store, 64 B tuples — one
//! cache line) and the decomposition storage model ([`DsmLayout`],
//! column-store, contiguous 8 B columns).
//!
//! The [`scan`] module is the *reference executor*: a plain Rust
//! implementation of the tuple-at-a-time and column-at-a-time select
//! scans whose results every simulated architecture must reproduce
//! exactly (the integration tests enforce this).
//!
//! # Example
//!
//! ```
//! use hipe_db::{LineitemTable, Query, scan};
//!
//! let table = LineitemTable::generate(1_000, 42);
//! let q6 = Query::q6();
//! let result = scan::reference(&table, &q6);
//! assert_eq!(q6.predicates().len(), 3);
//! // Q6 selects roughly 1.9 % of lineitem.
//! let sel = result.matches as f64 / table.rows() as f64;
//! assert!(sel > 0.005 && sel < 0.05, "selectivity {sel}");
//! ```

mod bitmask;
mod layout;
mod lineitem;
mod query;
mod rng;
pub mod scan;
mod zonemap;

pub use bitmask::{Bitmask, IterOnes};
pub use layout::{
    DsmLayout, NsmLayout, COLUMN_BYTES, NSM_FIELDS, REGION_BYTES, REGION_ROWS, TUPLE_BYTES, VAULTS,
};
pub use lineitem::{Column, LineitemTable, TableShape, SF1_ROWS};
pub use query::{CmpOp, ColumnPredicate, Query};
pub use rng::SplitMix64;
pub use zonemap::{PruneStats, RegionSummary, ZoneMap};
