//! Synthetic TPC-H lineitem generation.

use crate::rng::SplitMix64;
use hipe_sim::WorkerPool;

/// Rows of lineitem at TPC-H scale factor 1 (the paper's 1 GB setup).
pub const SF1_ROWS: usize = 6_001_215;

/// Days covered by lineitem ship dates (1992-01-02 .. 1998-12-31).
pub(crate) const SHIPDATE_DAYS: i64 = 2557;

/// Day index (since 1992-01-01) of 1994-01-01.
pub(crate) const DAY_1994_01_01: i64 = 731;

/// Day index (since 1992-01-01) of 1995-01-01.
pub(crate) const DAY_1995_01_01: i64 = 1096;

/// The four lineitem columns touched by Query 06.
///
/// Values are stored as signed 64-bit integers (fixed-point where the
/// original schema uses decimals), matching the 8-byte lanes of the
/// simulated vector and logic-layer units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Column {
    /// `l_shipdate` as days since 1992-01-01.
    Shipdate,
    /// `l_discount` in hundredths (0 ..= 10 for 0.00 ..= 0.10).
    Discount,
    /// `l_quantity` (1 ..= 50).
    Quantity,
    /// `l_extendedprice` in cents.
    ExtendedPrice,
}

impl Column {
    /// All columns in their canonical NSM field order.
    pub const ALL: [Column; 4] = [
        Column::Shipdate,
        Column::Discount,
        Column::Quantity,
        Column::ExtendedPrice,
    ];

    /// The column's field index in the NSM tuple (and DSM column id).
    pub fn index(self) -> usize {
        match self {
            Column::Shipdate => 0,
            Column::Discount => 1,
            Column::Quantity => 2,
            Column::ExtendedPrice => 3,
        }
    }
}

impl std::fmt::Display for Column {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            Column::Shipdate => "l_shipdate",
            Column::Discount => "l_discount",
            Column::Quantity => "l_quantity",
            Column::ExtendedPrice => "l_extendedprice",
        };
        f.write_str(name)
    }
}

/// An in-memory lineitem table (Q6-relevant columns).
///
/// Generation follows dbgen's documented distributions:
/// quantity uniform in 1..=50, discount uniform in 0.00..=0.10,
/// ship dates uniform over the seven-year order window, extended price
/// derived from a uniform part cost times quantity.
///
/// # Example
///
/// ```
/// use hipe_db::{Column, LineitemTable};
/// let t = LineitemTable::generate(100, 7);
/// assert_eq!(t.rows(), 100);
/// let q = t.column(Column::Quantity);
/// assert!(q.iter().all(|&v| (1..=50).contains(&v)));
/// ```
#[derive(Debug, Clone)]
pub struct LineitemTable {
    shipdate: Vec<i64>,
    discount: Vec<i64>,
    quantity: Vec<i64>,
    extendedprice: Vec<i64>,
    seed: u64,
}

/// RNG draws one generated row consumes (shipdate, discount, quantity,
/// part price — each exactly one `range_i64`). [`LineitemTable::
/// generate_range`] jumps the stream by this much per skipped row, so
/// the constant must track the body of the generation loop.
const DRAWS_PER_ROW: u64 = 4;

/// Below this many rows, generation stays on the calling thread even
/// when a wider [`WorkerPool`] is available: the table is too small for
/// fan-out to beat thread startup. (The output is identical either way
/// — the threshold only moves host time.)
const PARALLEL_MIN_ROWS: usize = 65_536;

/// One worker's contiguous slice of the columns being generated. The
/// O(1) SplitMix64 stream jump lets each chunk start its own RNG at
/// exactly the draw the monolithic generator would have reached, so
/// chunks are order-free and the filled table is bit-identical to a
/// serial fill.
struct Chunk<'a> {
    /// Global row index of the chunk's first row.
    first_row: usize,
    shipdate: &'a mut [i64],
    discount: &'a mut [i64],
    quantity: &'a mut [i64],
    extendedprice: &'a mut [i64],
}

/// Fills one chunk by replaying the monolithic draw stream from
/// `chunk.first_row`. This is the *only* generation loop — the serial
/// path is a single chunk spanning the whole table, so parallel and
/// serial output agree byte for byte by construction.
fn fill_chunk(seed: u64, shape: TableShape, chunk: Chunk<'_>) {
    let mut rng = SplitMix64::new(seed);
    rng.skip(chunk.first_row as u64 * DRAWS_PER_ROW);
    for i in 0..chunk.shipdate.len() {
        match shape {
            TableShape::Uniform => chunk.shipdate[i] = rng.range_i64(0, SHIPDATE_DAYS - 1),
            TableShape::ClusteredShipdate { total_rows } => {
                // Draw-and-discard keeps the stream aligned with the
                // uniform shape: every later column sees the same values.
                let _ = rng.range_i64(0, SHIPDATE_DAYS - 1);
                let global = (chunk.first_row + i) as u128;
                chunk.shipdate[i] = (global * SHIPDATE_DAYS as u128 / total_rows as u128) as i64;
            }
        }
        chunk.discount[i] = rng.range_i64(0, 10);
        let q = rng.range_i64(1, 50);
        chunk.quantity[i] = q;
        // dbgen: extendedprice = quantity * part retail price;
        // retail prices are ~90k..111k cents.
        let part_price = rng.range_i64(90_000, 111_000);
        chunk.extendedprice[i] = q * part_price;
    }
}

/// How a generated table's values are laid out across the row space.
///
/// dbgen output is uniform everywhere, which is the worst case for
/// zone-map pruning (every region's min/max spans the whole domain).
/// Real warehouses are loaded in shipdate order, which is the best
/// case: a range predicate touches one contiguous run of regions. The
/// shape knob models both without changing selectivity — only the
/// shipdate column differs, and a given date window selects the same
/// fraction of rows under either shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TableShape {
    /// dbgen's documented distributions: every column uniform.
    Uniform,
    /// Rows arrive in shipdate order: row `i` of the `total_rows`-row
    /// logical table ships on day `i * 2557 / total_rows`. All other
    /// columns draw exactly the uniform shape's values (the uniform
    /// shipdate draw is consumed and discarded so the RNG stream stays
    /// aligned), and any contiguous row range of the clustered table
    /// equals the corresponding slice of the monolithic clustered
    /// table — the shard generator's contract holds for both shapes.
    ClusteredShipdate {
        /// Rows of the whole logical table (≥ the generated range's
        /// end), which fixes the row → day mapping so shards agree.
        total_rows: usize,
    },
}

impl LineitemTable {
    /// Generates `rows` tuples deterministically from `seed`.
    pub fn generate(rows: usize, seed: u64) -> Self {
        LineitemTable::generate_range(seed, 0, rows)
    }

    /// Generates rows `first_row .. first_row + rows` under `shape` —
    /// the shape-aware shard generator used by the system driver.
    ///
    /// Materialization fans out over the `HIPE_WORKERS` pool when the
    /// range is large enough to pay for it; see
    /// [`generate_shaped_on`](Self::generate_shaped_on) for the
    /// explicit-pool variant and the bit-identity contract.
    pub fn generate_shaped(seed: u64, first_row: usize, rows: usize, shape: TableShape) -> Self {
        LineitemTable::generate_shaped_on(&WorkerPool::from_env(), seed, first_row, rows, shape)
    }

    /// [`generate_shaped`](Self::generate_shaped) on an explicit
    /// [`WorkerPool`]: the row range is cut into one contiguous chunk
    /// per worker and each chunk's RNG is jumped (O(1)) to its first
    /// draw, so the result is bit-identical to the serial fill for
    /// every pool width — the tests compare them value for value.
    ///
    /// # Panics
    ///
    /// Panics if `shape` is [`TableShape::ClusteredShipdate`] and the
    /// range extends past its `total_rows`.
    pub fn generate_shaped_on(
        pool: &WorkerPool,
        seed: u64,
        first_row: usize,
        rows: usize,
        shape: TableShape,
    ) -> Self {
        if let TableShape::ClusteredShipdate { total_rows } = shape {
            assert!(
                first_row + rows <= total_rows,
                "row range {first_row}..{} exceeds the {total_rows}-row logical table",
                first_row + rows
            );
        }
        let mut shipdate = vec![0i64; rows];
        let mut discount = vec![0i64; rows];
        let mut quantity = vec![0i64; rows];
        let mut extendedprice = vec![0i64; rows];
        let chunk_rows = if pool.workers() <= 1 || rows < PARALLEL_MIN_ROWS {
            rows.max(1)
        } else {
            rows.div_ceil(pool.workers())
        };
        let chunks: Vec<Chunk<'_>> = shipdate
            .chunks_mut(chunk_rows)
            .zip(discount.chunks_mut(chunk_rows))
            .zip(quantity.chunks_mut(chunk_rows))
            .zip(extendedprice.chunks_mut(chunk_rows))
            .enumerate()
            .map(|(i, (((s, d), q), p))| Chunk {
                first_row: first_row + i * chunk_rows,
                shipdate: s,
                discount: d,
                quantity: q,
                extendedprice: p,
            })
            .collect();
        pool.run(chunks, |_, chunk| fill_chunk(seed, shape, chunk));
        LineitemTable {
            shipdate,
            discount,
            quantity,
            extendedprice,
            seed,
        }
    }

    /// Generates rows `first_row .. first_row + rows` of a
    /// shipdate-clustered table (see [`TableShape::ClusteredShipdate`]).
    ///
    /// # Panics
    ///
    /// Panics if the range extends past `total_rows`.
    ///
    /// # Example
    ///
    /// ```
    /// use hipe_db::{Column, LineitemTable};
    /// let t = LineitemTable::generate_clustered_range(7, 0, 1000, 1000);
    /// let d = t.column(Column::Shipdate);
    /// assert!(d.windows(2).all(|w| w[0] <= w[1])); // sorted by row
    /// ```
    pub fn generate_clustered_range(
        seed: u64,
        first_row: usize,
        rows: usize,
        total_rows: usize,
    ) -> Self {
        LineitemTable::generate_shaped(
            seed,
            first_row,
            rows,
            TableShape::ClusteredShipdate { total_rows },
        )
    }

    /// Generates rows `first_row .. first_row + rows` of the table
    /// that [`generate`](Self::generate) would produce from `seed` —
    /// the shard-aware generator: a shard covering a contiguous row
    /// range materializes exactly the monolithic table's rows for that
    /// range, value for value, without generating the rows before it
    /// (the RNG stream is jumped in O(1)).
    ///
    /// # Example
    ///
    /// ```
    /// use hipe_db::{Column, LineitemTable};
    /// let whole = LineitemTable::generate(100, 7);
    /// let shard = LineitemTable::generate_range(7, 60, 40);
    /// assert_eq!(shard.column(Column::Quantity), &whole.column(Column::Quantity)[60..]);
    /// ```
    pub fn generate_range(seed: u64, first_row: usize, rows: usize) -> Self {
        LineitemTable::generate_shaped(seed, first_row, rows, TableShape::Uniform)
    }

    /// Generates a table sized to a TPC-H scale factor.
    ///
    /// `scale` may be fractional (e.g. `1.0 / 64.0` for quick runs).
    pub fn at_scale(scale: f64, seed: u64) -> Self {
        let rows = ((SF1_ROWS as f64) * scale).round().max(1.0) as usize;
        LineitemTable::generate(rows, seed)
    }

    /// Number of tuples.
    pub fn rows(&self) -> usize {
        self.shipdate.len()
    }

    /// The seed used for generation.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Borrow one column as a slice.
    pub fn column(&self, c: Column) -> &[i64] {
        match c {
            Column::Shipdate => &self.shipdate,
            Column::Discount => &self.discount,
            Column::Quantity => &self.quantity,
            Column::ExtendedPrice => &self.extendedprice,
        }
    }

    /// Value of `c` at row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn value(&self, c: Column, i: usize) -> i64 {
        self.column(c)[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let a = LineitemTable::generate(500, 9);
        let b = LineitemTable::generate(500, 9);
        for c in Column::ALL {
            assert_eq!(a.column(c), b.column(c));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = LineitemTable::generate(500, 1);
        let b = LineitemTable::generate(500, 2);
        assert_ne!(a.column(Column::Quantity), b.column(Column::Quantity));
    }

    #[test]
    fn value_ranges_match_dbgen() {
        let t = LineitemTable::generate(10_000, 3);
        assert!(t
            .column(Column::Shipdate)
            .iter()
            .all(|&v| (0..SHIPDATE_DAYS).contains(&v)));
        assert!(t
            .column(Column::Discount)
            .iter()
            .all(|&v| (0..=10).contains(&v)));
        assert!(t
            .column(Column::Quantity)
            .iter()
            .all(|&v| (1..=50).contains(&v)));
        assert!(t.column(Column::ExtendedPrice).iter().all(|&v| v > 0));
    }

    #[test]
    fn shipdate_1994_fraction_is_about_14_percent() {
        let t = LineitemTable::generate(100_000, 4);
        let hits = t
            .column(Column::Shipdate)
            .iter()
            .filter(|&&d| (DAY_1994_01_01..DAY_1995_01_01).contains(&d))
            .count();
        let frac = hits as f64 / 100_000.0;
        assert!((0.12..0.17).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn generate_range_matches_monolithic_slices() {
        // The shard generator's contract: any contiguous row range of
        // the monolithic table reproduces value for value, including
        // ranges that start mid-region and a full-table range.
        let whole = LineitemTable::generate(257, 21);
        for (first, rows) in [(0, 257), (0, 1), (1, 17), (96, 64), (200, 57), (256, 1)] {
            let shard = LineitemTable::generate_range(21, first, rows);
            assert_eq!(shard.rows(), rows);
            for c in Column::ALL {
                assert_eq!(
                    shard.column(c),
                    &whole.column(c)[first..first + rows],
                    "{c} rows {first}..{}",
                    first + rows
                );
            }
        }
    }

    #[test]
    fn clustered_shards_slice_the_monolithic_clustered_table() {
        let total = 257;
        let whole = LineitemTable::generate_clustered_range(21, 0, total, total);
        for (first, rows) in [(0, 257), (0, 1), (1, 17), (96, 64), (200, 57), (256, 1)] {
            let shard = LineitemTable::generate_clustered_range(21, first, rows, total);
            for c in Column::ALL {
                assert_eq!(
                    shard.column(c),
                    &whole.column(c)[first..first + rows],
                    "{c} rows {first}..{}",
                    first + rows
                );
            }
        }
    }

    #[test]
    fn clustered_differs_from_uniform_only_in_shipdate() {
        let total = 300;
        let uniform = LineitemTable::generate(total, 33);
        let clustered = LineitemTable::generate_clustered_range(33, 0, total, total);
        for c in [Column::Discount, Column::Quantity, Column::ExtendedPrice] {
            assert_eq!(uniform.column(c), clustered.column(c), "{c}");
        }
        let d = clustered.column(Column::Shipdate);
        assert!(d.windows(2).all(|w| w[0] <= w[1]), "shipdate not sorted");
        assert_eq!(d[0], 0);
        assert!(*d.last().unwrap() < SHIPDATE_DAYS);
        assert_ne!(uniform.column(Column::Shipdate), d);
    }

    #[test]
    fn generate_shaped_dispatches_both_shapes() {
        let a = LineitemTable::generate_shaped(5, 10, 40, TableShape::Uniform);
        let b = LineitemTable::generate_range(5, 10, 40);
        assert_eq!(a.column(Column::Shipdate), b.column(Column::Shipdate));
        let c = LineitemTable::generate_shaped(
            5,
            10,
            40,
            TableShape::ClusteredShipdate { total_rows: 100 },
        );
        let d = LineitemTable::generate_clustered_range(5, 10, 40, 100);
        assert_eq!(c.column(Column::Shipdate), d.column(Column::Shipdate));
    }

    #[test]
    fn parallel_generation_is_bit_identical_to_serial() {
        // Big enough to clear PARALLEL_MIN_ROWS so the wide pools
        // genuinely chunk, with a ragged tail (not a chunk multiple).
        let rows = PARALLEL_MIN_ROWS + 12_345;
        for shape in [
            TableShape::Uniform,
            TableShape::ClusteredShipdate {
                total_rows: rows + 7,
            },
        ] {
            let serial =
                LineitemTable::generate_shaped_on(&WorkerPool::serial(), 77, 3, rows, shape);
            for workers in [2, 3, 8] {
                let pool = WorkerPool::new(workers);
                let parallel = LineitemTable::generate_shaped_on(&pool, 77, 3, rows, shape);
                for c in Column::ALL {
                    assert_eq!(
                        serial.column(c),
                        parallel.column(c),
                        "{c} differs at {workers} workers ({shape:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_row_table_generates_empty() {
        let t =
            LineitemTable::generate_shaped_on(&WorkerPool::new(4), 1, 0, 0, TableShape::Uniform);
        assert_eq!(t.rows(), 0);
    }

    #[test]
    fn at_scale_rounds_rows() {
        let t = LineitemTable::at_scale(1.0 / 6_001_215.0, 0);
        assert_eq!(t.rows(), 1);
    }
}
