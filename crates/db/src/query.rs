//! Select-scan queries over lineitem.

use crate::lineitem::{Column, DAY_1994_01_01, DAY_1995_01_01};

/// A comparison applied to every value of one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `value < imm`.
    Lt(i64),
    /// `value <= imm`.
    Le(i64),
    /// `value > imm`.
    Gt(i64),
    /// `value >= imm`.
    Ge(i64),
    /// `value == imm`.
    Eq(i64),
    /// `lo <= value <= hi` (inclusive on both ends).
    Range(i64, i64),
}

impl CmpOp {
    /// Evaluates the comparison for one value.
    pub fn eval(self, v: i64) -> bool {
        match self {
            CmpOp::Lt(x) => v < x,
            CmpOp::Le(x) => v <= x,
            CmpOp::Gt(x) => v > x,
            CmpOp::Ge(x) => v >= x,
            CmpOp::Eq(x) => v == x,
            CmpOp::Range(lo, hi) => lo <= v && v <= hi,
        }
    }

    /// Whether *any* value in the inclusive `[min, max]` interval can
    /// satisfy the comparison — the zone-map pruning test. Exact on
    /// the interval: `false` proves no value in `[min, max]` matches
    /// (the region can be dropped from the emitted program), while
    /// `true` only means a match is possible, not guaranteed.
    pub fn may_match(self, min: i64, max: i64) -> bool {
        debug_assert!(min <= max, "inverted summary interval {min}..{max}");
        match self {
            CmpOp::Lt(x) => min < x,
            CmpOp::Le(x) => min <= x,
            CmpOp::Gt(x) => max > x,
            CmpOp::Ge(x) => max >= x,
            CmpOp::Eq(x) => min <= x && x <= max,
            CmpOp::Range(lo, hi) => min <= hi && max >= lo,
        }
    }

    /// Whether the comparison can match any value at all. Only an
    /// inverted [`CmpOp::Range`] (`lo > hi`) is statically
    /// unsatisfiable; the compiler rejects such predicates with
    /// `CompileError::PredicateUnsatisfiable` instead of emitting a
    /// scan that provably returns nothing.
    pub fn satisfiable(self) -> bool {
        match self {
            CmpOp::Range(lo, hi) => lo <= hi,
            _ => true,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CmpOp::Lt(x) => write!(f, "< {x}"),
            CmpOp::Le(x) => write!(f, "<= {x}"),
            CmpOp::Gt(x) => write!(f, "> {x}"),
            CmpOp::Ge(x) => write!(f, ">= {x}"),
            CmpOp::Eq(x) => write!(f, "= {x}"),
            CmpOp::Range(lo, hi) => write!(f, "between {lo} and {hi}"),
        }
    }
}

/// One conjunct of a select scan: a comparison over one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ColumnPredicate {
    /// The column scanned.
    pub column: Column,
    /// The comparison applied.
    pub cmp: CmpOp,
}

impl ColumnPredicate {
    /// Creates a predicate.
    pub fn new(column: Column, cmp: CmpOp) -> Self {
        ColumnPredicate { column, cmp }
    }
}

impl std::fmt::Display for ColumnPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}", self.column, self.cmp)
    }
}

/// A conjunctive select-scan query with an optional sum aggregate.
///
/// This models the shape of TPC-H Query 06: a conjunction of
/// comparisons over the `lineitem` fact table (no joins), followed by
/// `SUM(l_extendedprice * l_discount)` over the matching tuples.
///
/// # Example
///
/// ```
/// use hipe_db::Query;
/// let q6 = Query::q6();
/// assert_eq!(q6.predicates().len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Query {
    predicates: Vec<ColumnPredicate>,
    aggregate: bool,
}

impl Query {
    /// Builds a query from conjunctive predicates.
    ///
    /// # Panics
    ///
    /// Panics if `predicates` is empty.
    pub fn new(predicates: Vec<ColumnPredicate>, aggregate: bool) -> Self {
        assert!(
            !predicates.is_empty(),
            "a select scan needs at least one predicate"
        );
        Query {
            predicates,
            aggregate,
        }
    }

    /// TPC-H Query 06:
    ///
    /// ```sql
    /// SELECT sum(l_extendedprice * l_discount) FROM lineitem
    /// WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01'
    ///   AND l_discount BETWEEN 0.05 AND 0.07
    ///   AND l_quantity < 24;
    /// ```
    ///
    /// The shipdate range is expressed as the fused range compare the
    /// vector/logic units support; discounts are in hundredths.
    pub fn q6() -> Self {
        Query::new(
            vec![
                ColumnPredicate::new(
                    Column::Shipdate,
                    CmpOp::Range(DAY_1994_01_01, DAY_1995_01_01 - 1),
                ),
                ColumnPredicate::new(Column::Discount, CmpOp::Range(5, 7)),
                ColumnPredicate::new(Column::Quantity, CmpOp::Lt(24)),
            ],
            true,
        )
    }

    /// A single-predicate scan with a selectivity knob: matches roughly
    /// `permille`/1000 of uniformly distributed quantity values. Used
    /// by the selectivity-sweep extension experiment.
    pub fn quantity_below_permille(permille: u32) -> Self {
        // quantity uniform in 1..=50: threshold t matches (t-1)/50.
        let t = 1 + (permille as i64 * 50) / 1000;
        Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(t))],
            false,
        )
    }

    /// A shipdate-window scan with a selectivity knob: matches roughly
    /// `permille`/1000 of the seven-year shipdate span. Unlike
    /// [`quantity_below_permille`](Self::quantity_below_permille) the
    /// selected rows are *contiguous* on a shipdate-clustered table
    /// (`TableShape::ClusteredShipdate`), so region zone maps can
    /// prune everything outside the window — the knob the data-skipping
    /// benchmarks sweep. On a uniform table the same query selects the
    /// same fraction of rows, just scattered (nothing prunes).
    pub fn shipdate_window_permille(permille: u32) -> Self {
        let width = ((permille as i64 * crate::lineitem::SHIPDATE_DAYS) / 1000).max(1);
        let start = DAY_1994_01_01.min(crate::lineitem::SHIPDATE_DAYS - width);
        Query::new(
            vec![ColumnPredicate::new(
                Column::Shipdate,
                CmpOp::Range(start, start + width - 1),
            )],
            false,
        )
    }

    /// Adds the `SUM(l_extendedprice * l_discount)` aggregate to this
    /// query (builder-style), turning a counting scan into a Q6-shaped
    /// aggregate at the same selectivity — the knob the aggregate
    /// selectivity sweep is built from.
    ///
    /// # Example
    ///
    /// ```
    /// use hipe_db::Query;
    /// let q = Query::quantity_below_permille(30).with_aggregate();
    /// assert!(q.aggregates());
    /// ```
    pub fn with_aggregate(mut self) -> Self {
        self.aggregate = true;
        self
    }

    /// The conjuncts in evaluation order.
    pub fn predicates(&self) -> &[ColumnPredicate] {
        &self.predicates
    }

    /// Whether the query sums `l_extendedprice * l_discount` over
    /// matching tuples.
    pub fn aggregates(&self) -> bool {
        self.aggregate
    }

    /// Evaluates the full conjunction on one tuple's column values,
    /// fetched through `get`.
    pub fn matches_with(&self, mut get: impl FnMut(Column) -> i64) -> bool {
        self.predicates.iter().all(|p| p.cmp.eval(get(p.column)))
    }
}

impl std::fmt::Display for Query {
    /// SQL-flavoured one-liner naming the workload, e.g.
    /// `SUM(l_extendedprice * l_discount) WHERE l_quantity < 24` —
    /// meant for bench tables and run reports where `{:?}` would be
    /// noise.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.aggregate {
            f.write_str("SUM(l_extendedprice * l_discount) WHERE ")?;
        } else {
            f.write_str("COUNT(*) WHERE ")?;
        }
        for (i, p) in self.predicates.iter().enumerate() {
            if i > 0 {
                f.write_str(" AND ")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_ops_eval() {
        assert!(CmpOp::Lt(5).eval(4));
        assert!(!CmpOp::Lt(5).eval(5));
        assert!(CmpOp::Le(5).eval(5));
        assert!(CmpOp::Gt(5).eval(6));
        assert!(CmpOp::Ge(5).eval(5));
        assert!(CmpOp::Eq(5).eval(5));
        assert!(CmpOp::Range(2, 4).eval(2));
        assert!(CmpOp::Range(2, 4).eval(4));
        assert!(!CmpOp::Range(2, 4).eval(5));
    }

    #[test]
    fn may_match_is_exact_on_intervals() {
        // For every op, may_match(min, max) must equal "some v in
        // [min, max] satisfies eval" — checked exhaustively on a small
        // domain so the pruning test can never drop a matching region.
        let ops = [
            CmpOp::Lt(3),
            CmpOp::Le(3),
            CmpOp::Gt(3),
            CmpOp::Ge(3),
            CmpOp::Eq(3),
            CmpOp::Range(2, 4),
            CmpOp::Range(4, 4),
        ];
        for op in ops {
            for min in -1..=7i64 {
                for max in min..=7 {
                    let truth = (min..=max).any(|v| op.eval(v));
                    assert_eq!(op.may_match(min, max), truth, "{op:?} on [{min}, {max}]");
                }
            }
        }
    }

    #[test]
    fn inverted_range_is_unsatisfiable() {
        assert!(!CmpOp::Range(5, 3).satisfiable());
        assert!(CmpOp::Range(3, 3).satisfiable());
        assert!(CmpOp::Lt(i64::MIN).satisfiable()); // matches nothing, but not statically
    }

    #[test]
    fn shipdate_window_widths() {
        // 100 permille of 2557 days is a 255-day window starting at
        // the Q6 date; the full-scale window still fits the domain.
        match Query::shipdate_window_permille(100).predicates()[0].cmp {
            CmpOp::Range(lo, hi) => {
                assert_eq!(lo, 731);
                assert_eq!(hi - lo + 1, 255);
            }
            other => panic!("unexpected {other:?}"),
        }
        match Query::shipdate_window_permille(1000).predicates()[0].cmp {
            CmpOp::Range(lo, hi) => {
                assert_eq!(lo, 0);
                assert_eq!(hi, 2556);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn q6_has_three_conjuncts_and_aggregate() {
        let q = Query::q6();
        assert_eq!(q.predicates().len(), 3);
        assert!(q.aggregates());
    }

    #[test]
    fn q6_matches_hand_picked_tuples() {
        let q = Query::q6();
        // A matching tuple: shipped mid-1994, 6 % discount, qty 10.
        assert!(q.matches_with(|c| match c {
            Column::Shipdate => 900,
            Column::Discount => 6,
            Column::Quantity => 10,
            Column::ExtendedPrice => 100_000,
        }));
        // Fails the date.
        assert!(!q.matches_with(|c| match c {
            Column::Shipdate => 100,
            Column::Discount => 6,
            Column::Quantity => 10,
            Column::ExtendedPrice => 100_000,
        }));
    }

    #[test]
    fn selectivity_knob_thresholds() {
        let q = Query::quantity_below_permille(500);
        match q.predicates()[0].cmp {
            CmpOp::Lt(t) => assert_eq!(t, 26),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "at least one predicate")]
    fn empty_query_panics() {
        let _ = Query::new(vec![], false);
    }

    #[test]
    fn display_names_workloads_readably() {
        assert_eq!(CmpOp::Lt(24).to_string(), "< 24");
        assert_eq!(CmpOp::Range(5, 7).to_string(), "between 5 and 7");
        let p = ColumnPredicate::new(Column::Quantity, CmpOp::Lt(24));
        assert_eq!(p.to_string(), "l_quantity < 24");
        assert_eq!(
            Query::q6().to_string(),
            "SUM(l_extendedprice * l_discount) WHERE \
             l_shipdate between 731 and 1095 AND \
             l_discount between 5 and 7 AND l_quantity < 24"
        );
        assert_eq!(
            Query::quantity_below_permille(500).to_string(),
            "COUNT(*) WHERE l_quantity < 26"
        );
    }
}
