//! Minimal deterministic PRNG for synthetic data generation.
//!
//! The build environment is offline, so the external `rand` crate is not
//! available; this SplitMix64 generator replaces it. SplitMix64 passes
//! BigCrush, is seedable from a single `u64`, and — most importantly for
//! this workspace — its output stream is stable across platforms and
//! releases, so generated tables (and therefore every simulated cycle
//! count) are reproducible byte for byte.

/// A SplitMix64 pseudo-random generator.
///
/// # Example
///
/// ```
/// use hipe_db::SplitMix64;
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let v = a.range_i64(1, 50);
/// assert!((1..=50).contains(&v));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// The Weyl-sequence increment the generator's state advances by.
    const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Advances the stream past the next `n` draws in O(1).
    ///
    /// SplitMix64's state is a Weyl sequence (`state += GAMMA` per
    /// draw), so jumping `n` draws ahead is a single wrapping multiply
    /// — the property that lets a table shard start generating at its
    /// global row offset without replaying the rows before it.
    pub fn skip(&mut self, n: u64) {
        self.state = self.state.wrapping_add(Self::GAMMA.wrapping_mul(n));
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)` via the widening-multiply reduction
    /// (bias is < 2^-64 per draw — irrelevant at these sample sizes).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform value in `[lo, hi]` (both inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "inverted range {lo}..={hi}");
        let span = (hi as i128 - lo as i128 + 1) as u128;
        if span > u64::MAX as u128 {
            // Full i64 domain: every 64-bit pattern is a valid draw.
            return self.next_u64() as i64;
        }
        lo.wrapping_add(self.below(span as u64) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(1);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut r = SplitMix64::new(2);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..10_000 {
            match r.range_i64(-3, 3) {
                -3 => lo_seen = true,
                3 => hi_seen = true,
                v => assert!((-3..=3).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[r.below(10) as usize] += 1;
        }
        for b in buckets {
            assert!((9_000..11_000).contains(&b), "bucket count {b}");
        }
    }

    #[test]
    fn full_domain_range_does_not_panic() {
        let mut r = SplitMix64::new(4);
        let mut neg_seen = false;
        let mut pos_seen = false;
        for _ in 0..64 {
            let v = r.range_i64(i64::MIN, i64::MAX);
            neg_seen |= v < 0;
            pos_seen |= v >= 0;
        }
        assert!(neg_seen && pos_seen);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }

    #[test]
    fn skip_equals_discarding_draws() {
        for n in [0u64, 1, 2, 63, 1000] {
            let mut jumped = SplitMix64::new(99);
            jumped.skip(n);
            let mut walked = SplitMix64::new(99);
            for _ in 0..n {
                let _ = walked.next_u64();
            }
            assert_eq!(jumped.next_u64(), walked.next_u64(), "skip({n})");
        }
    }
}
