//! Reference select-scan executors.
//!
//! These plain-Rust executors define the *correct answer* for every
//! simulated architecture. The integration tests require that the
//! functional results computed on the simulated x86, HMC, HIVE and
//! HIPE targets equal the output of [`reference()`] bit for bit.

use crate::bitmask::Bitmask;
use crate::lineitem::{Column, LineitemTable};
use crate::query::Query;

/// Result of a select scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Per-tuple match bitmask.
    pub bitmask: Bitmask,
    /// Number of matching tuples.
    pub matches: usize,
    /// `SUM(l_extendedprice * l_discount)` over matches, if the query
    /// aggregates (discount in hundredths, price in cents: the sum is
    /// in 1e-4 currency units, exact integer arithmetic).
    pub aggregate: Option<i128>,
}

/// Evaluates `query` over `table` one tuple at a time (the row-store
/// processing model of the paper's Figure 1a).
pub fn tuple_at_a_time(table: &LineitemTable, query: &Query) -> ScanResult {
    let rows = table.rows();
    let mut matches = 0;
    let mut agg: i128 = 0;
    // Evaluate 64 tuples per packed word: matches accumulate into a
    // register and land in the mask one word at a time, with the same
    // row-major visit order (and thus the identical aggregate sum) as
    // the historical per-bit loop.
    let bitmask = Bitmask::from_fn(rows, |w| {
        let start = w * 64;
        let end = (start + 64).min(rows);
        let mut bits = 0u64;
        for i in start..end {
            let hit = query.matches_with(|c| table.value(c, i));
            if hit {
                bits |= 1 << (i - start);
                matches += 1;
                if query.aggregates() {
                    agg += table.value(Column::ExtendedPrice, i) as i128
                        * table.value(Column::Discount, i) as i128;
                }
            }
        }
        bits
    });
    ScanResult {
        bitmask,
        matches,
        aggregate: query.aggregates().then_some(agg),
    }
}

/// Evaluates `query` over `table` one column at a time (the
/// column-store processing model of Figure 1b): the first predicate
/// produces a bitmask which subsequent predicates refine.
pub fn column_at_a_time(table: &LineitemTable, query: &Query) -> ScanResult {
    let rows = table.rows();
    let mut bitmask = Bitmask::ones(rows);
    // One reusable scratch mask for every predicate pass: each column
    // is evaluated 64 rows per word into a register, the finished word
    // overwrites the scratch slot, and the running mask intersects it.
    // No per-predicate allocation.
    let mut scratch = Bitmask::zeros(rows);
    for p in query.predicates() {
        let col = table.column(p.column);
        for (w, chunk) in col.chunks(64).enumerate() {
            let mut bits = 0u64;
            for (b, &v) in chunk.iter().enumerate() {
                bits |= (p.cmp.eval(v) as u64) << b;
            }
            scratch.set_word(w, bits);
        }
        bitmask.and_with(&scratch);
    }
    let matches = bitmask.count_ones();
    let aggregate = query.aggregates().then(|| {
        bitmask
            .iter_ones()
            .map(|i| {
                table.value(Column::ExtendedPrice, i) as i128
                    * table.value(Column::Discount, i) as i128
            })
            .sum()
    });
    ScanResult {
        bitmask,
        matches,
        aggregate,
    }
}

/// The canonical reference result (tuple-at-a-time evaluation; both
/// strategies must agree, which the tests assert).
pub fn reference(table: &LineitemTable, query: &Query) -> ScanResult {
    tuple_at_a_time(table, query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, ColumnPredicate};

    #[test]
    fn strategies_agree_on_q6() {
        let t = LineitemTable::generate(10_000, 11);
        let q = Query::q6();
        let a = tuple_at_a_time(&t, &q);
        let b = column_at_a_time(&t, &q);
        assert_eq!(a, b);
    }

    #[test]
    fn q6_selectivity_near_two_percent() {
        let t = LineitemTable::generate(200_000, 12);
        let r = reference(&t, &Query::q6());
        let sel = r.matches as f64 / t.rows() as f64;
        // 365/2557 * 3/11 * 23/50 = 1.79 %.
        assert!((0.012..0.025).contains(&sel), "selectivity {sel}");
    }

    #[test]
    fn aggregate_is_exact() {
        let t = LineitemTable::generate(1_000, 13);
        let r = reference(&t, &Query::q6());
        let by_hand: i128 = (0..t.rows())
            .filter(|&i| r.bitmask.get(i))
            .map(|i| {
                t.value(Column::ExtendedPrice, i) as i128 * t.value(Column::Discount, i) as i128
            })
            .sum();
        assert_eq!(r.aggregate, Some(by_hand));
    }

    #[test]
    fn non_aggregating_query_returns_none() {
        let t = LineitemTable::generate(100, 14);
        let q = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Lt(10))],
            false,
        );
        let r = reference(&t, &q);
        assert_eq!(r.aggregate, None);
        assert_eq!(r.matches, r.bitmask.count_ones());
    }

    #[test]
    fn all_pass_and_none_pass_edges() {
        let t = LineitemTable::generate(500, 15);
        let all = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Le(50))],
            false,
        );
        let none = Query::new(
            vec![ColumnPredicate::new(Column::Quantity, CmpOp::Gt(50))],
            false,
        );
        assert_eq!(reference(&t, &all).matches, 500);
        assert_eq!(reference(&t, &none).matches, 0);
    }
}
