//! Region zone maps: per-region min/max summaries for data skipping.
//!
//! A [`ZoneMap`] is a secondary index over the DSM image, built once at
//! materialization time: for every 32-row region it records each
//! column's `[min, max]` and the region's row count, plus a table-level
//! rollup. The compiler consults it to *prune* — drop from the emitted
//! program — every region whose summaries prove the predicate
//! conjunction can't match there ([`RegionSummary::may_match`]), and
//! the serve layer consults shard rollups ([`ZoneMap::table_may_match`])
//! to skip scattering sub-queries to shards that can't match at all.
//!
//! Pruning is sound by construction: a region is dropped only when
//! `CmpOp::may_match(min, max)` is `false` for some conjunct, which
//! proves no row in the region satisfies that conjunct, hence none
//! satisfies the conjunction. Dead regions therefore contribute
//! exactly zero mask words and zero aggregate lanes — the same bytes a
//! freshly reset image already holds — so pruned and unpruned runs are
//! bit-identical.

use crate::layout::{DsmLayout, REGION_ROWS};
use crate::lineitem::{Column, LineitemTable};
use crate::query::Query;

/// Per-column `[min, max]` plus a row count for one summarized extent —
/// a single 32-row region, or a rollup of many (partition, table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegionSummary {
    rows: usize,
    min: [i64; 4],
    max: [i64; 4],
}

impl RegionSummary {
    /// The identity of [`absorb`](Self::absorb): zero rows, inverted
    /// extremes.
    const EMPTY: RegionSummary = RegionSummary {
        rows: 0,
        min: [i64::MAX; 4],
        max: [i64::MIN; 4],
    };

    /// Rows summarized (32 for a full region, fewer for the table's
    /// tail region, more for a rollup).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Smallest value of `c` in the summarized rows.
    ///
    /// # Panics
    ///
    /// Panics if the summary covers zero rows (there is no minimum).
    pub fn min(&self, c: Column) -> i64 {
        assert!(self.rows > 0, "empty summary has no minimum");
        self.min[c.index()]
    }

    /// Largest value of `c` in the summarized rows.
    ///
    /// # Panics
    ///
    /// Panics if the summary covers zero rows (there is no maximum).
    pub fn max(&self, c: Column) -> i64 {
        assert!(self.rows > 0, "empty summary has no maximum");
        self.max[c.index()]
    }

    /// Widens this summary to also cover `other`'s rows.
    fn absorb(&mut self, other: &RegionSummary) {
        self.rows += other.rows;
        for k in 0..4 {
            self.min[k] = self.min[k].min(other.min[k]);
            self.max[k] = self.max[k].max(other.max[k]);
        }
    }

    /// Whether any summarized row *can* satisfy `query`'s conjunction.
    /// `false` is a proof of emptiness (the pruning decision); `true`
    /// only means the scan must look.
    pub fn may_match(&self, query: &Query) -> bool {
        self.rows > 0
            && query.predicates().iter().all(|p| {
                let k = p.column.index();
                p.cmp.may_match(self.min[k], self.max[k])
            })
    }
}

/// The zone-map index of one materialized table: one [`RegionSummary`]
/// per 32-row region (in global region order, matching
/// [`DsmLayout`] region indices), plus a table-level rollup.
///
/// # Example
///
/// ```
/// use hipe_db::{LineitemTable, Query, ZoneMap};
/// let t = LineitemTable::generate_clustered_range(7, 0, 1024, 1024);
/// let zm = ZoneMap::build(&t);
/// assert_eq!(zm.regions(), 32);
/// // A narrow date window prunes most regions of a clustered table.
/// let q = Query::shipdate_window_permille(30);
/// let kept = (0..zm.regions()).filter(|&r| zm.region_may_match(&q, r)).count();
/// assert!(kept < zm.regions() / 4, "kept {kept}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZoneMap {
    regions: Vec<RegionSummary>,
    table: RegionSummary,
}

impl ZoneMap {
    /// Scans `table` once and summarizes every 32-row region.
    pub fn build(table: &LineitemTable) -> Self {
        let rows = table.rows();
        let n = rows.div_ceil(REGION_ROWS);
        let mut regions = Vec::with_capacity(n);
        let mut rollup = RegionSummary::EMPTY;
        for r in 0..n {
            let lo = r * REGION_ROWS;
            let hi = (lo + REGION_ROWS).min(rows);
            let mut s = RegionSummary::EMPTY;
            s.rows = hi - lo;
            for c in Column::ALL {
                let k = c.index();
                for &v in &table.column(c)[lo..hi] {
                    s.min[k] = s.min[k].min(v);
                    s.max[k] = s.max[k].max(v);
                }
            }
            rollup.absorb(&s);
            regions.push(s);
        }
        ZoneMap {
            regions,
            table: rollup,
        }
    }

    /// Number of summarized regions (= the layout's region count).
    pub fn regions(&self) -> usize {
        self.regions.len()
    }

    /// The summary of region `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region(&self, r: usize) -> &RegionSummary {
        &self.regions[r]
    }

    /// The table-level rollup (the shard-skipping summary).
    pub fn table(&self) -> &RegionSummary {
        &self.table
    }

    /// Whether region `r` can contain a match for `query`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn region_may_match(&self, query: &Query, r: usize) -> bool {
        self.regions[r].may_match(query)
    }

    /// Whether *any* region can contain a match — the rollup the serve
    /// layer uses to skip scattering a sub-query to this shard.
    pub fn table_may_match(&self, query: &Query) -> bool {
        self.table.may_match(query)
    }

    /// Rollup over the regions `layout` places in partition `p`.
    pub fn partition_summary(&self, layout: &DsmLayout, p: usize) -> RegionSummary {
        let mut s = RegionSummary::EMPTY;
        for r in layout.partition_regions(p) {
            s.absorb(&self.regions[r]);
        }
        s
    }

    /// Whether partition `p` can contain a match for `query`.
    pub fn partition_may_match(&self, query: &Query, layout: &DsmLayout, p: usize) -> bool {
        self.partition_summary(layout, p).may_match(query)
    }
}

/// Regions kept vs. dropped by one compile's pruning pass, carried on
/// the compiled plan and surfaced in the run report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Regions the emitted program actually scans.
    pub scanned: usize,
    /// Regions the zone map proved empty and the compiler dropped.
    pub pruned: usize,
}

impl PruneStats {
    /// Stats of an unpruned compile: every region scanned.
    pub fn unpruned(regions: usize) -> Self {
        PruneStats {
            scanned: regions,
            pruned: 0,
        }
    }

    /// Total regions the layout holds (scanned + pruned).
    pub fn total(&self) -> usize {
        self.scanned + self.pruned
    }

    /// Accumulates another compile's stats (e.g. across shards).
    pub fn absorb(&mut self, other: PruneStats) {
        self.scanned += other.scanned;
        self.pruned += other.pruned;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, ColumnPredicate};
    use crate::scan;

    #[test]
    fn summaries_bound_every_row() {
        let t = LineitemTable::generate(1000, 17);
        let zm = ZoneMap::build(&t);
        assert_eq!(zm.regions(), 1000usize.div_ceil(REGION_ROWS));
        for r in 0..zm.regions() {
            let s = zm.region(r);
            let lo = r * REGION_ROWS;
            let hi = (lo + REGION_ROWS).min(t.rows());
            assert_eq!(s.rows(), hi - lo);
            for c in Column::ALL {
                let col = &t.column(c)[lo..hi];
                assert_eq!(s.min(c), *col.iter().min().unwrap());
                assert_eq!(s.max(c), *col.iter().max().unwrap());
            }
        }
    }

    #[test]
    fn tail_region_counts_partial_rows() {
        let t = LineitemTable::generate(40, 3);
        let zm = ZoneMap::build(&t);
        assert_eq!(zm.regions(), 2);
        assert_eq!(zm.region(0).rows(), 32);
        assert_eq!(zm.region(1).rows(), 8);
        assert_eq!(zm.table().rows(), 40);
    }

    #[test]
    fn pruning_never_drops_a_matching_region() {
        // Soundness: a region with any reference-executor match must
        // survive every pruning decision.
        let t = LineitemTable::generate_clustered_range(9, 0, 2048, 2048);
        let zm = ZoneMap::build(&t);
        for permille in [1, 10, 30, 100, 500] {
            let q = Query::shipdate_window_permille(permille);
            let r = scan::reference(&t, &q);
            for region in 0..zm.regions() {
                let lo = region * REGION_ROWS;
                let hi = (lo + REGION_ROWS).min(t.rows());
                let has_match = (lo..hi).any(|i| r.bitmask.get(i));
                if has_match {
                    assert!(
                        zm.region_may_match(&q, region),
                        "region {region} pruned but matches at {permille} permille"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_predicates_at_region_extremes_survive() {
        // A predicate exactly at a region's min or max must keep the
        // region: Eq(min), Eq(max), Le(min), Ge(max) all may match.
        let t = LineitemTable::generate(64, 5);
        let zm = ZoneMap::build(&t);
        let s = zm.region(0);
        let c = Column::Quantity;
        for cmp in [
            CmpOp::Eq(s.min(c)),
            CmpOp::Eq(s.max(c)),
            CmpOp::Le(s.min(c)),
            CmpOp::Ge(s.max(c)),
            CmpOp::Range(s.max(c), s.max(c)),
        ] {
            let q = Query::new(vec![ColumnPredicate::new(c, cmp)], false);
            assert!(zm.region_may_match(&q, 0), "{cmp:?} wrongly pruned");
        }
        // And one past each extreme must prune.
        for cmp in [CmpOp::Lt(s.min(c)), CmpOp::Gt(s.max(c))] {
            let q = Query::new(vec![ColumnPredicate::new(c, cmp)], false);
            assert!(!zm.region_may_match(&q, 0), "{cmp:?} wrongly kept");
        }
    }

    #[test]
    fn table_rollup_skips_out_of_range_shards() {
        // A shard holding only late rows of a clustered table can
        // prove an early date window empty.
        let total = 4096;
        let late = LineitemTable::generate_clustered_range(11, total / 2, total / 2, total);
        let zm = ZoneMap::build(&late);
        let early_window = Query::new(
            vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(0, 100))],
            false,
        );
        assert!(!zm.table_may_match(&early_window));
        assert!(zm.table_may_match(&Query::shipdate_window_permille(1000)));
    }

    #[test]
    fn partition_rollup_merges_owned_regions() {
        let t = LineitemTable::generate(2048, 13);
        let zm = ZoneMap::build(&t);
        let layout = DsmLayout::partitioned(0, t.rows(), 4);
        let mut rows = 0;
        for p in 0..4 {
            let s = zm.partition_summary(&layout, p);
            rows += s.rows();
            for c in Column::ALL {
                assert!(s.min(c) >= zm.table().min(c));
                assert!(s.max(c) <= zm.table().max(c));
            }
            assert!(zm.partition_may_match(&Query::q6(), &layout, p));
        }
        assert_eq!(rows, t.rows());
    }

    #[test]
    fn empty_summary_never_matches() {
        let s = RegionSummary::EMPTY;
        assert!(!s.may_match(&Query::q6()));
    }

    #[test]
    fn prune_stats_arithmetic() {
        let mut a = PruneStats::unpruned(10);
        assert_eq!(a.total(), 10);
        a.absorb(PruneStats {
            scanned: 3,
            pruned: 7,
        });
        assert_eq!(a.scanned, 13);
        assert_eq!(a.pruned, 7);
        assert_eq!(a.total(), 20);
    }

    #[test]
    fn uniform_tables_rarely_prune_midrange_queries() {
        // The motivating contrast: uniform regions span the whole
        // domain, so a mid-domain window prunes nothing.
        let t = LineitemTable::generate(2048, 19);
        let zm = ZoneMap::build(&t);
        let q = Query::shipdate_window_permille(100);
        let kept = (0..zm.regions())
            .filter(|&r| zm.region_may_match(&q, r))
            .count();
        assert_eq!(kept, zm.regions());
    }
}
