//! Edge-case tests for the pure query logic: comparison evaluation and
//! bitmask arithmetic at their boundaries.

use hipe_db::{Bitmask, CmpOp};

#[test]
fn cmp_ops_at_extremes() {
    for v in [i64::MIN, -1, 0, 1, i64::MAX] {
        assert!(CmpOp::Le(i64::MAX).eval(v), "everything <= MAX");
        assert!(CmpOp::Ge(i64::MIN).eval(v), "everything >= MIN");
        assert!(CmpOp::Range(i64::MIN, i64::MAX).eval(v));
        assert!(CmpOp::Eq(v).eval(v));
    }
    assert!(!CmpOp::Lt(i64::MIN).eval(i64::MIN), "nothing below MIN");
    assert!(!CmpOp::Gt(i64::MAX).eval(i64::MAX), "nothing above MAX");
}

#[test]
fn cmp_boundaries_are_exact() {
    // Strict vs inclusive at the pivot.
    assert!(!CmpOp::Lt(7).eval(7) && CmpOp::Le(7).eval(7));
    assert!(!CmpOp::Gt(7).eval(7) && CmpOp::Ge(7).eval(7));
    // Range is inclusive at both ends and can be a point.
    assert!(CmpOp::Range(7, 7).eval(7));
    assert!(!CmpOp::Range(7, 7).eval(6) && !CmpOp::Range(7, 7).eval(8));
    // Inverted range matches nothing.
    for v in [-1, 0, 5, 100] {
        assert!(!CmpOp::Range(8, 7).eval(v));
    }
}

#[test]
fn cmp_negative_pivots() {
    assert!(CmpOp::Lt(-5).eval(-6));
    assert!(!CmpOp::Lt(-5).eval(-5));
    assert!(CmpOp::Range(-10, -2).eval(-10) && CmpOp::Range(-10, -2).eval(-2));
    assert!(!CmpOp::Range(-10, -2).eval(-1));
}

#[test]
fn empty_bitmask_is_consistent() {
    let m = Bitmask::zeros(0);
    assert!(m.is_empty());
    assert_eq!(m.len(), 0);
    assert_eq!(m.count_ones(), 0);
    assert_eq!(m.iter_ones().count(), 0);
    assert!(!m.any_in(0, 0));
    let ones = Bitmask::ones(0);
    assert_eq!(ones.count_ones(), 0);
    assert_eq!(m, ones);
}

#[test]
fn word_boundary_lengths_trim_exactly() {
    for len in [1, 63, 64, 65, 127, 128, 129] {
        let m = Bitmask::ones(len);
        assert_eq!(m.count_ones(), len, "ones({len}) miscounted");
        assert!(m.get(len - 1));
        // The trimmed tail must not resurface through AND.
        let mut z = Bitmask::zeros(len);
        z.and_with(&m);
        assert_eq!(z.count_ones(), 0);
    }
}

#[test]
fn assign_round_trips_every_position_near_boundaries() {
    let len = 130;
    let mut m = Bitmask::zeros(len);
    for i in [0, 62, 63, 64, 65, 127, 128, 129] {
        m.assign(i, true);
        assert!(m.get(i));
        m.assign(i, false);
        assert!(!m.get(i));
    }
    assert_eq!(m.count_ones(), 0);
}

#[test]
fn iter_ones_matches_get_exactly() {
    let m: Bitmask = (0..200).map(|i| i % 7 == 3).collect();
    let from_iter: Vec<usize> = m.iter_ones().collect();
    let from_get: Vec<usize> = (0..200).filter(|&i| m.get(i)).collect();
    assert_eq!(from_iter, from_get);
    assert_eq!(m.count_ones(), from_get.len());
}

#[test]
fn any_in_boundaries() {
    let mut m = Bitmask::zeros(128);
    m.set(64);
    assert!(m.any_in(64, 65), "closed-open range must see its start");
    assert!(!m.any_in(65, 128));
    assert!(!m.any_in(0, 64), "end is exclusive");
    assert!(!m.any_in(64, 64), "empty range never matches");
}

#[test]
fn from_iterator_handles_all_false_and_all_true() {
    let f: Bitmask = std::iter::repeat_n(false, 100).collect();
    let t: Bitmask = std::iter::repeat_n(true, 100).collect();
    assert_eq!(f.count_ones(), 0);
    assert_eq!(t.count_ones(), 100);
    assert_eq!(t, Bitmask::ones(100));
}
