//! Physical address decomposition.
//!
//! The HMC interleaves consecutive row-buffer-sized blocks across
//! vaults, and consecutive vault-sweeps across banks, so that a
//! streaming scan naturally engages all 256 banks. This mirrors the
//! low-interleave mapping SiNUCA uses for HMC and is what gives the
//! paper's 256 B operations their vault-parallelism.

use crate::config::HmcConfig;

/// The (vault, bank, row) coordinates of a physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Vault index, `0..vaults`.
    pub vault: usize,
    /// Bank index within the vault, `0..banks_per_vault`.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

/// Maps physical addresses to vault/bank/row coordinates.
///
/// # Example
///
/// ```
/// use hipe_hmc::{AddressMapping, HmcConfig};
/// let m = AddressMapping::new(&HmcConfig::paper());
/// let a = m.locate(0);
/// let b = m.locate(256);
/// // Consecutive 256-byte blocks land in consecutive vaults.
/// assert_eq!(a.vault, 0);
/// assert_eq!(b.vault, 1);
/// assert_eq!(a.bank, b.bank);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AddressMapping {
    block: u64,
    vaults: u64,
    banks: u64,
}

impl AddressMapping {
    /// Creates the mapping for a cube configuration.
    pub fn new(cfg: &HmcConfig) -> Self {
        AddressMapping {
            block: cfg.row_buffer_bytes,
            vaults: cfg.vaults as u64,
            banks: cfg.banks_per_vault as u64,
        }
    }

    /// Decomposes an address into its cube coordinates.
    pub fn locate(&self, addr: u64) -> Location {
        let blk = addr / self.block;
        Location {
            vault: (blk % self.vaults) as usize,
            bank: ((blk / self.vaults) % self.banks) as usize,
            row: blk / (self.vaults * self.banks),
        }
    }

    /// The interleaving granularity in bytes (row-buffer size).
    pub fn block_bytes(&self) -> u64 {
        self.block
    }

    /// Splits a byte range `[addr, addr+len)` into per-block segments,
    /// each fully contained in one row buffer.
    ///
    /// DRAM can only burst within a row; accesses crossing a 256 B
    /// boundary become multiple bank requests.
    pub fn split(&self, addr: u64, len: u64) -> SplitBlocks {
        SplitBlocks {
            block: self.block,
            cur: addr,
            end: addr + len,
        }
    }
}

/// Iterator over `(addr, len)` segments of one row buffer each.
/// Produced by [`AddressMapping::split`].
#[derive(Debug, Clone)]
pub struct SplitBlocks {
    block: u64,
    cur: u64,
    end: u64,
}

impl Iterator for SplitBlocks {
    type Item = (u64, u64);

    fn next(&mut self) -> Option<(u64, u64)> {
        if self.cur >= self.end {
            return None;
        }
        let block_end = (self.cur / self.block + 1) * self.block;
        let seg_end = block_end.min(self.end);
        let item = (self.cur, seg_end - self.cur);
        self.cur = seg_end;
        Some(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> AddressMapping {
        AddressMapping::new(&HmcConfig::paper())
    }

    #[test]
    fn sweeps_vaults_then_banks() {
        let m = mapping();
        // 32 consecutive blocks cover all vaults in bank 0.
        for i in 0..32u64 {
            let loc = m.locate(i * 256);
            assert_eq!(loc.vault, i as usize);
            assert_eq!(loc.bank, 0);
            assert_eq!(loc.row, 0);
        }
        // Block 32 wraps to vault 0, bank 1.
        let loc = m.locate(32 * 256);
        assert_eq!(loc.vault, 0);
        assert_eq!(loc.bank, 1);
    }

    #[test]
    fn row_increments_after_full_sweep() {
        let m = mapping();
        let loc = m.locate(256 * 32 * 8);
        assert_eq!((loc.vault, loc.bank, loc.row), (0, 0, 1));
    }

    #[test]
    fn same_block_same_location() {
        let m = mapping();
        assert_eq!(m.locate(1000), m.locate(1023));
    }

    #[test]
    fn split_respects_row_boundaries() {
        let m = mapping();
        let segs: Vec<_> = m.split(200, 256).collect();
        assert_eq!(segs, vec![(200, 56), (256, 200)]);
        let total: u64 = segs.iter().map(|(_, l)| l).sum();
        assert_eq!(total, 256);
    }

    #[test]
    fn split_aligned_is_single_segment() {
        let m = mapping();
        let segs: Vec<_> = m.split(512, 256).collect();
        assert_eq!(segs, vec![(512, 256)]);
    }

    #[test]
    fn split_empty_range() {
        let m = mapping();
        assert_eq!(m.split(512, 0).count(), 0);
    }
}
