//! HMC configuration parameters (paper Table I).

use hipe_sim::{ClockDomain, Cycle, Freq};

/// DRAM timing parameters in native DRAM cycles.
///
/// The paper's Table I gives `CAS, RP, RCD, RAS, CWD = 9-9-9-24-7` at
/// 166 MHz for the HMC's internal DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTimings {
    /// Column access strobe latency (read).
    pub cas: Cycle,
    /// Row precharge.
    pub rp: Cycle,
    /// Row-to-column delay (activate).
    pub rcd: Cycle,
    /// Row active time (minimum activate-to-precharge).
    pub ras: Cycle,
    /// Column write delay.
    pub cwd: Cycle,
}

impl DramTimings {
    /// The paper's 9-9-9-24-7 timings.
    pub fn paper() -> Self {
        DramTimings {
            cas: 9,
            rp: 9,
            rcd: 9,
            ras: 24,
            cwd: 7,
        }
    }
}

impl Default for DramTimings {
    fn default() -> Self {
        DramTimings::paper()
    }
}

/// Full configuration of the HMC cube.
///
/// # Example
///
/// ```
/// use hipe_hmc::HmcConfig;
/// let cfg = HmcConfig::paper();
/// assert_eq!(cfg.vaults, 32);
/// assert_eq!(cfg.banks_per_vault, 8);
/// assert_eq!(cfg.row_buffer_bytes, 256);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HmcConfig {
    /// Number of vaults (32 in HMC v2.1).
    pub vaults: usize,
    /// DRAM banks per vault (8).
    pub banks_per_vault: usize,
    /// Row buffer size in bytes (256).
    pub row_buffer_bytes: u64,
    /// DRAM core frequency.
    pub dram_freq: Freq,
    /// Reference CPU frequency used for cycle conversion.
    pub cpu_freq: Freq,
    /// DRAM timing parameters (native DRAM cycles).
    pub timings: DramTimings,
    /// Number of external serial links (4).
    pub links: usize,
    /// Link frequency (8 GHz).
    pub link_freq: Freq,
    /// Effective payload bytes per link per link-cycle.
    ///
    /// HMC gen2 links are 16-lane full-duplex; after 8b/10b-style
    /// overhead and flow control we model 1 payload byte per link-cycle
    /// per direction, i.e. 8 GB/s per link, 32 GB/s aggregate each way —
    /// in line with published effective HMC bandwidth.
    pub link_bytes_per_cycle: u64,
    /// Fixed one-way link + SerDes + controller latency, CPU cycles.
    pub link_latency: Cycle,
    /// Request/response packet header+tail overhead, bytes (16 B flits).
    pub packet_header_bytes: u64,
    /// Data burst width in bytes at the vault (8 B per Table I).
    pub burst_bytes: u64,
    /// Latency of the per-vault functional unit, CPU cycles (1).
    pub vault_fu_latency: Cycle,
    /// Maximum operand size of a native HMC/logic-layer operation.
    pub max_op_bytes: u64,
    /// Per-vault request queue depth (outstanding bank requests).
    pub vault_queue: usize,
}

impl HmcConfig {
    /// The configuration of Table I of the paper.
    pub fn paper() -> Self {
        HmcConfig {
            vaults: 32,
            banks_per_vault: 8,
            row_buffer_bytes: 256,
            dram_freq: Freq::mhz(166),
            cpu_freq: Freq::mhz(2000),
            timings: DramTimings::paper(),
            links: 4,
            link_freq: Freq::ghz(8),
            link_bytes_per_cycle: 1,
            link_latency: 20,
            packet_header_bytes: 16,
            burst_bytes: 8,
            vault_fu_latency: 1,
            max_op_bytes: 256,
            vault_queue: 16,
        }
    }

    /// Clock-domain converter from DRAM to CPU cycles.
    pub fn dram_domain(&self) -> ClockDomain {
        ClockDomain::new(self.dram_freq, self.cpu_freq)
    }

    /// Clock-domain converter from link to CPU cycles.
    pub fn link_domain(&self) -> ClockDomain {
        ClockDomain::new(self.link_freq, self.cpu_freq)
    }

    /// Total number of banks in the cube.
    pub fn total_banks(&self) -> usize {
        self.vaults * self.banks_per_vault
    }

    /// Closed-page read latency of one row-buffer-sized access, in CPU
    /// cycles: activate (tRCD) + column read (tCL) + data burst.
    pub fn closed_page_read_latency(&self, bytes: u64) -> Cycle {
        let d = self.dram_domain();
        let bursts = div_ceil(bytes.min(self.row_buffer_bytes), self.burst_bytes);
        // Data is transferred at a 2:1 core-to-bus frequency ratio, i.e.
        // two bursts per DRAM core cycle.
        d.to_cpu(self.timings.rcd + self.timings.cas + div_ceil(bursts, 2))
    }

    /// Closed-page write latency (tRCD + tCWD + burst), CPU cycles.
    pub fn closed_page_write_latency(&self, bytes: u64) -> Cycle {
        let d = self.dram_domain();
        let bursts = div_ceil(bytes.min(self.row_buffer_bytes), self.burst_bytes);
        d.to_cpu(self.timings.rcd + self.timings.cwd + div_ceil(bursts, 2))
    }

    /// Minimum bank cycle time between two activates of the same bank
    /// (tRAS + tRP), CPU cycles. This is the bank occupancy of one
    /// closed-page access.
    pub fn bank_cycle_time(&self) -> Cycle {
        let d = self.dram_domain();
        d.to_cpu(self.timings.ras + self.timings.rp)
    }

    /// Aggregate link payload bandwidth in bytes per CPU cycle
    /// (numerator, denominator).
    pub fn link_rate(&self) -> (u64, u64) {
        // bytes per CPU cycle = links * bytes_per_link_cycle * f_link/f_cpu
        let num = self.links as u64 * self.link_bytes_per_cycle * self.link_freq.as_mhz();
        let den = self.cpu_freq.as_mhz();
        (num, den)
    }
}

impl Default for HmcConfig {
    fn default() -> Self {
        HmcConfig::paper()
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry() {
        let c = HmcConfig::paper();
        assert_eq!(c.total_banks(), 256);
        assert_eq!(c.timings, DramTimings::paper());
    }

    #[test]
    fn closed_page_latency_is_hundreds_of_cpu_cycles() {
        let c = HmcConfig::paper();
        let lat = c.closed_page_read_latency(256);
        // tRCD + tCL = 18 DRAM cycles ~ 217 CPU cycles, plus a 16-DRAM-
        // cycle burst for 256 B.
        assert!(lat > 200 && lat < 450, "latency {lat}");
    }

    #[test]
    fn bank_cycle_time_close_to_400_cpu_cycles() {
        let c = HmcConfig::paper();
        let t = c.bank_cycle_time();
        // (24 + 9) DRAM cycles at ~12 CPU cycles each.
        assert!(t > 350 && t < 450, "bank cycle {t}");
    }

    #[test]
    fn link_rate_is_16_bytes_per_cpu_cycle() {
        let c = HmcConfig::paper();
        let (num, den) = c.link_rate();
        assert_eq!(num / den, 16);
    }

    #[test]
    fn small_access_still_pays_activate() {
        let c = HmcConfig::paper();
        let small = c.closed_page_read_latency(16);
        let big = c.closed_page_read_latency(256);
        assert!(small <= big);
        // The fixed activate+CAS dominates: a 16 B read still costs more
        // than half of a full 256 B read.
        assert!(small * 2 >= big);
    }
}
