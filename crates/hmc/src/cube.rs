//! The assembled cube: links + vaults + functional storage + energy.

use crate::address::AddressMapping;
use crate::config::HmcConfig;
use crate::energy::{EnergyBreakdown, EnergyModel};
use crate::vault::Vault;
use hipe_sim::{Cycle, ThroughputPipe};

/// What kind of access the host performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Plain read: data crosses the links to the host.
    Read,
    /// Plain write: data crosses the links to the cube.
    Write,
    /// An HMC-ISA operation (e.g. load-compare): executed by the vault
    /// functional unit; only a small result crosses the links back.
    PimOp {
        /// Bytes of the result carried in the response packet.
        result_bytes: u64,
    },
}

/// Timing outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Cycle at which the requester observes completion.
    pub complete: Cycle,
}

/// Aggregate activity counters of the cube.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HmcStats {
    /// Row activations (== closed-page bank accesses).
    pub activations: u64,
    /// Bytes read from DRAM cores.
    pub bytes_read: u64,
    /// Bytes written to DRAM cores.
    pub bytes_written: u64,
    /// Bytes that crossed the links in either direction (incl. headers).
    pub link_bytes: u64,
    /// Vault functional-unit operations executed.
    pub fu_ops: u64,
}

impl HmcStats {
    /// Adds the counters into a [`Metrics`](hipe_trace::Metrics)
    /// registry under `{prefix}hmc.*`.
    pub fn export_metrics(&self, prefix: &str, metrics: &mut hipe_trace::Metrics) {
        metrics.counter_add(&format!("{prefix}hmc.activations"), self.activations);
        metrics.counter_add(&format!("{prefix}hmc.bytes_read"), self.bytes_read);
        metrics.counter_add(&format!("{prefix}hmc.bytes_written"), self.bytes_written);
        metrics.counter_add(&format!("{prefix}hmc.link_bytes"), self.link_bytes);
        metrics.counter_add(&format!("{prefix}hmc.fu_ops"), self.fu_ops);
    }
}

/// Per-vault activity counters: the vault-group accounting behind the
/// partitioned execution reports (which vault groups a run actually
/// worked, and how evenly).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VaultActivity {
    /// Row activations in this vault's banks.
    pub activations: u64,
    /// Bytes read from this vault's DRAM cores.
    pub bytes_read: u64,
    /// Bytes written to this vault's DRAM cores.
    pub bytes_written: u64,
}

impl VaultActivity {
    /// Adds the counters into a [`Metrics`](hipe_trace::Metrics)
    /// registry under `{prefix}vault{v}.*`.
    pub fn export_metrics(&self, prefix: &str, v: usize, metrics: &mut hipe_trace::Metrics) {
        metrics.counter_add(&format!("{prefix}vault{v}.activations"), self.activations);
        metrics.counter_add(&format!("{prefix}vault{v}.bytes_read"), self.bytes_read);
        metrics.counter_add(
            &format!("{prefix}vault{v}.bytes_written"),
            self.bytes_written,
        );
    }
}

impl std::ops::AddAssign for VaultActivity {
    fn add_assign(&mut self, other: VaultActivity) {
        self.activations += other.activations;
        self.bytes_read += other.bytes_read;
        self.bytes_written += other.bytes_written;
    }
}

/// The Hybrid Memory Cube: timing, functional storage and energy.
///
/// The cube exposes three request paths:
///
/// * [`access`](Self::access) — host requests that traverse the serial
///   links (plain reads/writes from the cache hierarchy, or HMC-ISA
///   PIM operations that return only a result);
/// * [`internal_read`](Self::internal_read) /
///   [`internal_write`](Self::internal_write) — logic-layer requests
///   issued by the HIVE/HIPE engine, which sit *inside* the cube and
///   do not use the links;
/// * [`read_bytes`](Self::read_bytes) / [`write_bytes`](Self::write_bytes)
///   — zero-time functional accesses to the memory image (used to set
///   up workloads and by engines to compute real values).
///
/// # Example
///
/// ```
/// use hipe_hmc::{AccessKind, Hmc, HmcConfig};
/// let mut hmc = Hmc::new(HmcConfig::paper(), 1 << 16);
/// let r1 = hmc.access(0, 0, 64, AccessKind::Read);
/// let r2 = hmc.access(0, 256, 64, AccessKind::Read);
/// // Different vaults: the bank phases overlap, so the second read
/// // trails the first only by link serialization, not a bank cycle.
/// assert!(r2.complete - r1.complete < 20);
/// ```
#[derive(Debug)]
pub struct Hmc {
    cfg: HmcConfig,
    mapping: AddressMapping,
    vaults: Vec<Vault>,
    /// Host -> cube direction (requests, write payloads).
    req_link: ThroughputPipe,
    /// Cube -> host direction (responses, read payloads).
    rsp_link: ThroughputPipe,
    mem: Vec<u8>,
    stats: HmcStats,
    /// Per-vault accounting (run-scoped, reset with the timing state).
    vault_activity: Vec<VaultActivity>,
    energy_model: EnergyModel,
    energy: EnergyBreakdown,
}

impl Hmc {
    /// Creates a cube with `image_bytes` of functional storage.
    ///
    /// The timing model covers the full 8 GB address space; only the
    /// first `image_bytes` are backed by real data (enough to hold the
    /// workload tables — the paper's Q6 working set is ~1 GB at SF 1
    /// and proportionally less at reduced scale).
    pub fn new(cfg: HmcConfig, image_bytes: usize) -> Self {
        let (num, den) = cfg.link_rate();
        let vaults = (0..cfg.vaults).map(|_| Vault::new(&cfg)).collect();
        Hmc {
            mapping: AddressMapping::new(&cfg),
            vaults,
            req_link: ThroughputPipe::new(num, den, cfg.link_latency),
            rsp_link: ThroughputPipe::new(num, den, cfg.link_latency),
            mem: vec![0; image_bytes],
            stats: HmcStats::default(),
            vault_activity: vec![VaultActivity::default(); cfg.vaults],
            energy_model: EnergyModel::paper(),
            energy: EnergyBreakdown::default(),
            cfg,
        }
    }

    /// The cube configuration.
    pub fn config(&self) -> &HmcConfig {
        &self.cfg
    }

    /// The address mapping in use.
    pub fn mapping(&self) -> &AddressMapping {
        &self.mapping
    }

    /// Performs a host-side access that traverses the serial links.
    ///
    /// Requests larger than one row buffer are split into per-row bank
    /// requests that proceed in parallel across vaults/banks; the
    /// response completes when the last fragment arrives.
    pub fn access(&mut self, cycle: Cycle, addr: u64, bytes: u64, kind: AccessKind) -> Response {
        let header = self.cfg.packet_header_bytes;
        // Request packet: header plus write payload (write) or just the
        // command (read / PIM op carries a 16 B immediate in-header).
        let req_bytes = match kind {
            AccessKind::Write => header + bytes,
            AccessKind::Read | AccessKind::PimOp { .. } => header,
        };
        let at_cube = self.req_link.transfer(cycle, req_bytes);
        self.stats.link_bytes += req_bytes;
        self.energy.add_link(&self.energy_model, req_bytes);

        // Bank phase.
        let mut done = at_cube;
        let write = matches!(kind, AccessKind::Write);
        let mapping = self.mapping;
        for (a, l) in mapping.split(addr, bytes) {
            let d = self.bank_access(at_cube, a, l, write);
            done = done.max(d);
        }

        // PIM operation executes in the vault functional unit after the
        // data is out of the bank.
        if let AccessKind::PimOp { .. } = kind {
            let loc = self.mapping.locate(addr);
            done = self.vaults[loc.vault].execute_fu(done, self.cfg.vault_fu_latency);
            self.stats.fu_ops += 1;
            self.energy.add_logic_ops(&self.energy_model, 1);
        }

        // Response packet.
        let rsp_bytes = match kind {
            AccessKind::Read => header + bytes,
            AccessKind::Write => header,
            AccessKind::PimOp { result_bytes } => header + result_bytes,
        };
        let at_host = self.rsp_link.transfer(done, rsp_bytes);
        self.stats.link_bytes += rsp_bytes;
        self.energy.add_link(&self.energy_model, rsp_bytes);
        Response { complete: at_host }
    }

    /// Transfers a host-to-cube packet of `bytes` over the request link
    /// without touching DRAM; returns the cycle it arrives at the cube.
    ///
    /// Used for logic-layer instruction dispatch: the packet terminates
    /// at the logic-layer engine, so no bank is involved.
    pub fn link_request(&mut self, cycle: Cycle, bytes: u64) -> Cycle {
        self.stats.link_bytes += bytes;
        self.energy.add_link(&self.energy_model, bytes);
        self.req_link.transfer(cycle, bytes)
    }

    /// Transfers a cube-to-host packet of `bytes` over the response link
    /// without touching DRAM; returns the cycle it arrives at the host.
    ///
    /// Used for the logic-layer engine's unlock acknowledgement.
    pub fn link_response(&mut self, cycle: Cycle, bytes: u64) -> Cycle {
        self.stats.link_bytes += bytes;
        self.energy.add_link(&self.energy_model, bytes);
        self.rsp_link.transfer(cycle, bytes)
    }

    /// Performs a logic-layer access (HIVE/HIPE engine): touches the
    /// banks directly, bypassing the links.
    pub fn internal_read(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        let mapping = self.mapping;
        let mut done = cycle;
        for (a, l) in mapping.split(addr, bytes) {
            done = done.max(self.bank_access(cycle, a, l, false));
        }
        done
    }

    /// Logic-layer write path; see [`internal_read`](Self::internal_read).
    pub fn internal_write(&mut self, cycle: Cycle, addr: u64, bytes: u64) -> Cycle {
        let mapping = self.mapping;
        let mut done = cycle;
        for (a, l) in mapping.split(addr, bytes) {
            done = done.max(self.bank_access(cycle, a, l, true));
        }
        done
    }

    fn bank_access(&mut self, cycle: Cycle, addr: u64, bytes: u64, write: bool) -> Cycle {
        let loc = self.mapping.locate(addr);
        let done = self.vaults[loc.vault].access(cycle, loc.bank, bytes, write);
        self.stats.activations += 1;
        self.vault_activity[loc.vault].activations += 1;
        self.energy.add_activate(&self.energy_model, 1);
        if write {
            self.stats.bytes_written += bytes;
            self.vault_activity[loc.vault].bytes_written += bytes;
            self.energy.add_dram_write(&self.energy_model, bytes);
        } else {
            self.stats.bytes_read += bytes;
            self.vault_activity[loc.vault].bytes_read += bytes;
            self.energy.add_dram_read(&self.energy_model, bytes);
        }
        done
    }

    /// Resets every run-scoped timing and accounting structure —
    /// vaults, link pipes, stats, energy — while keeping the memory
    /// image intact.
    ///
    /// This is the cube half of a warm session's reset protocol: after
    /// the call, the cube times and meters accesses exactly like a
    /// freshly constructed one, but the (expensive) table image does
    /// not have to be re-materialized. Callers that reuse output areas
    /// (e.g. scan mask buffers) must clear those bytes themselves via
    /// [`write_bytes`](Self::write_bytes).
    pub fn reset_run_state(&mut self) {
        let (num, den) = self.cfg.link_rate();
        self.vaults = (0..self.cfg.vaults)
            .map(|_| Vault::new(&self.cfg))
            .collect();
        self.req_link = ThroughputPipe::new(num, den, self.cfg.link_latency);
        self.rsp_link = ThroughputPipe::new(num, den, self.cfg.link_latency);
        self.stats = HmcStats::default();
        // The per-vault(-group) accounting the engine cluster reads is
        // run-scoped like the aggregate stats: a warm run must start
        // from the same zeroed meters a cold cube has, or warm != cold
        // under partitioned execution.
        self.vault_activity = vec![VaultActivity::default(); self.cfg.vaults];
        self.energy = EnergyBreakdown::default();
    }

    /// Charges one logic-layer ALU operation to the energy account
    /// (used by the HIVE/HIPE engine models).
    pub fn charge_logic_op(&mut self) {
        self.stats.fu_ops += 1;
        self.energy.add_logic_ops(&self.energy_model, 1);
    }

    /// Charges `n` processor-side cache accesses to the energy account.
    pub fn charge_cache_accesses(&mut self, n: u64) {
        self.energy.add_cache_accesses(&self.energy_model, n);
    }

    /// Finalizes background energy for a run that lasted `cycles`.
    pub fn finish(&mut self, cycles: Cycle) {
        self.energy.add_background(&self.energy_model, cycles);
    }

    /// Functional read of the memory image.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the image.
    pub fn read_bytes(&self, addr: u64, len: usize) -> &[u8] {
        &self.mem[addr as usize..addr as usize + len]
    }

    /// Functional write to the memory image.
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the image.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        self.mem[addr as usize..addr as usize + data.len()].copy_from_slice(data);
    }

    /// Mutable functional view of `len` image bytes at `addr` — the
    /// zero-copy write path: producers (table materialization, engine
    /// stores) serialize straight into the cube's backing memory
    /// instead of staging through a scratch buffer and
    /// [`write_bytes`](Self::write_bytes).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the image.
    pub fn bytes_mut(&mut self, addr: u64, len: usize) -> &mut [u8] {
        &mut self.mem[addr as usize..addr as usize + len]
    }

    /// Functional in-place zeroing of `len` image bytes at `addr`
    /// (no scratch buffer, unlike [`write_bytes`](Self::write_bytes)).
    ///
    /// # Panics
    ///
    /// Panics if the range is outside the image.
    pub fn zero_bytes(&mut self, addr: u64, len: usize) {
        self.mem[addr as usize..addr as usize + len].fill(0);
    }

    /// Functional read of a little-endian `u64` at `addr`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        b.copy_from_slice(self.read_bytes(addr, 8));
        u64::from_le_bytes(b)
    }

    /// Functional write of a little-endian `u64` at `addr`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Size of the functional image in bytes.
    pub fn image_len(&self) -> usize {
        self.mem.len()
    }

    /// Activity counters.
    pub fn stats(&self) -> HmcStats {
        self.stats
    }

    /// Per-vault activity counters (one entry per vault).
    pub fn vault_activity(&self) -> &[VaultActivity] {
        &self.vault_activity
    }

    /// Per-vault-group activity: folds the per-vault counters into
    /// `groups` equally sized contiguous vault groups — the partition
    /// view of the cube.
    ///
    /// # Panics
    ///
    /// Panics unless `groups` is non-zero and divides the vault count.
    pub fn group_activity(&self, groups: usize) -> Vec<VaultActivity> {
        assert!(
            groups > 0 && self.cfg.vaults.is_multiple_of(groups),
            "{groups} groups do not divide {} vaults",
            self.cfg.vaults
        );
        let per = self.cfg.vaults / groups;
        self.vault_activity
            .chunks(per)
            .map(|chunk| {
                let mut sum = VaultActivity::default();
                for &v in chunk {
                    sum += v;
                }
                sum
            })
            .collect()
    }

    /// Energy accumulated so far.
    pub fn energy(&self) -> EnergyBreakdown {
        self.energy
    }

    /// The energy constants in use.
    pub fn energy_model(&self) -> &EnergyModel {
        &self.energy_model
    }

    /// Total bank busy cycles across the cube (utilization diagnostics).
    pub fn bank_busy_cycles(&self) -> Cycle {
        self.vaults.iter().map(Vault::bank_busy_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube() -> Hmc {
        Hmc::new(HmcConfig::paper(), 1 << 20)
    }

    #[test]
    fn read_latency_includes_links_and_bank() {
        let cfg = HmcConfig::paper();
        let mut h = cube();
        let r = h.access(0, 0, 64, AccessKind::Read);
        // At least one link traversal each way plus the bank access.
        assert!(r.complete >= 2 * cfg.link_latency + cfg.closed_page_read_latency(64));
    }

    #[test]
    fn streaming_reads_engage_all_vaults() {
        let mut h = cube();
        // 64 blocks of 256 B: two sweeps over 32 vaults.
        let mut last = 0;
        for i in 0..64u64 {
            last = h.access(0, i * 256, 256, AccessKind::Read).complete;
        }
        // If the vaults did not overlap this would take 64 bank cycles
        // (~25k cycles); with interleaving it is bounded by two bank
        // rounds plus link serialization of 64 responses.
        assert!(last < 5_000, "streaming took {last}");
        assert_eq!(h.stats().activations, 64);
    }

    #[test]
    fn pim_op_moves_less_link_traffic_than_read() {
        let mut plain = cube();
        let mut pim = cube();
        plain.access(0, 0, 256, AccessKind::Read);
        pim.access(0, 0, 256, AccessKind::PimOp { result_bytes: 16 });
        assert!(pim.stats().link_bytes < plain.stats().link_bytes);
        assert_eq!(pim.stats().fu_ops, 1);
        // Both touch the same DRAM bytes.
        assert_eq!(pim.stats().bytes_read, plain.stats().bytes_read);
    }

    #[test]
    fn internal_access_bypasses_links() {
        let mut h = cube();
        let done = h.internal_read(0, 0, 256);
        assert_eq!(h.stats().link_bytes, 0);
        assert_eq!(done, h.config().closed_page_read_latency(256));
    }

    #[test]
    fn unaligned_access_splits_rows() {
        let mut h = cube();
        h.internal_read(0, 128, 256); // straddles two rows
        assert_eq!(h.stats().activations, 2);
    }

    #[test]
    fn functional_storage_round_trips() {
        let mut h = cube();
        h.write_u64(0x100, 0xDEAD_BEEF_0BAD_F00D);
        assert_eq!(h.read_u64(0x100), 0xDEAD_BEEF_0BAD_F00D);
    }

    #[test]
    fn write_energy_differs_from_read() {
        let mut h = cube();
        h.internal_write(0, 0, 256);
        let wr = h.energy();
        let mut h2 = cube();
        h2.internal_read(0, 0, 256);
        let rd = h2.energy();
        assert!(wr.dram_pj() > rd.dram_pj());
    }

    #[test]
    fn zero_bytes_clears_in_place() {
        let mut h = cube();
        h.write_u64(0x100, 77);
        h.write_u64(0x108, 88);
        h.zero_bytes(0x100, 8);
        assert_eq!(h.read_u64(0x100), 0);
        assert_eq!(h.read_u64(0x108), 88);
    }

    #[test]
    fn bytes_mut_writes_through_to_the_image() {
        let mut h = cube();
        h.bytes_mut(0x40, 8).copy_from_slice(&99u64.to_le_bytes());
        assert_eq!(h.read_u64(0x40), 99);
        assert_eq!(h.read_bytes(0x40, 8), 99u64.to_le_bytes());
    }

    #[test]
    fn reset_run_state_keeps_memory_and_zeroes_meters() {
        let mut h = cube();
        h.write_u64(0x80, 42);
        h.access(0, 0, 256, AccessKind::Read);
        h.finish(1000);
        assert!(h.stats().link_bytes > 0);
        h.reset_run_state();
        // The image survives; timing, stats and energy are cold again.
        assert_eq!(h.read_u64(0x80), 42);
        assert_eq!(h.stats(), HmcStats::default());
        assert_eq!(h.energy().total_pj(), 0.0);
        let mut cold = cube();
        cold.write_u64(0x80, 42);
        assert_eq!(
            h.access(0, 0, 256, AccessKind::Read),
            cold.access(0, 0, 256, AccessKind::Read)
        );
    }

    #[test]
    fn vault_activity_follows_the_interleave() {
        let mut h = cube();
        // Blocks 0 and 1 are vaults 0 and 1; block 32 wraps to vault 0.
        h.internal_read(0, 0, 256);
        h.internal_read(0, 256, 256);
        h.internal_write(0, 32 * 256, 256);
        let v = h.vault_activity();
        assert_eq!(v[0].activations, 2);
        assert_eq!(v[0].bytes_read, 256);
        assert_eq!(v[0].bytes_written, 256);
        assert_eq!(v[1].activations, 1);
        assert_eq!(v[2], VaultActivity::default());
        // The per-vault counters partition the aggregate ones.
        let total: u64 = v.iter().map(|a| a.activations).sum();
        assert_eq!(total, h.stats().activations);
    }

    #[test]
    fn group_activity_folds_vault_groups() {
        let mut h = cube();
        h.internal_read(0, 0, 256); // vault 0 -> group 0 of 4
        h.internal_read(0, 9 * 256, 256); // vault 9 -> group 1 of 4
        let groups = h.group_activity(4);
        assert_eq!(groups.len(), 4);
        assert_eq!(groups[0].bytes_read, 256);
        assert_eq!(groups[1].bytes_read, 256);
        assert_eq!(groups[2].bytes_read + groups[3].bytes_read, 0);
        // One group == the whole cube.
        assert_eq!(h.group_activity(1)[0].bytes_read, h.stats().bytes_read);
    }

    #[test]
    #[should_panic(expected = "do not divide")]
    fn group_activity_rejects_uneven_splits() {
        let h = cube();
        let _ = h.group_activity(5);
    }

    #[test]
    fn reset_run_state_clears_vault_accounting() {
        // Regression (partitioned execution): a warm session's reset
        // must also zero the per-vault-group meters, or the second run
        // of a cluster reports stale balance numbers.
        let mut h = cube();
        h.internal_read(0, 0, 256);
        assert!(h.vault_activity()[0].activations > 0);
        h.reset_run_state();
        assert!(h
            .vault_activity()
            .iter()
            .all(|v| *v == VaultActivity::default()));
        assert_eq!(h.group_activity(4)[0], VaultActivity::default());
    }

    #[test]
    fn finish_adds_background_energy() {
        let mut h = cube();
        let before = h.energy().dram_pj();
        h.finish(1_000_000);
        assert!(h.energy().dram_pj() > before);
    }
}
