//! Event-count DRAM and link energy model.
//!
//! The paper reports *relative* DRAM energy (HIPE saves ~3-5 % versus
//! the baselines). The authors used SiNUCA's internal power model; we
//! substitute an event-count model with constants drawn from public
//! DDR3/HMC literature (Jeddeloh & Keeth VLSI'12 report ~10.48 pJ/bit
//! for the full HMC path; DRAMPower-style splits for the core). Since
//! every architecture is charged by the same constants, relative
//! comparisons survive any uniform rescaling.

/// Energy constants, in picojoules.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyModel {
    /// Energy of one row activation + precharge pair (per 256 B row).
    pub activate_pj: f64,
    /// Per-byte energy of a column read burst.
    pub read_pj_per_byte: f64,
    /// Per-byte energy of a column write burst.
    pub write_pj_per_byte: f64,
    /// Per-byte energy of moving data across the serial links (SerDes).
    pub link_pj_per_byte: f64,
    /// Per-operation energy of a logic-layer / vault functional unit op.
    pub logic_op_pj: f64,
    /// Per-access energy of a processor-side cache lookup (any level).
    pub cache_access_pj: f64,
    /// DRAM background power in picojoules per CPU cycle (standby,
    /// refresh), for the whole cube.
    pub background_pj_per_cycle: f64,
}

impl EnergyModel {
    /// Literature-derived default constants.
    pub fn paper() -> Self {
        EnergyModel {
            activate_pj: 900.0,           // one ACT+PRE pair, 256 B row
            read_pj_per_byte: 4.0,        // DRAM core column read
            write_pj_per_byte: 4.4,       // DRAM core column write
            link_pj_per_byte: 12.0,       // SerDes dominates HMC energy
            logic_op_pj: 60.0,            // 256 B wide ALU op at 1 GHz
            cache_access_pj: 50.0,        // SRAM lookup, line granularity
            background_pj_per_cycle: 1.5, // cube standby+refresh at 2 GHz
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::paper()
    }
}

/// Accumulated energy by component, in picojoules.
///
/// # Example
///
/// ```
/// use hipe_hmc::{EnergyBreakdown, EnergyModel};
/// let m = EnergyModel::paper();
/// let mut e = EnergyBreakdown::new();
/// e.add_activate(&m, 1);
/// e.add_dram_read(&m, 256);
/// assert!(e.dram_pj() > 0.0);
/// assert_eq!(e.link_pj(), 0.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EnergyBreakdown {
    activate: f64,
    read: f64,
    write: f64,
    link: f64,
    logic: f64,
    cache: f64,
    background: f64,
}

impl EnergyBreakdown {
    /// Creates a zeroed breakdown.
    pub fn new() -> Self {
        EnergyBreakdown::default()
    }

    /// Charges `n` row activations.
    pub fn add_activate(&mut self, m: &EnergyModel, n: u64) {
        self.activate += m.activate_pj * n as f64;
    }

    /// Charges a DRAM column read of `bytes`.
    pub fn add_dram_read(&mut self, m: &EnergyModel, bytes: u64) {
        self.read += m.read_pj_per_byte * bytes as f64;
    }

    /// Charges a DRAM column write of `bytes`.
    pub fn add_dram_write(&mut self, m: &EnergyModel, bytes: u64) {
        self.write += m.write_pj_per_byte * bytes as f64;
    }

    /// Charges `bytes` moved over the serial links (either direction).
    pub fn add_link(&mut self, m: &EnergyModel, bytes: u64) {
        self.link += m.link_pj_per_byte * bytes as f64;
    }

    /// Charges `n` logic-layer or vault functional-unit operations.
    pub fn add_logic_ops(&mut self, m: &EnergyModel, n: u64) {
        self.logic += m.logic_op_pj * n as f64;
    }

    /// Charges `n` processor-side cache accesses.
    pub fn add_cache_accesses(&mut self, m: &EnergyModel, n: u64) {
        self.cache += m.cache_access_pj * n as f64;
    }

    /// Charges background power for a run of `cycles` CPU cycles.
    pub fn add_background(&mut self, m: &EnergyModel, cycles: u64) {
        self.background += m.background_pj_per_cycle * cycles as f64;
    }

    /// DRAM-only energy (activate + read + write + background), pJ.
    /// This is the quantity behind the paper's "DRAM energy savings".
    pub fn dram_pj(&self) -> f64 {
        self.activate + self.read + self.write + self.background
    }

    /// Link energy, pJ.
    pub fn link_pj(&self) -> f64 {
        self.link
    }

    /// Logic-layer energy, pJ.
    pub fn logic_pj(&self) -> f64 {
        self.logic
    }

    /// Processor-side cache energy, pJ.
    pub fn cache_pj(&self) -> f64 {
        self.cache
    }

    /// Total energy across all components, pJ.
    pub fn total_pj(&self) -> f64 {
        self.dram_pj() + self.link + self.logic + self.cache
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.activate += other.activate;
        self.read += other.read;
        self.write += other.write;
        self.link += other.link;
        self.logic += other.logic;
        self.cache += other.cache;
        self.background += other.background;
    }
}

impl std::fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dram={:.1}uJ (act={:.1} rd={:.1} wr={:.1} bg={:.1}) link={:.1}uJ logic={:.1}uJ cache={:.1}uJ total={:.1}uJ",
            self.dram_pj() / 1e6,
            self.activate / 1e6,
            self.read / 1e6,
            self.write / 1e6,
            self.background / 1e6,
            self.link / 1e6,
            self.logic / 1e6,
            self.cache / 1e6,
            self.total_pj() / 1e6,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let m = EnergyModel::paper();
        let mut e = EnergyBreakdown::new();
        e.add_activate(&m, 2);
        e.add_dram_read(&m, 100);
        e.add_dram_write(&m, 100);
        e.add_link(&m, 100);
        e.add_logic_ops(&m, 10);
        e.add_cache_accesses(&m, 10);
        e.add_background(&m, 1000);
        let by_hand = 2.0 * m.activate_pj
            + 100.0 * m.read_pj_per_byte
            + 100.0 * m.write_pj_per_byte
            + 100.0 * m.link_pj_per_byte
            + 10.0 * m.logic_op_pj
            + 10.0 * m.cache_access_pj
            + 1000.0 * m.background_pj_per_cycle;
        assert!((e.total_pj() - by_hand).abs() < 1e-9);
    }

    #[test]
    fn merge_is_additive() {
        let m = EnergyModel::paper();
        let mut a = EnergyBreakdown::new();
        a.add_dram_read(&m, 50);
        let mut b = EnergyBreakdown::new();
        b.add_dram_read(&m, 70);
        a.merge(&b);
        let mut c = EnergyBreakdown::new();
        c.add_dram_read(&m, 120);
        assert_eq!(a, c);
    }

    #[test]
    fn display_is_nonempty() {
        let e = EnergyBreakdown::new();
        assert!(e.to_string().contains("total"));
    }
}
