//! Hybrid Memory Cube (HMC) v2.1 model.
//!
//! This crate rebuilds, from the published parameters (Table I of the
//! HIPE paper), the memory substrate that the original evaluation took
//! from the SiNUCA simulator:
//!
//! * **Geometry** — 32 vaults x 8 DRAM banks per vault, 256 B row
//!   buffers, closed-page policy, 8 GB address space.
//! * **Timing** — DRAM at 166 MHz with CAS/RP/RCD/RAS/CWD of
//!   9-9-9-24-7 DRAM cycles, expressed in 2 GHz CPU cycles.
//! * **Links** — four serial links at 8 GHz carrying request and
//!   response packets with 16 B headers.
//! * **Per-vault functional units** — the stock HMC ISA executes
//!   read-operate(-write) instructions next to the banks; the unit adds
//!   one CPU cycle of latency per operation, as in the paper.
//! * **Energy** — an event-count energy model (activate/read/write/IO,
//!   link traffic, background power) replacing the silicon numbers the
//!   authors had; only relative energy matters for the paper's claims.
//!
//! The cube is *functional* as well as timed: it owns a byte image of
//! the simulated physical memory, so the database scans executed on top
//! of it compute real results that the test-suite cross-checks against
//! a reference executor.
//!
//! # Example
//!
//! ```
//! use hipe_hmc::{Hmc, HmcConfig, AccessKind};
//!
//! let mut hmc = Hmc::new(HmcConfig::paper(), 1 << 20);
//! hmc.write_bytes(0x1000, &[1, 2, 3, 4]);
//! let resp = hmc.access(0, 0x1000, 4, AccessKind::Read);
//! assert!(resp.complete > 0);
//! assert_eq!(hmc.read_bytes(0x1000, 4), &[1, 2, 3, 4]);
//! ```

mod address;
mod config;
mod cube;
mod energy;
mod vault;

pub use address::{AddressMapping, Location};
pub use config::{DramTimings, HmcConfig};
pub use cube::{AccessKind, Hmc, HmcStats, Response, VaultActivity};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use vault::Vault;
