//! Per-vault timing: command queue, banks, functional unit.

use crate::config::HmcConfig;
use hipe_sim::{Cycle, Server, Window};

/// One HMC vault: a memory controller slice with its own command
/// queue, eight DRAM banks and (for PIM operation) a small functional
/// unit next to the banks.
///
/// Timing model (closed-page policy, as in the paper):
///
/// * every access activates its row, bursts data and precharges;
/// * the *requester-visible* latency is `tRCD + tCL + burst` (reads) or
///   `tRCD + tCWD + burst` (writes);
/// * the *bank* stays occupied for `max(visible, tRAS + tRP)` — the
///   bank cycle time — which is what bounds per-bank throughput;
/// * the vault's command queue admits a bounded number of outstanding
///   requests, modelling the controller's queue depth.
#[derive(Debug)]
pub struct Vault {
    banks: Vec<Server>,
    queue: Window,
    fu: Server,
    read_lat: [Cycle; 2],
    bank_cycle: Cycle,
    cfg_burst: u64,
    cfg_row: u64,
    dram_cpu_num: u64,
    dram_cpu_den: u64,
    cas: Cycle,
    cwd: Cycle,
    rcd: Cycle,
}

impl Vault {
    /// Creates an idle vault from the cube configuration.
    pub fn new(cfg: &HmcConfig) -> Self {
        Vault {
            banks: vec![Server::new(); cfg.banks_per_vault],
            queue: Window::new(cfg.vault_queue),
            fu: Server::new(),
            read_lat: [
                cfg.closed_page_read_latency(cfg.row_buffer_bytes),
                cfg.closed_page_write_latency(cfg.row_buffer_bytes),
            ],
            bank_cycle: cfg.bank_cycle_time(),
            cfg_burst: cfg.burst_bytes,
            cfg_row: cfg.row_buffer_bytes,
            dram_cpu_num: cfg.cpu_freq.as_mhz(),
            dram_cpu_den: cfg.dram_freq.as_mhz(),
            cas: cfg.timings.cas,
            cwd: cfg.timings.cwd,
            rcd: cfg.timings.rcd,
        }
    }

    fn to_cpu(&self, dram_cycles: Cycle) -> Cycle {
        (dram_cycles * self.dram_cpu_num).div_ceil(self.dram_cpu_den)
    }

    /// Visible latency of a closed-page access of `bytes` (capped at
    /// the row buffer), in CPU cycles.
    fn visible_latency(&self, bytes: u64, write: bool) -> Cycle {
        let bursts = bytes.min(self.cfg_row).div_ceil(self.cfg_burst);
        let col = if write { self.cwd } else { self.cas };
        // 2:1 core-to-bus ratio: two bursts per DRAM core cycle.
        self.to_cpu(self.rcd + col + bursts.div_ceil(2))
    }

    /// Performs one bank access arriving at `cycle`; returns the cycle
    /// at which data is available (read) or durably written (write).
    ///
    /// `bank` must be within the vault; `bytes` is clamped to one row
    /// buffer (callers split larger ranges).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access(&mut self, cycle: Cycle, bank: usize, bytes: u64, write: bool) -> Cycle {
        let admitted = self.queue.admit(cycle);
        let visible = self.visible_latency(bytes, write);
        let occupancy = visible.max(self.bank_cycle);
        let (start, _) = self.banks[bank].serve_pipelined(admitted, occupancy, occupancy);
        let done = start + visible;
        self.queue.complete(done);
        done
    }

    /// Runs the per-vault functional unit for `latency` CPU cycles
    /// starting when its input is ready at `cycle`.
    pub fn execute_fu(&mut self, cycle: Cycle, latency: Cycle) -> Cycle {
        self.fu.serve(cycle, latency).1
    }

    /// The bank cycle time (per-bank occupancy of one access).
    pub fn bank_cycle_time(&self) -> Cycle {
        self.bank_cycle
    }

    /// Total accesses served by this vault's banks.
    pub fn accesses(&self) -> u64 {
        self.banks.iter().map(Server::served).sum()
    }

    /// Total busy cycles across this vault's banks.
    pub fn bank_busy_cycles(&self) -> Cycle {
        self.banks.iter().map(Server::busy_cycles).sum()
    }

    /// Read latency of a full row access (diagnostic).
    pub fn row_read_latency(&self) -> Cycle {
        self.read_lat[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vault() -> Vault {
        Vault::new(&HmcConfig::paper())
    }

    #[test]
    fn single_access_latency_matches_config() {
        let cfg = HmcConfig::paper();
        let mut v = vault();
        let done = v.access(0, 0, 256, false);
        assert_eq!(done, cfg.closed_page_read_latency(256));
    }

    #[test]
    fn same_bank_accesses_serialize_at_bank_cycle_time() {
        let cfg = HmcConfig::paper();
        let mut v = vault();
        let d1 = v.access(0, 0, 256, false);
        let d2 = v.access(0, 0, 256, false);
        // The second access starts once the bank frees: after the
        // larger of the visible latency and the bank cycle time.
        assert_eq!(d2 - d1, cfg.bank_cycle_time().max(d1));
    }

    #[test]
    fn different_banks_overlap() {
        let mut v = vault();
        let d1 = v.access(0, 0, 256, false);
        let d2 = v.access(0, 1, 256, false);
        assert_eq!(d1, d2);
    }

    #[test]
    fn writes_use_cwd() {
        let cfg = HmcConfig::paper();
        let mut v = vault();
        let wr = v.access(0, 0, 256, true);
        assert_eq!(wr, cfg.closed_page_write_latency(256));
        // CWD (7) < CAS (9): writes complete slightly sooner.
        assert!(wr < cfg.closed_page_read_latency(256));
    }

    #[test]
    fn queue_depth_limits_outstanding() {
        let cfg = HmcConfig::paper();
        let mut v = vault();
        // Flood one vault: with queue depth Q and 8 banks, the 8 first
        // requests proceed in parallel; far more than Q requests must
        // observe queueing delay.
        let mut last = 0;
        for i in 0..64 {
            let bank = i % cfg.banks_per_vault;
            last = v.access(0, bank, 256, false);
        }
        // 64 requests / 8 banks = 8 bank cycles of depth.
        assert!(last >= 8 * cfg.bank_cycle_time());
    }

    #[test]
    fn fu_serializes() {
        let mut v = vault();
        let a = v.execute_fu(0, 1);
        let b = v.execute_fu(0, 1);
        assert_eq!((a, b), (1, 2));
    }
}
