//! Instruction definitions for the four evaluated targets.
//!
//! The HIPE paper compares the TPC-H Query 06 selection scan compiled
//! four ways:
//!
//! * **x86/AVX** — everything executes in the out-of-order core; memory
//!   is reached through the cache hierarchy. Represented here as
//!   [`MicroOp`] streams.
//! * **HMC ISA** — the core dispatches read-operate instructions (e.g.
//!   load-compare) that execute in the vault functional units;
//!   represented as [`MicroOp`]s with a [`MicroOpKind::HmcDispatch`]
//!   payload carrying the in-memory operation ([`VaultOp`]).
//! * **HIVE** — the core posts [`LogicInstr`]s (lock/unlock, load/store,
//!   ALU) to the logic-layer engine with its interlocked register bank.
//! * **HIPE** — HIVE plus an optional [`Predicate`] on load/store/ALU
//!   instructions, executed by the predication match logic.
//!
//! The types in this crate are pure data: timing lives in `hipe-cpu`
//! and `hipe-logic`, functional evaluation in `hipe-logic` and the
//! runners of the top-level `hipe` crate.

mod logic;
mod micro;
mod opsize;
mod program;

pub use logic::{
    AluOp, FieldRange, LogicInstr, PredWhen, Predicate, RegId, REGISTER_BYTES, REGISTER_COUNT,
};
pub use micro::{MicroOp, MicroOpKind, VaultOp};
pub use opsize::{OpSize, LANE_BYTES};
pub use program::{LogicProgram, PartitionSpec};
