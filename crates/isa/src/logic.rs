//! HIVE/HIPE logic-layer instructions.

use crate::opsize::OpSize;

/// Number of registers in the balanced register bank (36 in the paper,
/// 256 B each — 94 % smaller than HIVE's original 16 x 8 KB proposal).
pub const REGISTER_COUNT: usize = 36;

/// Width of one register in bytes.
pub const REGISTER_BYTES: u64 = 256;

/// Index of a logic-layer register.
///
/// # Example
///
/// ```
/// use hipe_isa::RegId;
/// let r = RegId::new(5).expect("5 is within the register bank");
/// assert_eq!(r.index(), 5);
/// assert!(RegId::new(40).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegId(u8);

impl RegId {
    /// Creates a register id; `None` if `i >= REGISTER_COUNT`.
    pub fn new(i: usize) -> Option<Self> {
        if i < REGISTER_COUNT {
            Some(RegId(i as u8))
        } else {
            None
        }
    }

    /// The register index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RegId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// An inclusive range predicate over one 8-byte field of a tuple,
/// used by the fused [`AluOp::TupleMatch`] operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldRange {
    /// Field index within the tuple (lane offset modulo the stride).
    pub field: u8,
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

/// ALU operations of the logic-layer engine.
///
/// Latencies follow Table I: 2 cycles for integer ALU, 6 for multiply,
/// 40 for divide (logic-layer cycles at 1 GHz). All operations are
/// lane-wise over 8-byte lanes; comparisons produce 0/1 per lane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// `lane >= imm`.
    CmpGeImm(i64),
    /// `lane > imm`.
    CmpGtImm(i64),
    /// `lane <= imm`.
    CmpLeImm(i64),
    /// `lane < imm`.
    CmpLtImm(i64),
    /// `lane == imm`.
    CmpEqImm(i64),
    /// `lo <= lane <= hi` (the fused range compare used for Q6's
    /// discount predicate).
    CmpRangeImm(i64, i64),
    /// Lane-wise AND of two registers.
    And,
    /// Lane-wise OR of two registers.
    Or,
    /// Lane-wise addition of two registers.
    Add,
    /// Lane-wise subtraction (`a - b`).
    Sub,
    /// Lane-wise multiplication (used by the fused-aggregate extension).
    Mul,
    /// Horizontal sum of all lanes of `a` into lane `lane` of `dst`
    /// (aggregate extension; reduction tree, multiply-class latency).
    /// With a second register operand it reduces the lane-wise
    /// products `a[i] * b[i]` instead — the fused dot product the
    /// near-data aggregate tail uses to fold the 0/1 match mask into
    /// a partial sum in a single operation.
    ///
    /// Unlike the other ALU operations this *merges* into the
    /// destination: lanes other than `lane` keep their previous value,
    /// so a long-lived register can collect one partial per region and
    /// be flushed to memory as a single row-buffer store per 32
    /// regions (the reduction tree's output mux selects the write
    /// lane; the bank read-modify-writes the register).
    AddReduce {
        /// Destination lane of the reduced sum, `0..32`.
        lane: u8,
    },
    /// Fused conjunction over row-store tuples: the register holds
    /// tuples of `stride` consecutive 8-byte fields; output lane `t`
    /// is 1 when every [`FieldRange`] of tuple `t` passes. This is the
    /// row-store analogue of the paper's extended compare instruction
    /// (the HMC ISA is extended "to provide other instructions more
    /// convenient" for the select scan — see DESIGN.md).
    TupleMatch {
        /// Up to three field predicates (Q6's conjunction).
        fields: [Option<FieldRange>; 3],
        /// Fields per tuple (8 for the 64 B NSM tuples).
        stride: u8,
    },
}

impl AluOp {
    /// Returns `true` for multiply-class latencies.
    pub fn is_mul_class(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::AddReduce { .. })
    }

    /// Returns `true` if the operation merges into its destination
    /// (reads `dst`'s previous lanes instead of overwriting them all).
    pub fn merges_dst(self) -> bool {
        matches!(self, AluOp::AddReduce { .. })
    }

    /// Builds a [`AluOp::TupleMatch`] from up to three field ranges.
    ///
    /// # Panics
    ///
    /// Panics if more than three predicates are supplied.
    pub fn tuple_match(preds: &[FieldRange], stride: u8) -> Self {
        assert!(preds.len() <= 3, "TupleMatch supports at most 3 predicates");
        let mut fields = [None; 3];
        for (slot, p) in fields.iter_mut().zip(preds) {
            *slot = Some(*p);
        }
        AluOp::TupleMatch { fields, stride }
    }

    /// Returns `true` if the operation reads a second register operand.
    pub fn needs_b(self) -> bool {
        matches!(
            self,
            AluOp::And | AluOp::Or | AluOp::Add | AluOp::Sub | AluOp::Mul
        )
    }
}

/// When a predicated instruction executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PredWhen {
    /// Execute if any lane of the predicate register is non-zero —
    /// i.e. the region still has at least one candidate tuple.
    AnyNonZero,
    /// Execute if every lane of the predicate register is zero.
    AllZero,
}

/// A predicate guarding a [`LogicInstr`].
///
/// The register bank stores a zero flag alongside each register; the
/// predication match logic tests it without occupying the ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Predicate {
    /// Register whose zero flag is consulted.
    pub reg: RegId,
    /// Execution condition.
    pub when: PredWhen,
}

impl Predicate {
    /// Convenience: execute when `reg` has any non-zero lane.
    pub fn any_nonzero(reg: RegId) -> Self {
        Predicate {
            reg,
            when: PredWhen::AnyNonZero,
        }
    }

    /// Convenience: execute when `reg` is entirely zero.
    pub fn all_zero(reg: RegId) -> Self {
        Predicate {
            reg,
            when: PredWhen::AllZero,
        }
    }
}

/// One instruction of the HIVE/HIPE logic-layer engine.
///
/// Instructions execute in order; loads are non-blocking thanks to the
/// interlocked register bank (execution only stalls on a true data
/// dependency). `pred` is `None` on HIVE — only HIPE's predication
/// match logic honours it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogicInstr {
    /// Acquire the engine (guards the register bank between requesters).
    Lock,
    /// Release the engine and acknowledge completion to the host.
    Unlock,
    /// Load `size` bytes at `addr` into `dst`.
    Load {
        /// Destination register.
        dst: RegId,
        /// Source DRAM address.
        addr: u64,
        /// Operand size.
        size: OpSize,
        /// Optional predicate (HIPE only).
        pred: Option<Predicate>,
    },
    /// Store `size` bytes of `src` to `addr`.
    Store {
        /// Source register.
        src: RegId,
        /// Destination DRAM address.
        addr: u64,
        /// Operand size.
        size: OpSize,
        /// Optional predicate (HIPE only).
        pred: Option<Predicate>,
    },
    /// ALU operation `dst = op(a, b?)` over `size` bytes.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: RegId,
        /// First source register.
        a: RegId,
        /// Second source register (for two-operand ops).
        b: Option<RegId>,
        /// Operand size.
        size: OpSize,
        /// Optional predicate (HIPE only).
        pred: Option<Predicate>,
    },
}

impl LogicInstr {
    /// The predicate attached to this instruction, if any.
    pub fn predicate(&self) -> Option<Predicate> {
        match self {
            LogicInstr::Load { pred, .. }
            | LogicInstr::Store { pred, .. }
            | LogicInstr::Alu { pred, .. } => *pred,
            _ => None,
        }
    }

    /// Returns `true` if this instruction touches DRAM.
    pub fn is_memory(&self) -> bool {
        matches!(self, LogicInstr::Load { .. } | LogicInstr::Store { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> RegId {
        RegId::new(i).expect("valid register")
    }

    #[test]
    fn register_bounds() {
        assert!(RegId::new(REGISTER_COUNT - 1).is_some());
        assert!(RegId::new(REGISTER_COUNT).is_none());
        assert_eq!(r(7).to_string(), "r7");
    }

    #[test]
    fn alu_classification() {
        assert!(AluOp::Mul.is_mul_class());
        assert!(!AluOp::And.is_mul_class());
        assert!(AluOp::And.needs_b());
        assert!(!AluOp::CmpLtImm(3).needs_b());
    }

    #[test]
    fn predicate_accessors() {
        let p = Predicate::any_nonzero(r(3));
        let ld = LogicInstr::Load {
            dst: r(1),
            addr: 0,
            size: OpSize::MAX,
            pred: Some(p),
        };
        assert_eq!(ld.predicate(), Some(p));
        assert!(ld.is_memory());
        assert_eq!(LogicInstr::Lock.predicate(), None);
        assert!(!LogicInstr::Unlock.is_memory());
    }
}
