//! Micro-operations executed by the out-of-order core model.

use crate::opsize::OpSize;

/// An in-memory operation executed by a vault functional unit on
/// behalf of the stock (extended) HMC ISA.
///
/// The paper extends the HMC 2.1 update instructions with wider
/// operand sizes and a compare instruction suited to select scans; a
/// `LoadCmp` reads `size` bytes next to the bank, compares each 8-byte
/// lane against an immediate range and returns a result mask without
/// overwriting memory (unlike the original compare-and-swap).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VaultOp {
    /// Lane-wise comparison `lo <= lane <= hi` returning a bitmask.
    LoadCmp {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// Lane-wise AND of memory with the mask in the request, returning
    /// the combined mask (used to fold a previous bitmask into a new
    /// compare result in memory).
    LoadAnd,
    /// Read-modify-write add of an immediate (stock HMC-style update,
    /// used by extension workloads).
    ///
    /// Row-store tuple conjunctions stay a logic-layer operation
    /// ([`crate::AluOp::TupleMatch`]): carrying their fat field-range
    /// payload here would quadruple the size of *every* [`MicroOp`] in
    /// the multi-million-entry host plans.
    AddImm(i64),
}

/// The kind of a micro-operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroOpKind {
    /// Scalar integer ALU operation (1 cycle in Table I).
    IntAlu,
    /// Scalar integer multiply (3 cycles).
    IntMul,
    /// Scalar integer divide (32 cycles).
    IntDiv,
    /// Scalar FP ALU operation (3 cycles).
    FpAlu,
    /// Scalar FP multiply (5 cycles).
    FpMul,
    /// Scalar FP divide (10 cycles).
    FpDiv,
    /// Vector (AVX-style) operation over `size` bytes; executes on the
    /// integer ALU pipes, one lane group per cycle.
    VecAlu {
        /// Operand width.
        size: OpSize,
    },
    /// Load of `bytes` at `addr` through the cache hierarchy.
    Load {
        /// Virtual = physical address in this model.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
    },
    /// Store of `bytes` at `addr` through the cache hierarchy.
    Store {
        /// Address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
    },
    /// Conditional branch; `mispredict` charges the front-end refill
    /// penalty (the two-level GAs predictor got it wrong).
    Branch {
        /// Whether this dynamic instance mispredicts.
        mispredict: bool,
    },
    /// Dispatch of an HMC-ISA operation to the cube. Behaves like an
    /// uncached load from the core's perspective: it occupies a
    /// load-queue entry until the response returns.
    HmcDispatch {
        /// Target address of the in-memory operand.
        addr: u64,
        /// Operand size read next to the bank.
        size: OpSize,
        /// The in-memory operation.
        op: VaultOp,
        /// Result payload bytes carried in the response.
        result_bytes: u64,
    },
    /// Posted dispatch of one HIVE/HIPE logic-layer instruction.
    /// Behaves like a store: retires once handed to the link.
    LogicDispatch,
    /// Wait for the logic-layer engine's unlock acknowledgement; the
    /// completion time is provided by the co-simulated engine. Behaves
    /// like an uncached load.
    LogicWait,
}

/// A micro-operation with up to two data dependencies.
///
/// Dependencies are expressed as *backward distances* in the dynamic
/// stream: `dep1 = 3` means "depends on the micro-op issued 3 positions
/// earlier". Distance 0 means no dependency. Backward distances larger
/// than the reorder window are treated as ready (their producers have
/// long retired).
///
/// # Example
///
/// ```
/// use hipe_isa::{MicroOp, MicroOpKind};
/// let load = MicroOp::new(MicroOpKind::Load { addr: 0x40, bytes: 64 });
/// let cmp = MicroOp::new(MicroOpKind::IntAlu).with_deps(1, 0);
/// assert_eq!(cmp.dep1, 1);
/// assert!(load.dep1 == 0 && load.dep2 == 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Operation kind.
    pub kind: MicroOpKind,
    /// Backward distance of the first dependency (0 = none).
    pub dep1: u32,
    /// Backward distance of the second dependency (0 = none).
    pub dep2: u32,
}

impl MicroOp {
    /// Creates a micro-op with no dependencies.
    pub fn new(kind: MicroOpKind) -> Self {
        MicroOp {
            kind,
            dep1: 0,
            dep2: 0,
        }
    }

    /// Sets the dependency distances.
    pub fn with_deps(mut self, dep1: u32, dep2: u32) -> Self {
        self.dep1 = dep1;
        self.dep2 = dep2;
        self
    }

    /// Returns `true` for kinds that occupy a load-queue entry.
    pub fn is_memory_read(&self) -> bool {
        matches!(
            self.kind,
            MicroOpKind::Load { .. } | MicroOpKind::HmcDispatch { .. } | MicroOpKind::LogicWait
        )
    }

    /// Returns `true` for kinds that occupy a store-queue entry.
    pub fn is_memory_write(&self) -> bool {
        matches!(
            self.kind,
            MicroOpKind::Store { .. } | MicroOpKind::LogicDispatch
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opsize::OpSize;

    #[test]
    fn queue_classification() {
        let ld = MicroOp::new(MicroOpKind::Load { addr: 0, bytes: 8 });
        let st = MicroOp::new(MicroOpKind::Store { addr: 0, bytes: 8 });
        let hmc = MicroOp::new(MicroOpKind::HmcDispatch {
            addr: 0,
            size: OpSize::MAX,
            op: VaultOp::LoadCmp { lo: 0, hi: 10 },
            result_bytes: 16,
        });
        let post = MicroOp::new(MicroOpKind::LogicDispatch);
        let alu = MicroOp::new(MicroOpKind::IntAlu);
        assert!(ld.is_memory_read() && !ld.is_memory_write());
        assert!(st.is_memory_write() && !st.is_memory_read());
        assert!(hmc.is_memory_read());
        assert!(post.is_memory_write());
        assert!(!alu.is_memory_read() && !alu.is_memory_write());
    }

    #[test]
    fn deps_builder() {
        let op = MicroOp::new(MicroOpKind::IntAlu).with_deps(2, 5);
        assert_eq!((op.dep1, op.dep2), (2, 5));
    }
}
