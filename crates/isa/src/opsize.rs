//! Operation sizes.

/// Width in bytes of one data lane.
///
/// Every column in the workload is a little-endian signed 64-bit
/// integer, matching the 8 B burst width of the HMC and giving a 256 B
/// operation 32 lanes.
pub const LANE_BYTES: u64 = 8;

/// The operand size of an in-memory or vector operation.
///
/// The paper evaluates 16, 32, 64, 128 and 256 bytes (the HMC spec
/// originally supports up to 16 B; HIVE up to 8 KB; the balanced design
/// evaluated in the paper caps at one 256 B row buffer).
///
/// # Example
///
/// ```
/// use hipe_isa::OpSize;
/// let s = OpSize::new(64).expect("64 is a supported size");
/// assert_eq!(s.bytes(), 64);
/// assert_eq!(s.lanes(), 8);
/// assert!(OpSize::new(48).is_none());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OpSize(u64);

impl OpSize {
    /// The five sizes evaluated in the paper, ascending.
    pub const ALL: [OpSize; 5] = [OpSize(16), OpSize(32), OpSize(64), OpSize(128), OpSize(256)];

    /// The largest (and usually best) size: one full row buffer.
    pub const MAX: OpSize = OpSize(256);

    /// Creates an operation size; returns `None` unless `bytes` is one
    /// of 16, 32, 64, 128 or 256.
    pub const fn new(bytes: u64) -> Option<Self> {
        match bytes {
            16 | 32 | 64 | 128 | 256 => Some(OpSize(bytes)),
            _ => None,
        }
    }

    /// The size in bytes.
    pub fn bytes(self) -> u64 {
        self.0
    }

    /// Number of 8-byte lanes this size covers.
    pub fn lanes(self) -> usize {
        (self.0 / LANE_BYTES) as usize
    }
}

impl std::fmt::Display for OpSize {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_sizes_round_trip() {
        for s in OpSize::ALL {
            assert_eq!(OpSize::new(s.bytes()), Some(s));
            assert_eq!(s.lanes() as u64 * LANE_BYTES, s.bytes());
        }
    }

    #[test]
    fn invalid_sizes_rejected() {
        for b in [0, 1, 8, 48, 512, 8192] {
            assert_eq!(OpSize::new(b), None);
        }
    }

    #[test]
    fn all_is_sorted_ascending() {
        let mut sorted = OpSize::ALL.to_vec();
        sorted.sort();
        assert_eq!(sorted, OpSize::ALL.to_vec());
    }

    #[test]
    fn display() {
        assert_eq!(OpSize::MAX.to_string(), "256 B");
    }
}
