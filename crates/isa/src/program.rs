//! Partition-tagged logic-layer programs.
//!
//! The compiler lowers a scan into one instruction stream *per vault
//! group*; each stream is wrapped in a [`LogicProgram`] carrying the
//! [`PartitionSpec`] that says which engine runs it and which vaults
//! that engine owns. The spec travels with the code so the execution
//! layer (the `hipe-logic` engine cluster) can enforce vault ownership
//! without knowing anything about the compiler.

use crate::logic::LogicInstr;

/// Identity and vault ownership of one logic-layer partition.
///
/// # Example
///
/// ```
/// use hipe_isa::PartitionSpec;
/// let spec = PartitionSpec::new(1, 8, 8);
/// assert_eq!(spec.vaults(), 8..16);
/// assert!(spec.owns_vault(9) && !spec.owns_vault(16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PartitionSpec {
    /// Partition (and engine) index.
    pub index: usize,
    /// First vault of the owned group.
    pub first_vault: usize,
    /// Vaults in the owned group.
    pub vault_count: usize,
}

impl PartitionSpec {
    /// Creates a spec for partition `index` owning `vault_count`
    /// vaults starting at `first_vault`.
    pub fn new(index: usize, first_vault: usize, vault_count: usize) -> Self {
        PartitionSpec {
            index,
            first_vault,
            vault_count,
        }
    }

    /// The owned vault ids.
    pub fn vaults(&self) -> std::ops::Range<usize> {
        self.first_vault..self.first_vault + self.vault_count
    }

    /// Returns `true` if `vault` belongs to this partition.
    pub fn owns_vault(&self, vault: usize) -> bool {
        self.vaults().contains(&vault)
    }
}

/// One partition's lowered instruction stream.
///
/// An empty program (a partition whose vault group holds no region of
/// the table) carries no instructions at all — not even `Lock`/
/// `Unlock` — and its engine stays idle for the whole run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogicProgram {
    spec: PartitionSpec,
    instrs: Vec<LogicInstr>,
}

impl LogicProgram {
    /// Wraps an instruction stream with its partition identity.
    pub fn new(spec: PartitionSpec, instrs: Vec<LogicInstr>) -> Self {
        LogicProgram { spec, instrs }
    }

    /// The partition this program belongs to.
    pub fn spec(&self) -> PartitionSpec {
        self.spec
    }

    /// The instruction stream, in program order.
    pub fn instrs(&self) -> &[LogicInstr] {
        &self.instrs
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Returns `true` for an idle partition's empty program.
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_vault_ownership() {
        let s = PartitionSpec::new(3, 24, 8);
        assert_eq!(s.vaults(), 24..32);
        assert!(s.owns_vault(24) && s.owns_vault(31));
        assert!(!s.owns_vault(23) && !s.owns_vault(32));
    }

    #[test]
    fn program_wraps_stream_and_spec() {
        let spec = PartitionSpec::new(0, 0, 32);
        let p = LogicProgram::new(spec, vec![LogicInstr::Lock, LogicInstr::Unlock]);
        assert_eq!(p.spec(), spec);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(LogicProgram::new(spec, vec![]).is_empty());
    }
}
