//! The interlocked register bank.

use hipe_isa::{RegId, REGISTER_COUNT};
use hipe_sim::Cycle;

/// Lanes per register (256 B / 8 B).
pub(crate) const LANES: usize = 32;

/// The 36 x 256 B register bank with scoreboard and zero flags.
///
/// Each register holds 32 lanes of `i64` (functional value), a
/// `ready` cycle (interlock scoreboard: when the value becomes
/// available) and a zero flag (`true` when every lane is zero),
/// which the HIPE predication match logic consults.
///
/// # Example
///
/// ```
/// use hipe_isa::RegId;
/// use hipe_logic::RegisterBank;
/// let mut b = RegisterBank::new(36);
/// let r = RegId::new(3).expect("register 3 exists");
/// b.write(r, [1i64; 32], 100);
/// assert_eq!(b.ready(r), 100);
/// assert!(!b.is_zero(r));
/// assert_eq!(b.lane(r, 31), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RegisterBank {
    lanes: Vec<[i64; LANES]>,
    ready: Vec<Cycle>,
    zero: Vec<bool>,
    consumed: Vec<Cycle>,
}

impl RegisterBank {
    /// Creates a bank of `n` zeroed registers, all ready at cycle 0.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the architectural
    /// [`REGISTER_COUNT`].
    pub fn new(n: usize) -> Self {
        assert!(
            n > 0 && n <= REGISTER_COUNT,
            "register bank size {n} outside 1..={REGISTER_COUNT}"
        );
        RegisterBank {
            lanes: vec![[0; LANES]; n],
            ready: vec![0; n],
            zero: vec![true; n],
            consumed: vec![0; n],
        }
    }

    /// Number of registers.
    pub fn len(&self) -> usize {
        self.lanes.len()
    }

    /// Returns `true` if the bank has no registers (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.lanes.is_empty()
    }

    fn check(&self, r: RegId) -> usize {
        let i = r.index();
        assert!(
            i < self.lanes.len(),
            "register {r} outside bank of {}",
            self.lanes.len()
        );
        i
    }

    /// The scoreboard ready cycle of `r`.
    pub fn ready(&self, r: RegId) -> Cycle {
        self.ready[self.check(r)]
    }

    /// The zero flag of `r` (true = every lane zero).
    pub fn is_zero(&self, r: RegId) -> bool {
        self.zero[self.check(r)]
    }

    /// The functional lanes of `r`.
    pub fn lanes(&self, r: RegId) -> &[i64; LANES] {
        &self.lanes[self.check(r)]
    }

    /// One lane of `r`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 32` or `r` is outside the bank.
    pub fn lane(&self, r: RegId, lane: usize) -> i64 {
        self.lanes[self.check(r)][lane]
    }

    /// Writes `value` into `r`, becoming ready at `ready`; updates the
    /// zero flag.
    pub fn write(&mut self, r: RegId, value: [i64; LANES], ready: Cycle) {
        let i = self.check(r);
        self.zero[i] = value.iter().all(|&v| v == 0);
        self.lanes[i] = value;
        self.ready[i] = ready;
    }

    /// Records that `r` was read at `cycle` (write-after-read
    /// interlock bookkeeping).
    pub fn consume(&mut self, r: RegId, cycle: Cycle) {
        let i = self.check(r);
        self.consumed[i] = self.consumed[i].max(cycle);
    }

    /// Latest cycle at which `r` was read; a subsequent write must not
    /// start before this (WAR hazard).
    pub fn last_consumed(&self, r: RegId) -> Cycle {
        self.consumed[self.check(r)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: usize) -> RegId {
        RegId::new(i).expect("valid register")
    }

    #[test]
    fn fresh_bank_is_zero_and_ready() {
        let b = RegisterBank::new(36);
        assert_eq!(b.len(), 36);
        for i in 0..36 {
            assert!(b.is_zero(r(i)));
            assert_eq!(b.ready(r(i)), 0);
        }
    }

    #[test]
    fn zero_flag_tracks_writes() {
        let mut b = RegisterBank::new(4);
        let mut v = [0i64; LANES];
        b.write(r(0), v, 5);
        assert!(b.is_zero(r(0)));
        v[17] = -3;
        b.write(r(0), v, 9);
        assert!(!b.is_zero(r(0)));
        assert_eq!(b.ready(r(0)), 9);
        assert_eq!(b.lane(r(0), 17), -3);
    }

    #[test]
    #[should_panic(expected = "outside bank")]
    fn out_of_bank_register_panics() {
        // Architecturally valid id, but this bank only has 4 registers.
        let b = RegisterBank::new(4);
        let _ = b.ready(r(10));
    }

    #[test]
    #[should_panic(expected = "outside 1..=")]
    fn oversized_bank_panics() {
        let _ = RegisterBank::new(100);
    }
}
