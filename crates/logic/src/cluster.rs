//! The engine cluster: one logic-layer engine per vault group.
//!
//! The paper places a compute engine in the logic layer of *each vault
//! group*; the cluster models N such engines co-simulated against one
//! shared [`Hmc`]. Each engine owns a private sequencer and register
//! bank (so partitions pipeline independently), while all DRAM timing
//! flows through the shared cube — and because every partition's code
//! touches only its own vaults' banks, the existing per-vault queue
//! and bank-occupancy models price the overlap honestly. The cluster
//! *enforces* that ownership: a memory instruction addressed outside
//! its partition's vault group is a compiler bug and panics.

use crate::config::LogicConfig;
use crate::engine::{Engine, EngineStats, Outcome};
use hipe_hmc::Hmc;
use hipe_isa::{LogicInstr, PartitionSpec};
use hipe_sim::Cycle;

/// N per-vault-group engines sharing one cube.
///
/// # Example
///
/// ```
/// use hipe_hmc::{Hmc, HmcConfig};
/// use hipe_isa::{LogicInstr, OpSize, PartitionSpec, RegId};
/// use hipe_logic::{EngineCluster, LogicConfig};
///
/// let mut hmc = Hmc::new(HmcConfig::paper(), 1 << 20);
/// let specs = [PartitionSpec::new(0, 0, 16), PartitionSpec::new(1, 16, 16)];
/// let mut cluster = EngineCluster::new(LogicConfig::paper(), &specs);
/// // Partition 1 loads from vault 16 (block 16): its own group.
/// let load = LogicInstr::Load {
///     dst: RegId::new(0).expect("register 0 exists"),
///     addr: 16 * 256,
///     size: OpSize::MAX,
///     pred: None,
/// };
/// let outcome = cluster.execute(&mut hmc, 1, load, 0);
/// assert!(outcome.performed);
/// assert_eq!(cluster.stats().dram_loads, 1);
/// ```
#[derive(Debug)]
pub struct EngineCluster {
    engines: Vec<Engine>,
    specs: Vec<PartitionSpec>,
}

impl EngineCluster {
    /// Creates one idle engine per partition spec, all with the same
    /// configuration.
    pub fn new(cfg: LogicConfig, specs: &[PartitionSpec]) -> Self {
        EngineCluster {
            engines: specs.iter().map(|_| Engine::new(cfg)).collect(),
            specs: specs.to_vec(),
        }
    }

    /// Number of engines.
    pub fn len(&self) -> usize {
        self.engines.len()
    }

    /// Returns `true` if the cluster has no engines.
    pub fn is_empty(&self) -> bool {
        self.engines.is_empty()
    }

    /// One engine (functional inspection).
    pub fn engine(&self, p: usize) -> &Engine {
        &self.engines[p]
    }

    /// The partition specs the cluster was built for.
    pub fn specs(&self) -> &[PartitionSpec] {
        &self.specs
    }

    /// Executes one instruction on partition `p`'s engine, arriving
    /// from the host at `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if a memory instruction addresses a vault outside the
    /// partition's group (the compiler must keep every partition's
    /// loads, mask stores and partial flushes inside its own vaults),
    /// or if `p` is out of range.
    pub fn execute(
        &mut self,
        hmc: &mut Hmc,
        p: usize,
        instr: LogicInstr,
        arrival: Cycle,
    ) -> Outcome {
        self.check_vault_ownership(hmc, p, &instr);
        self.engines[p].execute(hmc, instr, arrival)
    }

    /// Asserts that a memory instruction stays inside partition `p`'s
    /// vault group.
    fn check_vault_ownership(&self, hmc: &Hmc, p: usize, instr: &LogicInstr) {
        let (addr, bytes) = match *instr {
            LogicInstr::Load { addr, size, .. } | LogicInstr::Store { addr, size, .. } => {
                (addr, size.bytes())
            }
            _ => return,
        };
        let spec = self.specs[p];
        for (seg, _) in hmc.mapping().split(addr, bytes) {
            let vault = hmc.mapping().locate(seg).vault;
            assert!(
                spec.owns_vault(vault),
                "partition {} (vaults {:?}) addressed vault {vault} at {seg:#x}",
                spec.index,
                spec.vaults(),
            );
        }
    }

    /// Merged activity counters across all engines.
    pub fn stats(&self) -> EngineStats {
        self.engines.iter().map(Engine::stats).sum()
    }

    /// Activity counters of one engine.
    pub fn partition_stats(&self, p: usize) -> EngineStats {
        self.engines[p].stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_hmc::HmcConfig;
    use hipe_isa::{OpSize, RegId};

    fn setup(n: usize) -> (Hmc, EngineCluster) {
        let g = 32 / n;
        let specs: Vec<PartitionSpec> = (0..n).map(|p| PartitionSpec::new(p, p * g, g)).collect();
        (
            Hmc::new(HmcConfig::paper(), 1 << 20),
            EngineCluster::new(LogicConfig::paper(), &specs),
        )
    }

    fn load(dst: usize, addr: u64) -> LogicInstr {
        LogicInstr::Load {
            dst: RegId::new(dst).expect("valid register"),
            addr,
            size: OpSize::MAX,
            pred: None,
        }
    }

    #[test]
    fn engines_run_independent_streams() {
        let (mut hmc, mut cluster) = setup(4);
        assert_eq!(cluster.len(), 4);
        // Each partition loads from its own first vault; all four
        // overlap like independent engines would.
        let mut dones = vec![];
        for p in 0..4 {
            let addr = (p * 8) as u64 * 256;
            dones.push(cluster.execute(&mut hmc, p, load(0, addr), 0).done);
        }
        assert!(
            dones.windows(2).all(|w| w[0] == w[1]),
            "serialized: {dones:?}"
        );
        assert_eq!(cluster.stats().dram_loads, 4);
        assert_eq!(cluster.partition_stats(2).dram_loads, 1);
    }

    #[test]
    fn sequencers_are_private_per_engine() {
        let (mut hmc, mut cluster) = setup(2);
        // Two instructions on engine 0 occupy consecutive sequencer
        // slots; engine 1's first instruction does not queue behind
        // them.
        let a = cluster.execute(&mut hmc, 0, load(0, 0), 0);
        let b = cluster.execute(&mut hmc, 0, load(1, 256), 0);
        let c = cluster.execute(&mut hmc, 1, load(0, 16 * 256), 0);
        assert!(b.done > a.done);
        assert_eq!(c.done, a.done);
    }

    #[test]
    fn merged_stats_sum_engines() {
        let (mut hmc, mut cluster) = setup(2);
        cluster.execute(&mut hmc, 0, load(0, 0), 0);
        cluster.execute(&mut hmc, 1, load(0, 16 * 256), 0);
        cluster.execute(&mut hmc, 1, LogicInstr::Lock, 0);
        cluster.execute(&mut hmc, 1, LogicInstr::Unlock, 0);
        let merged = cluster.stats();
        assert_eq!(merged.instructions, 4);
        assert_eq!(merged.dram_loads, 2);
        assert_eq!(merged.blocks, 1);
        assert_eq!(
            merged,
            cluster.partition_stats(0).merge(cluster.partition_stats(1))
        );
    }

    #[test]
    #[should_panic(expected = "addressed vault")]
    fn foreign_vault_access_panics() {
        let (mut hmc, mut cluster) = setup(4);
        // Partition 0 owns vaults 0..8; block 8 belongs to partition 1.
        cluster.execute(&mut hmc, 0, load(0, 8 * 256), 0);
    }

    #[test]
    #[should_panic(expected = "addressed vault")]
    fn straddling_access_is_checked_per_block() {
        let (mut hmc, mut cluster) = setup(4);
        // Starts in vault 7 (owned) but spills into vault 8 (foreign).
        cluster.execute(&mut hmc, 0, load(0, 7 * 256 + 128), 0);
    }

    #[test]
    fn single_partition_cluster_behaves_like_one_engine() {
        let (mut hmc, mut cluster) = setup(1);
        let (mut hmc2, mut engine) = (
            Hmc::new(HmcConfig::paper(), 1 << 20),
            Engine::new(LogicConfig::paper()),
        );
        for i in 0..8u64 {
            let c = cluster.execute(&mut hmc, 0, load((i % 2) as usize, i * 256), 0);
            let e = engine.execute(&mut hmc2, load((i % 2) as usize, i * 256), 0);
            assert_eq!(c, e, "instruction {i}");
        }
        assert_eq!(cluster.stats(), engine.stats());
    }
}
