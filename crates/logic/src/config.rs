//! Logic-layer configuration (paper Table I).

use hipe_sim::{ClockDomain, Cycle, Freq};

/// Configuration of the HIVE/HIPE logic-layer engine.
///
/// Latencies are given in CPU cycles (Table I lists them as
/// "cpu-cycles" directly: 2-alu, 6-mul, 40-div integer; 10-alu,
/// 10-mul, 40-div floating point), while the sequencer runs at the
/// logic-layer clock of 1 GHz.
///
/// # Example
///
/// ```
/// use hipe_logic::LogicConfig;
/// let c = LogicConfig::paper();
/// assert_eq!(c.registers, 36);
/// assert_eq!(c.int_alu_latency, 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicConfig {
    /// Engine clock.
    pub freq: Freq,
    /// Reference CPU clock.
    pub cpu_freq: Freq,
    /// Registers in the bank (36 x 256 B balanced design).
    pub registers: usize,
    /// Integer ALU latency, CPU cycles.
    pub int_alu_latency: Cycle,
    /// Integer multiply latency, CPU cycles.
    pub int_mul_latency: Cycle,
    /// Integer divide latency, CPU cycles.
    pub int_div_latency: Cycle,
    /// FP ALU latency, CPU cycles.
    pub fp_alu_latency: Cycle,
    /// FP multiply latency, CPU cycles.
    pub fp_mul_latency: Cycle,
    /// FP divide latency, CPU cycles.
    pub fp_div_latency: Cycle,
    /// Whether the predication match logic is present (HIPE) or
    /// predicates are rejected (HIVE).
    pub predication: bool,
}

impl LogicConfig {
    /// Table I parameters for HIVE (no predication).
    pub fn paper() -> Self {
        LogicConfig {
            freq: Freq::ghz(1),
            cpu_freq: Freq::ghz(2),
            registers: hipe_isa::REGISTER_COUNT,
            int_alu_latency: 2,
            int_mul_latency: 6,
            int_div_latency: 40,
            fp_alu_latency: 10,
            fp_mul_latency: 10,
            fp_div_latency: 40,
            predication: false,
        }
    }

    /// Table I parameters for HIPE (predication enabled).
    pub fn paper_hipe() -> Self {
        LogicConfig {
            predication: true,
            ..LogicConfig::paper()
        }
    }

    /// CPU cycles per sequencer slot (one instruction issued per logic
    /// cycle).
    pub fn issue_interval(&self) -> Cycle {
        ClockDomain::new(self.freq, self.cpu_freq).to_cpu(1)
    }
}

impl Default for LogicConfig {
    fn default() -> Self {
        LogicConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_interval_is_two_cpu_cycles() {
        assert_eq!(LogicConfig::paper().issue_interval(), 2);
    }

    #[test]
    fn hipe_differs_only_in_predication() {
        let hive = LogicConfig::paper();
        let hipe = LogicConfig::paper_hipe();
        assert!(!hive.predication && hipe.predication);
        assert_eq!(hive.int_mul_latency, hipe.int_mul_latency);
    }
}
