//! The in-order logic-layer engine with interlock and predication.

use crate::bank::{RegisterBank, LANES};
use crate::config::LogicConfig;
use hipe_hmc::Hmc;
use hipe_isa::{AluOp, LogicInstr, OpSize, PredWhen, Predicate};
use hipe_sim::Cycle;

/// Activity counters of the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Instructions received (including squashed ones).
    pub instructions: u64,
    /// Loads that accessed DRAM.
    pub dram_loads: u64,
    /// Stores that accessed DRAM.
    pub dram_stores: u64,
    /// ALU operations executed.
    pub alu_ops: u64,
    /// Instructions squashed by the predication match logic.
    pub squashed: u64,
    /// Lock/unlock blocks completed.
    pub blocks: u64,
}

impl EngineStats {
    /// Returns the counter-wise sum of `self` and `other` (used by the
    /// [`EngineCluster`](crate::EngineCluster) to report one merged
    /// activity view across its engines).
    pub fn merge(mut self, other: EngineStats) -> EngineStats {
        self += other;
        self
    }

    /// Adds the counters into a [`Metrics`](hipe_trace::Metrics) registry under
    /// `{prefix}engine.*`.
    pub fn export_metrics(&self, prefix: &str, metrics: &mut hipe_trace::Metrics) {
        metrics.counter_add(&format!("{prefix}engine.instructions"), self.instructions);
        metrics.counter_add(&format!("{prefix}engine.dram_loads"), self.dram_loads);
        metrics.counter_add(&format!("{prefix}engine.dram_stores"), self.dram_stores);
        metrics.counter_add(&format!("{prefix}engine.alu_ops"), self.alu_ops);
        metrics.counter_add(&format!("{prefix}engine.squashed"), self.squashed);
        metrics.counter_add(&format!("{prefix}engine.blocks"), self.blocks);
    }
}

impl std::ops::AddAssign for EngineStats {
    fn add_assign(&mut self, other: EngineStats) {
        self.instructions += other.instructions;
        self.dram_loads += other.dram_loads;
        self.dram_stores += other.dram_stores;
        self.alu_ops += other.alu_ops;
        self.squashed += other.squashed;
        self.blocks += other.blocks;
    }
}

impl std::iter::Sum for EngineStats {
    fn sum<I: Iterator<Item = EngineStats>>(iter: I) -> EngineStats {
        iter.fold(EngineStats::default(), EngineStats::merge)
    }
}

/// Result of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Cycle at which the instruction's effect is complete: data in the
    /// register (load), data in DRAM (store), result ready (ALU), or
    /// acknowledgement sent (unlock).
    pub done: Cycle,
    /// `false` when the predication match logic squashed the
    /// instruction.
    pub performed: bool,
}

/// The HIVE/HIPE logic-layer engine.
///
/// See the crate documentation for the modelled micro-architecture.
/// Instructions are supplied in program order with the cycle at which
/// each arrives from the host ([`execute`](Self::execute)); the engine
/// handles sequencing, interlock and predication internally.
#[derive(Debug)]
pub struct Engine {
    cfg: LogicConfig,
    bank: RegisterBank,
    /// Next free sequencer slot (CPU cycles).
    seq: Cycle,
    /// Completion horizon of the current lock/unlock block.
    block_horizon: Cycle,
    stats: EngineStats,
}

impl Engine {
    /// Creates an idle engine.
    pub fn new(cfg: LogicConfig) -> Self {
        Engine {
            bank: RegisterBank::new(cfg.registers),
            seq: 0,
            block_horizon: 0,
            stats: EngineStats::default(),
            cfg,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &LogicConfig {
        &self.cfg
    }

    /// The register bank (functional inspection).
    pub fn bank(&self) -> &RegisterBank {
        &self.bank
    }

    /// Activity counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Evaluates a predicate against the current zero flags.
    fn predicate_passes(&self, p: Predicate) -> bool {
        match p.when {
            PredWhen::AnyNonZero => !self.bank.is_zero(p.reg),
            PredWhen::AllZero => self.bank.is_zero(p.reg),
        }
    }

    /// Executes one instruction arriving from the host at `arrival`.
    ///
    /// # Panics
    ///
    /// Panics if the instruction carries a predicate but the engine is
    /// configured without predication (a HIVE engine receiving HIPE
    /// code is a compiler bug), or if a register id is outside the
    /// configured bank.
    pub fn execute(&mut self, hmc: &mut Hmc, instr: LogicInstr, arrival: Cycle) -> Outcome {
        self.stats.instructions += 1;
        // One sequencer slot per instruction, in order.
        let issue = self.seq.max(arrival);
        self.seq = issue + self.cfg.issue_interval();

        // Predication match logic.
        if let Some(p) = instr.predicate() {
            assert!(
                self.cfg.predication,
                "predicated instruction on a non-predicated (HIVE) engine"
            );
            // The predicate register must be ready before the decision.
            // Like any operand wait, the decision happens at the
            // interlocked bank and does not block the sequencer from
            // issuing younger instructions.
            let decide = issue.max(self.bank.ready(p.reg));
            if !self.predicate_passes(p) {
                self.stats.squashed += 1;
                self.block_horizon = self.block_horizon.max(decide);
                return Outcome {
                    done: decide,
                    performed: false,
                };
            }
            return self.perform(hmc, instr, decide);
        }
        self.perform(hmc, instr, issue)
    }

    fn perform(&mut self, hmc: &mut Hmc, instr: LogicInstr, issue: Cycle) -> Outcome {
        let done = match instr {
            LogicInstr::Lock => {
                self.block_horizon = issue;
                issue
            }
            LogicInstr::Unlock => {
                self.stats.blocks += 1;
                issue.max(self.block_horizon)
            }
            LogicInstr::Load {
                dst, addr, size, ..
            } => {
                self.stats.dram_loads += 1;
                // WAR interlock: the destination register must have been
                // consumed by all earlier readers before it is refilled.
                let start = issue.max(self.bank.last_consumed(dst));
                let data_ready = hmc.internal_read(start, addr, size.bytes());
                let value = read_lanes(hmc, addr, size);
                self.bank.write(dst, value, data_ready);
                data_ready
            }
            LogicInstr::Store {
                src, addr, size, ..
            } => {
                self.stats.dram_stores += 1;
                let start = issue.max(self.bank.ready(src));
                self.bank.consume(src, start);
                write_lanes(hmc, addr, size, self.bank.lanes(src));
                hmc.internal_write(start, addr, size.bytes())
            }
            LogicInstr::Alu {
                op,
                dst,
                a,
                b,
                size,
                ..
            } => {
                self.stats.alu_ops += 1;
                hmc.charge_logic_op();
                let mut start = issue.max(self.bank.ready(a));
                if let Some(rb) = b {
                    start = start.max(self.bank.ready(rb));
                }
                start = start.max(self.bank.last_consumed(dst));
                if op.merges_dst() {
                    // Read-modify-write: the previous destination lanes
                    // are a true source operand.
                    start = start.max(self.bank.ready(dst));
                    self.bank.consume(dst, start);
                }
                self.bank.consume(a, start);
                if let Some(rb) = b {
                    self.bank.consume(rb, start);
                }
                let latency = if op.is_mul_class() {
                    self.cfg.int_mul_latency
                } else {
                    self.cfg.int_alu_latency
                };
                let end = start + latency;
                let value = eval_alu(
                    op,
                    self.bank.lanes(a),
                    b.map(|rb| *self.bank.lanes(rb)),
                    *self.bank.lanes(dst),
                    size,
                );
                self.bank.write(dst, value, end);
                end
            }
        };
        self.block_horizon = self.block_horizon.max(done);
        Outcome {
            done,
            performed: true,
        }
    }
}

/// Reads `size` bytes at `addr` from the cube image as i64 lanes
/// (unused high lanes zeroed). Lanes decode straight off the borrowed
/// image slice — no per-lane byte staging.
fn read_lanes(hmc: &Hmc, addr: u64, size: OpSize) -> [i64; LANES] {
    let mut out = [0i64; LANES];
    let bytes = hmc.read_bytes(addr, size.bytes() as usize);
    for (lane, chunk) in out.iter_mut().zip(bytes.chunks_exact(8)) {
        *lane = i64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    out
}

/// Writes the low `size` bytes of `lanes` to the cube image, encoding
/// each lane directly into the borrowed image slice — the store path
/// allocates nothing.
fn write_lanes(hmc: &mut Hmc, addr: u64, size: OpSize, lanes: &[i64; LANES]) {
    let image = hmc.bytes_mut(addr, size.bytes() as usize);
    for (chunk, lane) in image.chunks_exact_mut(8).zip(lanes) {
        chunk.copy_from_slice(&lane.to_le_bytes());
    }
}

/// Lane-wise functional evaluation. `dst` holds the destination's
/// previous lanes, consumed by the merging operations.
fn eval_alu(
    op: AluOp,
    a: &[i64; LANES],
    b: Option<[i64; LANES]>,
    dst: [i64; LANES],
    size: OpSize,
) -> [i64; LANES] {
    let mut out = [0i64; LANES];
    let n = size.lanes();
    match op {
        AluOp::CmpGeImm(x) => lanewise(&mut out, a, n, |v| (v >= x) as i64),
        AluOp::CmpGtImm(x) => lanewise(&mut out, a, n, |v| (v > x) as i64),
        AluOp::CmpLeImm(x) => lanewise(&mut out, a, n, |v| (v <= x) as i64),
        AluOp::CmpLtImm(x) => lanewise(&mut out, a, n, |v| (v < x) as i64),
        AluOp::CmpEqImm(x) => lanewise(&mut out, a, n, |v| (v == x) as i64),
        AluOp::CmpRangeImm(lo, hi) => lanewise(&mut out, a, n, |v| (lo <= v && v <= hi) as i64),
        AluOp::And | AluOp::Or | AluOp::Add | AluOp::Sub | AluOp::Mul => {
            let b = b.expect("two-operand ALU op requires a second register");
            for i in 0..n {
                out[i] = match op {
                    AluOp::And => a[i] & b[i],
                    AluOp::Or => a[i] | b[i],
                    AluOp::Add => a[i].wrapping_add(b[i]),
                    AluOp::Sub => a[i].wrapping_sub(b[i]),
                    AluOp::Mul => a[i].wrapping_mul(b[i]),
                    _ => unreachable!(),
                };
            }
        }
        AluOp::AddReduce { lane } => {
            assert!((lane as usize) < LANES, "reduce lane out of range");
            // Merge: untouched lanes keep the destination's value.
            out = dst;
            out[lane as usize] = match b {
                // Dot-product form: reduce the lane-wise products
                // (the aggregate tail passes the 0/1 match mask here).
                Some(b) => (0..n).fold(0i64, |acc, i| acc.wrapping_add(a[i].wrapping_mul(b[i]))),
                None => a.iter().take(n).fold(0i64, |acc, &v| acc.wrapping_add(v)),
            };
        }
        AluOp::TupleMatch { fields, stride } => {
            let stride = stride as usize;
            debug_assert!(stride > 0 && n.is_multiple_of(stride));
            let tuples = n / stride;
            for t in 0..tuples {
                let pass = fields.iter().flatten().all(|f| {
                    let v = a[t * stride + f.field as usize];
                    f.lo <= v && v <= f.hi
                });
                out[t] = pass as i64;
            }
        }
    }
    out
}

fn lanewise(out: &mut [i64; LANES], a: &[i64; LANES], n: usize, f: impl Fn(i64) -> i64) {
    for i in 0..n {
        out[i] = f(a[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hipe_hmc::HmcConfig;
    use hipe_isa::RegId;

    const SIZE: OpSize = OpSize::MAX;

    fn setup(pred: bool) -> (Hmc, Engine) {
        let cfg = if pred {
            LogicConfig::paper_hipe()
        } else {
            LogicConfig::paper()
        };
        (Hmc::new(HmcConfig::paper(), 1 << 20), Engine::new(cfg))
    }

    fn r(i: usize) -> RegId {
        RegId::new(i).expect("valid register")
    }

    fn load(dst: usize, addr: u64) -> LogicInstr {
        LogicInstr::Load {
            dst: r(dst),
            addr,
            size: SIZE,
            pred: None,
        }
    }

    #[test]
    fn stats_merge_sums_every_counter() {
        let a = EngineStats {
            instructions: 10,
            dram_loads: 3,
            dram_stores: 2,
            alu_ops: 4,
            squashed: 1,
            blocks: 1,
        };
        let b = EngineStats {
            instructions: 5,
            dram_loads: 1,
            dram_stores: 1,
            alu_ops: 2,
            squashed: 0,
            blocks: 1,
        };
        let merged = a.merge(b);
        assert_eq!(
            merged,
            EngineStats {
                instructions: 15,
                dram_loads: 4,
                dram_stores: 3,
                alu_ops: 6,
                squashed: 1,
                blocks: 2,
            }
        );
        let mut acc = a;
        acc += b;
        assert_eq!(acc, merged);
        assert_eq!([a, b].into_iter().sum::<EngineStats>(), merged);
        assert_eq!(a.merge(EngineStats::default()), a);
    }

    #[test]
    fn interlock_overlaps_independent_loads() {
        let (mut hmc, mut eng) = setup(false);
        // Two loads to different vaults issued back to back: the second
        // completes ~one sequencer slot after the first, not a full
        // DRAM latency later.
        let a = eng.execute(&mut hmc, load(0, 0), 0);
        let b = eng.execute(&mut hmc, load(1, 256), 0);
        assert!(b.done < a.done + 50, "loads serialized: {a:?} {b:?}");
    }

    #[test]
    fn true_dependency_stalls() {
        let (mut hmc, mut eng) = setup(false);
        hmc.write_u64(0, 7);
        let ld = eng.execute(&mut hmc, load(0, 0), 0);
        let cmp = eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpGeImm(5),
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        // The compare waits for the load's data.
        assert!(cmp.done >= ld.done + 2);
        assert_eq!(eng.bank().lane(r(1), 0), 1);
    }

    #[test]
    fn functional_compare_and_mask() {
        let (mut hmc, mut eng) = setup(false);
        for i in 0..32u64 {
            hmc.write_u64(i * 8, i);
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpLtImm(10),
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpGeImm(5),
                dst: r(2),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::And,
                dst: r(3),
                a: r(1),
                b: Some(r(2)),
                size: SIZE,
                pred: None,
            },
            0,
        );
        for lane in 0..32 {
            let expect = (5..10).contains(&lane) as i64;
            assert_eq!(eng.bank().lane(r(3), lane), expect, "lane {lane}");
        }
    }

    #[test]
    fn store_round_trips_through_dram_image() {
        let (mut hmc, mut eng) = setup(false);
        for i in 0..32u64 {
            hmc.write_u64(i * 8, 100 + i);
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        let st = eng.execute(
            &mut hmc,
            LogicInstr::Store {
                src: r(0),
                addr: 4096,
                size: SIZE,
                pred: None,
            },
            0,
        );
        assert!(st.performed);
        for i in 0..32u64 {
            assert_eq!(hmc.read_u64(4096 + i * 8), 100 + i);
        }
        assert_eq!(eng.stats().dram_stores, 1);
    }

    #[test]
    fn predication_squashes_on_zero_flag() {
        let (mut hmc, mut eng) = setup(true);
        // Region data that fails a compare -> zero mask.
        for i in 0..32u64 {
            hmc.write_u64(i * 8, 1000 + i);
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpLtImm(0),
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        let before = eng.stats().dram_loads;
        let skipped = eng.execute(
            &mut hmc,
            LogicInstr::Load {
                dst: r(2),
                addr: 8192,
                size: SIZE,
                pred: Some(Predicate::any_nonzero(r(1))),
            },
            0,
        );
        assert!(!skipped.performed);
        assert_eq!(eng.stats().dram_loads, before, "squashed load hit DRAM");
        assert_eq!(eng.stats().squashed, 1);
    }

    #[test]
    fn predication_executes_on_match() {
        let (mut hmc, mut eng) = setup(true);
        hmc.write_u64(0, 3); // lane 0 nonzero after compare
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpGeImm(1),
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        let out = eng.execute(
            &mut hmc,
            LogicInstr::Load {
                dst: r(2),
                addr: 8192,
                size: SIZE,
                pred: Some(Predicate::any_nonzero(r(1))),
            },
            0,
        );
        assert!(out.performed);
        assert_eq!(eng.stats().squashed, 0);
    }

    #[test]
    fn predicated_instruction_waits_for_flag() {
        let (mut hmc, mut eng) = setup(true);
        hmc.write_u64(0, 3);
        let ld = eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::CmpGeImm(1),
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        let gated = eng.execute(
            &mut hmc,
            LogicInstr::Load {
                dst: r(2),
                addr: 256,
                size: SIZE,
                pred: Some(Predicate::any_nonzero(r(1))),
            },
            0,
        );
        // The predicated load cannot start before the compare resolved,
        // which itself waited for the first load's data.
        assert!(gated.done > ld.done, "predicated load did not wait");
    }

    #[test]
    #[should_panic(expected = "non-predicated")]
    fn hive_engine_rejects_predicates() {
        let (mut hmc, mut eng) = setup(false);
        eng.execute(
            &mut hmc,
            LogicInstr::Load {
                dst: r(0),
                addr: 0,
                size: SIZE,
                pred: Some(Predicate::any_nonzero(r(1))),
            },
            0,
        );
    }

    #[test]
    fn unlock_waits_for_block() {
        let (mut hmc, mut eng) = setup(false);
        eng.execute(&mut hmc, LogicInstr::Lock, 0);
        let ld = eng.execute(&mut hmc, load(0, 0), 0);
        let ul = eng.execute(&mut hmc, LogicInstr::Unlock, 0);
        assert!(ul.done >= ld.done, "unlock before block completion");
        assert_eq!(eng.stats().blocks, 1);
    }

    #[test]
    fn add_reduce_sums_lanes() {
        let (mut hmc, mut eng) = setup(false);
        for i in 0..32u64 {
            hmc.write_u64(i * 8, 2);
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::AddReduce { lane: 0 },
                dst: r(1),
                a: r(0),
                b: None,
                size: SIZE,
                pred: None,
            },
            0,
        );
        assert_eq!(eng.bank().lane(r(1), 0), 64);
    }

    #[test]
    fn add_reduce_dots_against_a_mask_register() {
        let (mut hmc, mut eng) = setup(false);
        // Products at lanes 0..32 are 100 + i; mask selects even lanes.
        for i in 0..32u64 {
            hmc.write_u64(i * 8, 100 + i);
            hmc.write_u64(4096 + i * 8, (i % 2 == 0) as u64);
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(&mut hmc, load(1, 4096), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::AddReduce { lane: 0 },
                dst: r(2),
                a: r(0),
                b: Some(r(1)),
                size: SIZE,
                pred: None,
            },
            0,
        );
        let expect: i64 = (0..32).filter(|i| i % 2 == 0).map(|i| 100 + i).sum();
        assert_eq!(eng.bank().lane(r(2), 0), expect);
        // Lane 1 and beyond stay zero: a 16 B store of the result
        // writes [sum, 0].
        assert_eq!(eng.bank().lane(r(2), 1), 0);
    }

    #[test]
    fn masked_aggregate_tail_round_trips_a_16_byte_partial() {
        // The fused tail end to end at engine level: price * discount
        // dotted against a 0/1 mask, stored as a 16 B partial slot.
        let (mut hmc, mut eng) = setup(false);
        for i in 0..32u64 {
            hmc.write_u64(i * 8, 1000 + i); // price
            hmc.write_u64(4096 + i * 8, 5); // discount
            hmc.write_u64(8192 + i * 8, (i < 3) as u64); // mask
        }
        eng.execute(&mut hmc, load(0, 0), 0);
        eng.execute(&mut hmc, load(1, 4096), 0);
        eng.execute(&mut hmc, load(2, 8192), 0);
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::Mul,
                dst: r(0),
                a: r(0),
                b: Some(r(1)),
                size: SIZE,
                pred: None,
            },
            0,
        );
        eng.execute(
            &mut hmc,
            LogicInstr::Alu {
                op: AluOp::AddReduce { lane: 0 },
                dst: r(3),
                a: r(0),
                b: Some(r(2)),
                size: SIZE,
                pred: None,
            },
            0,
        );
        let st = eng.execute(
            &mut hmc,
            LogicInstr::Store {
                src: r(3),
                addr: 12288,
                size: OpSize::new(16).expect("16 B is supported"),
                pred: None,
            },
            0,
        );
        assert!(st.performed);
        let expect: u64 = (0..3).map(|i| (1000 + i) * 5).sum();
        assert_eq!(hmc.read_u64(12288), expect);
        assert_eq!(hmc.read_u64(12296), 0);
    }
}
