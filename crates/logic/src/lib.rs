//! HMC logic-layer engines: HIVE and the HIPE predication extension.
//!
//! This crate implements the paper's primary contribution. The
//! [`Engine`] models the instruction sequencer placed in the HMC logic
//! layer:
//!
//! * **in-order issue** at 1 GHz (2 CPU cycles per instruction slot);
//! * a **register bank** of 36 x 256 B entries ([`RegisterBank`]) with
//!   an **interlock scoreboard**: loads are non-blocking, execution
//!   stalls only on true data dependencies;
//! * **unified functional units** with Table I latencies (2-cycle int
//!   ALU, 6-cycle multiply, 40-cycle divide at 1 GHz);
//! * a **zero flag** per register, updated by every write;
//! * the **predication match logic** (HIPE): instructions carrying a
//!   [`hipe_isa::Predicate`] consult the zero flag of the predicate
//!   register and are squashed in a single sequencer slot when the
//!   condition fails — no DRAM access, no ALU occupancy, and no
//!   round-trip to the host processor.
//!
//! The engine is co-simulated functionally: loads really read the
//! cube's memory image, ALU ops really compute lane results, and
//! predication decisions are therefore driven by the actual data, as
//! they are in hardware.
//!
//! The paper's logic layer holds one such engine *per vault group*;
//! the [`EngineCluster`] models N of them co-simulated against a
//! shared cube, each with its own sequencer and register bank, and
//! enforces that every engine touches only its own vault group's
//! banks.
//!
//! # Example
//!
//! ```
//! use hipe_hmc::{Hmc, HmcConfig};
//! use hipe_isa::{AluOp, LogicInstr, OpSize, RegId};
//! use hipe_logic::{Engine, LogicConfig};
//!
//! let mut hmc = Hmc::new(HmcConfig::paper(), 1 << 16);
//! hmc.write_u64(0, 42);
//! let mut eng = Engine::new(LogicConfig::paper());
//! let r0 = RegId::new(0).expect("register 0 exists");
//! let r1 = RegId::new(1).expect("register 1 exists");
//! let size = OpSize::new(16).expect("16 B is a valid op size");
//!
//! eng.execute(&mut hmc, LogicInstr::Lock, 0);
//! eng.execute(&mut hmc, LogicInstr::Load { dst: r0, addr: 0, size, pred: None }, 0);
//! eng.execute(&mut hmc, LogicInstr::Alu {
//!     op: AluOp::CmpGeImm(10), dst: r1, a: r0, b: None, size, pred: None,
//! }, 0);
//! let out = eng.execute(&mut hmc, LogicInstr::Unlock, 0);
//! assert!(out.performed);
//! assert_eq!(eng.bank().lane(r1, 0), 1); // 42 >= 10
//! ```

mod bank;
mod cluster;
mod config;
mod engine;

pub use bank::RegisterBank;
pub use cluster::EngineCluster;
pub use config::LogicConfig;
pub use engine::{Engine, EngineStats, Outcome};
