//! The sharding layer: one query, N cube shards, combined answers.

use hipe::{Arch, PlanCache, RunReport, Session, System, SystemConfig, TableShape};
use hipe_db::scan::ScanResult;
use hipe_db::{Bitmask, Query};
use hipe_sim::{Cycle, WorkerPool};
use std::ops::Range;
use std::sync::Arc;

// Compile-time guard for host-parallel co-simulation: shard cubes and
// their warm sessions cross worker-thread boundaries in the scatter
// phase, so the whole cluster stack must stay `Send`.
const _: () = {
    fn _assert_send<T: Send>() {}
    fn _guards() {
        _assert_send::<Cluster>();
        _assert_send::<ClusterSession<'_>>();
        _assert_send::<ReplicaSet>();
    }
};

/// Host-side cycles to merge one extra shard's answer into the
/// gathered result (mask stitch + partial-sum add, already resident in
/// the host's cache after the per-shard runs). A single-shard cluster
/// merges nothing, so its cycle count equals the plain [`System`]'s.
pub const MERGE_CYCLES_PER_SHARD: Cycle = 64;

/// Configuration of a sharded cluster.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Total tuples across all shards.
    pub rows: usize,
    /// Generation seed of the (logical) monolithic table.
    pub seed: u64,
    /// Number of cube shards the row space is split over.
    pub shards: usize,
    /// Vault-group engines inside each shard's cube (the PR 4 knob,
    /// applied per shard).
    pub partitions: usize,
    /// Cubes backing each shard's row range. Every replica of a shard
    /// is built from the same rows and the same seed (via
    /// `LineitemTable::generate_range`), so replicas are bit-identical
    /// *by construction* — any replica can answer for its shard.
    pub replicas: usize,
    /// Generate the logical table with shipdate clustered by row
    /// ([`TableShape::ClusteredShipdate`] over the *cluster's* total
    /// rows, so shard tables stay exact slices of the monolithic
    /// clustered table). This is the shape under which shard zone-map
    /// rollups become disjoint and data skipping has teeth.
    pub clustered: bool,
    /// Compile every shard's scans against its zone map and let the
    /// scatter path skip shards whose table-level rollup proves no
    /// region can match ([`ClusterSession::run`] synthesizes the exact
    /// all-zero answer for them). Off by default — the historical
    /// figures measure full scatter.
    pub pruning: bool,
    /// Host worker threads driving the scatter phase (and cluster
    /// construction). Shard runs are independent between scatter and
    /// gather, and the gather merges in shard order, so every width
    /// produces bit-identical results and cycle counts; only host
    /// wall-clock changes. Defaults to the `HIPE_WORKERS` environment
    /// variable (1, i.e. fully serial, when unset) — and `workers: 1`
    /// runs exactly the historical single-threaded code path.
    pub workers: usize,
}

impl ClusterConfig {
    /// A paper-configured cluster: `shards` single-engine cubes, one
    /// replica each.
    pub fn new(rows: usize, seed: u64, shards: usize) -> Self {
        ClusterConfig {
            rows,
            seed,
            shards,
            partitions: 1,
            replicas: 1,
            clustered: false,
            pruning: false,
            workers: hipe_sim::env_workers(),
        }
    }

    /// A replicated cluster: `shards` row ranges, each backed by
    /// `replicas` bit-identical cubes.
    pub fn replicated(rows: usize, seed: u64, shards: usize, replicas: usize) -> Self {
        ClusterConfig {
            replicas,
            ..ClusterConfig::new(rows, seed, shards)
        }
    }

    /// A shipdate-clustered cluster with zone-map pruning and shard
    /// skipping enabled — the data-skipping experiment configuration.
    pub fn skipping(rows: usize, seed: u64, shards: usize) -> Self {
        ClusterConfig {
            clustered: true,
            pruning: true,
            ..ClusterConfig::new(rows, seed, shards)
        }
    }
}

/// The `R` bit-identical cubes backing one shard's row range.
///
/// Replicas share the range's rows and generation seed, so every
/// replica holds byte-identical column data and answers any query over
/// the range identically — which is what makes replica routing and
/// fail-stop failover answer-preserving (the service's profile pass
/// asserts it on every run).
#[derive(Debug)]
pub struct ReplicaSet {
    rows: Range<usize>,
    replicas: Vec<System>,
    /// One compiled-plan cache for the whole set: replicas are
    /// bit-identical, so their compiled plans are too, and every
    /// replica session opened over this set shares it
    /// ([`System::session_with_plans`]) — each `(arch, query)` pair is
    /// lowered once per shard, not once per replica.
    plans: Arc<PlanCache>,
}

impl ReplicaSet {
    /// Global row range this set serves.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// The compiled-plan cache shared by this set's replica sessions.
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.plans
    }

    /// Number of replicas backing the range.
    pub fn len(&self) -> usize {
        self.replicas.len()
    }

    /// Always `false`: a set holds at least one replica by
    /// construction.
    pub fn is_empty(&self) -> bool {
        self.replicas.is_empty()
    }

    /// Replica `r`'s [`System`].
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn replica(&self, r: usize) -> &System {
        assert!(
            r < self.replicas.len(),
            "replica {r} out of range ({} replicas)",
            self.replicas.len()
        );
        &self.replicas[r]
    }

    /// The primary (replica 0) — the cube the unrouted scatter-gather
    /// path reads.
    pub fn primary(&self) -> &System {
        &self.replicas[0]
    }
}

/// N [`System`] shards over one logical lineitem table.
///
/// The table's row space `0..rows` is split into `shards` contiguous,
/// near-equal ranges; shard `s` owns its range as a fully independent
/// [`System`] — its own generated sub-table (bit-identical to the
/// monolithic table's rows for that range, via
/// `LineitemTable::generate_range`), its own `DsmLayout`, its own cube
/// image, optionally partitioned internally across vault-group
/// engines.
///
/// Queries *scatter-gather*: every shard runs the same compiled query
/// over its rows, and the cluster combines the answers — mask
/// concatenation for selects, partial-sum addition for aggregates —
/// so a cluster result is bit-identical to running the query on one
/// monolithic [`System`] of the same `rows` and `seed` (the
/// integration tests assert it on all four architectures).
///
/// # Example
///
/// ```
/// use hipe::{Arch, System};
/// use hipe_db::Query;
/// use hipe_serve::Cluster;
///
/// let cluster = Cluster::new(4096, 7, 4);
/// let report = cluster.run(Arch::Hipe, &Query::q6());
/// let mono = System::new(4096, 7).run(Arch::Hipe, &Query::q6());
/// assert_eq!(report.result, mono.result);
/// ```
#[derive(Debug)]
pub struct Cluster {
    cfg: ClusterConfig,
    sets: Vec<ReplicaSet>,
    bounds: Vec<Range<usize>>,
    pool: WorkerPool,
}

impl Cluster {
    /// Creates a paper-configured cluster of `shards` single-engine
    /// cubes over `rows` total tuples.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is zero or exceeds `rows` (every shard needs
    /// at least one tuple).
    pub fn new(rows: usize, seed: u64, shards: usize) -> Self {
        Cluster::with_config(ClusterConfig::new(rows, seed, shards))
    }

    /// Creates a replicated cluster of `shards` row ranges, each
    /// backed by `replicas` bit-identical single-engine cubes.
    ///
    /// # Panics
    ///
    /// As [`with_config`](Self::with_config).
    pub fn replicated(rows: usize, seed: u64, shards: usize, replicas: usize) -> Self {
        Cluster::with_config(ClusterConfig::replicated(rows, seed, shards, replicas))
    }

    /// Creates a cluster with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.shards` is zero or exceeds `cfg.rows`, if
    /// `cfg.replicas` or `cfg.workers` is zero, or if `cfg.partitions`
    /// does not divide the vault sweep.
    pub fn with_config(cfg: ClusterConfig) -> Self {
        assert!(cfg.shards > 0, "a cluster needs at least one shard");
        assert!(
            cfg.shards <= cfg.rows,
            "{} shards over {} rows leaves empty shards",
            cfg.shards,
            cfg.rows
        );
        assert!(cfg.replicas > 0, "a shard needs at least one replica");
        // Balanced contiguous split: the first `rows % shards` shards
        // take one extra tuple, so ranges differ in size by at most 1.
        let base = cfg.rows / cfg.shards;
        let extra = cfg.rows % cfg.shards;
        let mut bounds = Vec::with_capacity(cfg.shards);
        let mut start = 0;
        for s in 0..cfg.shards {
            let len = base + usize::from(s < extra);
            bounds.push(start..start + len);
            start += len;
        }
        debug_assert_eq!(start, cfg.rows);
        // Shard shapes reference the *cluster's* row count, so every
        // shard table is an exact slice of the monolithic table of the
        // same shape (the db crate's slicing tests pin this).
        let shape = if cfg.clustered {
            TableShape::ClusteredShipdate {
                total_rows: cfg.rows,
            }
        } else {
            TableShape::Uniform
        };
        // Shard cubes (and their replicas) are independent, so
        // construction fans out over the pool; the gather is in shard
        // order, so the cluster is identical at every worker count.
        let pool = WorkerPool::new(cfg.workers);
        let sets = pool.run(bounds.clone(), |_, range| ReplicaSet {
            rows: range.clone(),
            replicas: (0..cfg.replicas)
                .map(|_| {
                    System::with_config(SystemConfig {
                        rows: range.len(),
                        row_offset: range.start,
                        partitions: cfg.partitions,
                        shape,
                        pruning: cfg.pruning,
                        ..SystemConfig::paper(range.len(), cfg.seed)
                    })
                })
                .collect(),
            plans: Arc::new(PlanCache::new()),
        });
        Cluster {
            cfg,
            sets,
            bounds,
            pool,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ClusterConfig {
        &self.cfg
    }

    /// Total tuples across all shards.
    pub fn rows(&self) -> usize {
        self.cfg.rows
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.sets.len()
    }

    /// Replicas backing each shard.
    pub fn replicas(&self) -> usize {
        self.cfg.replicas
    }

    /// Shard `s`'s primary [`System`] (replica 0).
    pub fn shard(&self, s: usize) -> &System {
        self.sets[s].primary()
    }

    /// Shard `s`'s [`ReplicaSet`].
    pub fn replica_set(&self, s: usize) -> &ReplicaSet {
        &self.sets[s]
    }

    /// Replica `r` of shard `s`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn replica(&self, s: usize, r: usize) -> &System {
        assert!(
            s < self.sets.len(),
            "shard {s} out of range ({} shards)",
            self.sets.len()
        );
        self.sets[s].replica(r)
    }

    /// Global row range owned by shard `s`.
    pub fn shard_rows(&self, s: usize) -> Range<usize> {
        self.bounds[s].clone()
    }

    /// Host cycles the gather step spends merging shard answers
    /// (zero for a single shard). Replication does not change the
    /// merge: however many replicas back a shard, exactly one answers
    /// per query.
    pub fn merge_cycles(&self) -> Cycle {
        (self.sets.len() as Cycle - 1) * MERGE_CYCLES_PER_SHARD
    }

    /// Total table materializations across all shards and replicas.
    pub fn materializations(&self) -> u64 {
        self.systems().map(System::materializations).sum()
    }

    /// Total query compilations across all shards and replicas.
    pub fn compilations(&self) -> u64 {
        self.systems().map(System::compilations).sum()
    }

    /// Every cube in the cluster, shard-major.
    fn systems(&self) -> impl Iterator<Item = &System> {
        self.sets.iter().flat_map(|set| set.replicas.iter())
    }

    /// The host worker pool driving this cluster's fan-out phases.
    pub fn pool(&self) -> &WorkerPool {
        &self.pool
    }

    /// Opens a warm cluster session: one materialized cube image per
    /// replica of every shard, plan caches warm across the whole
    /// batch. Replica sessions of a shard share the shard's
    /// [`PlanCache`], so each `(arch, query)` pair is lowered once per
    /// shard no matter how many replicas serve it. Image
    /// materialization fans out over the worker pool — each replica's
    /// image is built independently, so the warm state is identical at
    /// every worker count.
    pub fn session(&self) -> ClusterSession<'_> {
        ClusterSession {
            cluster: self,
            sessions: self.pool.run(self.sets.iter().collect(), |_, set| {
                set.replicas
                    .iter()
                    .map(|sys| sys.session_with_plans(Arc::clone(&set.plans)))
                    .collect()
            }),
        }
    }

    /// One-shot scatter-gather run (cold: materializes every shard).
    pub fn run(&self, arch: Arch, query: &Query) -> ClusterReport {
        self.session().run(arch, query)
    }
}

/// A warm execution context over every shard of a [`Cluster`].
///
/// Like [`Session`] but N-way: creating it materializes each shard's
/// cube image once; every run scatter-gathers through the warm images,
/// and each shard session's plan cache compiles a given `(arch,
/// query)` exactly once for the whole batch.
#[derive(Debug)]
pub struct ClusterSession<'a> {
    cluster: &'a Cluster,
    /// Warm sessions, `sessions[shard][replica]`.
    sessions: Vec<Vec<Session<'a>>>,
}

impl<'a> ClusterSession<'a> {
    /// The cluster this session executes against.
    pub fn cluster(&self) -> &Cluster {
        self.cluster
    }

    /// Mutable access to shard `s`'s primary warm [`Session`]
    /// (replica 0).
    pub fn shard_session(&mut self, s: usize) -> &mut Session<'a> {
        &mut self.sessions[s][0]
    }

    /// Mutable access to replica `r` of shard `s`'s warm [`Session`].
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn replica_session(&mut self, s: usize, r: usize) -> &mut Session<'a> {
        assert!(
            s < self.sessions.len(),
            "shard {s} out of range ({} shards)",
            self.sessions.len()
        );
        assert!(
            r < self.sessions[s].len(),
            "replica {r} out of range (shard {s} has {} replicas)",
            self.sessions[s].len()
        );
        &mut self.sessions[s][r]
    }

    /// Scatters `query` to every shard's primary replica and gathers
    /// the combined [`ClusterReport`] — the unrouted scatter-gather
    /// path, unchanged by replication.
    ///
    /// With [`ClusterConfig::pruning`] set, a shard whose zone-map
    /// table rollup proves no region can match is never dispatched at
    /// all: its slot in the gather is the synthesized exact all-zero
    /// answer ([`RunReport::skipped`]), it costs zero cycles, and the
    /// host merge only pays for shards that actually answered. The
    /// combined result is bit-identical either way — skipping is
    /// sound because the rollup covers every row of the shard.
    pub fn run(&mut self, arch: Arch, query: &Query) -> ClusterReport {
        let primaries = vec![0; self.sessions.len()];
        self.run_routed(arch, query, &primaries)
    }

    /// Scatters `query` to exactly **one** replica of each shard —
    /// `replica_of_shard[s]` names the replica answering for shard `s`
    /// — and gathers the combined [`ClusterReport`]. Because replicas
    /// are bit-identical by construction, the result equals
    /// [`run`](Self::run) for every choice vector (the routing
    /// equivalence tests assert it across architectures). Zone-map
    /// shard skipping applies exactly as in [`run`](Self::run) —
    /// replicas share their shard's rollup, so the skip decision is
    /// routing-independent.
    ///
    /// # Panics
    ///
    /// Panics if `replica_of_shard` is not one entry per shard or
    /// names a replica out of range.
    pub fn run_routed(
        &mut self,
        arch: Arch,
        query: &Query,
        replica_of_shard: &[usize],
    ) -> ClusterReport {
        assert_eq!(
            replica_of_shard.len(),
            self.sessions.len(),
            "routing vector must name one replica per shard"
        );
        // Scatter: the chosen replica sessions are disjoint `&mut`s, so
        // the shard runs fan out over the cluster's worker pool. Each
        // shard's simulated clock is its own — parallelism moves host
        // wall-clock only — and the pool gathers results in shard
        // order (never arrival order), so the merge below sees exactly
        // the serial sequence and the combined report is bit-identical
        // at every worker count.
        let chosen: Vec<&mut Session<'_>> = self
            .sessions
            .iter_mut()
            .zip(replica_of_shard)
            .enumerate()
            .map(|(s, (replicas, &r))| {
                assert!(
                    r < replicas.len(),
                    "replica {r} out of range (shard {s} has {} replicas)",
                    replicas.len()
                );
                &mut replicas[r]
            })
            .collect();
        let outcomes: Vec<(RunReport, bool)> = self.cluster.pool.run(chosen, |_, session| {
            let sys = session.system();
            let skip = sys.prune().is_some_and(|zm| !zm.table_may_match(query));
            let report = if skip {
                RunReport::skipped(
                    arch,
                    sys.config().rows,
                    sys.layout().regions(),
                    query.aggregates(),
                )
            } else {
                session.run(arch, query)
            };
            (report, skip)
        });
        let (shard_reports, skipped) = outcomes.into_iter().unzip();
        combine(self.cluster, arch, query, shard_reports, skipped)
    }
}

/// Gathers shard answers into the cluster-level result. `skipped[s]`
/// marks shards the scatter path never dispatched (zone-map shard
/// skipping): their synthesized all-zero reports still concatenate
/// into the mask, but the host merge only pays for answering shards.
fn combine(
    cluster: &Cluster,
    arch: Arch,
    query: &Query,
    shard_reports: Vec<RunReport>,
    skipped: Vec<bool>,
) -> ClusterReport {
    let mut bitmask = Bitmask::zeros(cluster.rows());
    let mut matches = 0;
    let mut aggregate: i128 = 0;
    for (report, range) in shard_reports.iter().zip(&cluster.bounds) {
        debug_assert_eq!(report.result.bitmask.len(), range.len());
        for i in report.result.bitmask.iter_ones() {
            bitmask.set(range.start + i);
        }
        matches += report.result.matches;
        aggregate += report.result.aggregate.unwrap_or(0);
    }
    // The shards run concurrently (one host thread driving N cubes
    // over independent link sets), so the scan critical path is the
    // slowest shard; the host then merges the answering shards'
    // results serially (a skipped shard's answer is known to be zero
    // without a merge step — its mask range stays the reset zeros).
    let answering = skipped.iter().filter(|&&s| !s).count();
    let merge = (answering.max(1) as Cycle - 1) * MERGE_CYCLES_PER_SHARD;
    let cycles = shard_reports
        .iter()
        .map(|r| r.cycles)
        .max()
        .expect("clusters have at least one shard")
        + merge;
    ClusterReport {
        arch,
        result: ScanResult {
            bitmask,
            matches,
            aggregate: query.aggregates().then_some(aggregate),
        },
        cycles,
        skipped,
        shard_reports,
    }
}

/// Outcome of one scatter-gather query execution on a [`Cluster`].
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Architecture every shard ran on.
    pub arch: Arch,
    /// Combined functional result over the whole logical table (mask
    /// concatenation, partial-sum addition).
    pub result: ScanResult,
    /// End-to-end cycles: the slowest shard plus the host-side merge
    /// of answering shards (zero merge for a single answering shard,
    /// so a one-shard cluster reports exactly the plain [`System`]
    /// cycles).
    pub cycles: Cycle,
    /// Per shard: `true` if the scatter path skipped it because its
    /// zone-map rollup proved no region could match (its entry in
    /// [`shard_reports`](Self::shard_reports) is the synthesized
    /// [`RunReport::skipped`] zero report). All `false` without
    /// [`ClusterConfig::pruning`].
    pub skipped: Vec<bool>,
    /// The per-shard reports, in shard order.
    pub shard_reports: Vec<RunReport>,
}

impl ClusterReport {
    /// How many shards the scatter path skipped outright.
    pub fn shards_skipped(&self) -> usize {
        self.skipped.iter().filter(|&&s| s).count()
    }

    /// Fraction of tuples selected across the whole cluster.
    pub fn selectivity(&self) -> f64 {
        if self.result.bitmask.is_empty() {
            0.0
        } else {
            self.result.matches as f64 / self.result.bitmask.len() as f64
        }
    }
}

impl std::fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} x{} shards: {} cyc, {} / {} tuples ({:.2} %) [shard cyc",
            self.arch,
            self.shard_reports.len(),
            self.cycles,
            self.result.matches,
            self.result.bitmask.len(),
            100.0 * self.selectivity(),
        )?;
        for (i, r) in self.shard_reports.iter().enumerate() {
            let sep = if i == 0 { ' ' } else { '/' };
            write!(f, "{sep}s{i}:{}", r.cycles)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_contiguous_split() {
        let c = Cluster::new(10, 1, 3);
        assert_eq!(c.shard_rows(0), 0..4);
        assert_eq!(c.shard_rows(1), 4..7);
        assert_eq!(c.shard_rows(2), 7..10);
        assert_eq!(c.rows(), 10);
        assert_eq!(c.shards(), 3);
    }

    #[test]
    fn shard_tables_match_the_monolithic_table() {
        use hipe_db::{Column, LineitemTable};
        let c = Cluster::new(200, 9, 3);
        let mono = LineitemTable::generate(200, 9);
        for s in 0..3 {
            let range = c.shard_rows(s);
            for col in Column::ALL {
                assert_eq!(
                    c.shard(s).table().column(col),
                    &mono.column(col)[range.clone()],
                    "shard {s} {col}"
                );
            }
        }
    }

    #[test]
    fn merge_cycles_zero_for_single_shard() {
        assert_eq!(Cluster::new(100, 1, 1).merge_cycles(), 0);
        assert_eq!(
            Cluster::new(100, 1, 4).merge_cycles(),
            3 * MERGE_CYCLES_PER_SHARD
        );
    }

    #[test]
    fn warm_session_materializes_each_shard_once() {
        let c = Cluster::new(256, 3, 2);
        let mut session = c.session();
        let q = Query::q6();
        let a = session.run(Arch::Hipe, &q);
        let b = session.run(Arch::Hipe, &q);
        assert_eq!(a.result, b.result);
        assert_eq!(c.materializations(), 2); // one per shard
        assert_eq!(c.compilations(), 2); // one per shard, cached on rerun
    }

    #[test]
    fn internally_partitioned_shards() {
        let cfg = ClusterConfig {
            partitions: 4,
            ..ClusterConfig::new(2048, 5, 2)
        };
        let c = Cluster::with_config(cfg);
        let report = c.run(Arch::Hipe, &Query::q6());
        let mono = System::new(2048, 5).run(Arch::Hipe, &Query::q6());
        assert_eq!(report.result, mono.result);
        assert_eq!(report.shard_reports[0].partitions.len(), 4);
    }

    #[test]
    fn replicas_are_bit_identical_by_construction() {
        use hipe_db::Column;
        let c = Cluster::replicated(300, 11, 2, 3);
        assert_eq!(c.replicas(), 3);
        for s in 0..2 {
            let set = c.replica_set(s);
            assert_eq!(set.rows(), c.shard_rows(s));
            assert_eq!(set.len(), 3);
            assert!(!set.is_empty());
            for r in 1..3 {
                for col in Column::ALL {
                    assert_eq!(
                        set.replica(r).table().column(col),
                        set.primary().table().column(col),
                        "shard {s} replica {r} {col}"
                    );
                }
            }
        }
    }

    #[test]
    fn replicated_cluster_compiles_once_per_shard_and_query() {
        // 4 shards x 2 replicas: every (arch, query) pair must be
        // lowered exactly once per shard — the replicas of a shard
        // share one plan cache (replicas are bit-identical, so plans
        // are too). Before the shared cache this counted once per
        // *replica*, i.e. 2x.
        let c = Cluster::replicated(1024, 7, 4, 2);
        let mut session = c.session();
        let queries = [Query::q6(), Query::quantity_below_permille(200)];
        let archs = [Arch::Hipe, Arch::HostX86];
        for &arch in &archs {
            for q in &queries {
                for r in 0..c.replicas() {
                    let routed = session.run_routed(arch, q, &vec![r; c.shards()]);
                    assert_eq!(routed.result.bitmask.len(), 1024);
                }
            }
        }
        // 4 shards x 2 archs x 2 queries = 16 lowerings, replicas free.
        assert_eq!(c.compilations(), 16);
        for s in 0..c.shards() {
            assert_eq!(c.replica_set(s).plan_cache().len(), 4);
            assert!(!c.replica_set(s).plan_cache().is_empty());
        }
        // A rerun of the whole mix stays fully cached.
        for &arch in &archs {
            for q in &queries {
                let _ = session.run(arch, q);
            }
        }
        assert_eq!(c.compilations(), 16);
    }

    #[test]
    fn routed_single_replica_runs_equal_the_primary_path() {
        let c = Cluster::replicated(640, 13, 2, 2);
        let mut session = c.session();
        let q = Query::q6();
        let primary = session.run(Arch::Hipe, &q);
        for picks in [[0, 0], [1, 1], [0, 1], [1, 0]] {
            let routed = session.run_routed(Arch::Hipe, &q, &picks);
            assert_eq!(routed.result, primary.result, "picks {picks:?}");
            assert_eq!(routed.cycles, primary.cycles, "picks {picks:?}");
        }
        // Session opened every replica's image once; the sweep above
        // stayed warm.
        assert_eq!(c.materializations(), 4);
    }

    #[test]
    fn single_replica_config_is_the_old_cluster() {
        let a = Cluster::new(256, 3, 2);
        let b = Cluster::with_config(ClusterConfig::replicated(256, 3, 2, 1));
        assert_eq!(a.replicas(), 1);
        let ra = a.run(Arch::Hipe, &Query::q6());
        let rb = b.run(Arch::Hipe, &Query::q6());
        assert_eq!(ra.result, rb.result);
        assert_eq!(ra.cycles, rb.cycles);
    }

    #[test]
    #[should_panic(expected = "at least one replica")]
    fn zero_replicas_panics() {
        let _ = Cluster::replicated(64, 0, 2, 0);
    }

    #[test]
    #[should_panic(expected = "replica 2 out of range")]
    fn replica_index_out_of_range_panics() {
        let c = Cluster::replicated(64, 0, 2, 2);
        let _ = c.replica(0, 2);
    }

    #[test]
    #[should_panic(expected = "one replica per shard")]
    fn routing_vector_length_is_checked() {
        let c = Cluster::replicated(64, 0, 2, 2);
        let _ = c.session().run_routed(Arch::Hipe, &Query::q6(), &[0]);
    }

    #[test]
    fn skipping_cluster_matches_full_scatter_and_skips_shards() {
        // A narrow shipdate window over a clustered 4-shard cluster
        // lands in one shard's day range; the rollups of the other
        // three prove emptiness and the scatter path skips them.
        let q = Query::shipdate_window_permille(100);
        let skip = Cluster::with_config(ClusterConfig::skipping(4096, 7, 4));
        let full = Cluster::with_config(ClusterConfig {
            clustered: true,
            ..ClusterConfig::new(4096, 7, 4)
        });
        let rs = skip.run(Arch::Hipe, &q);
        let rf = full.run(Arch::Hipe, &q);
        assert_eq!(rs.result, rf.result, "skipping changed the answer");
        assert!(rs.result.matches > 0, "window should select something");
        assert!(rs.shards_skipped() >= 2, "skipped only {:?}", rs.skipped);
        assert_eq!(rf.shards_skipped(), 0);
        // Skipped shards cost nothing and are excluded from the merge.
        assert!(rs.cycles < rf.cycles);
        for (s, skipped) in rs.skipped.iter().enumerate() {
            let report = &rs.shard_reports[s];
            if *skipped {
                assert_eq!(report.cycles, 0);
                assert_eq!(report.result.matches, 0);
                assert_eq!(report.regions_scanned, 0);
                assert!(report.regions_pruned > 0);
            } else {
                assert!(report.cycles > 0);
            }
        }
    }

    #[test]
    fn skipping_is_routing_independent() {
        let cfg = ClusterConfig {
            replicas: 2,
            ..ClusterConfig::skipping(2048, 11, 2)
        };
        let c = Cluster::with_config(cfg);
        let q = Query::shipdate_window_permille(100);
        let mut session = c.session();
        let primary = session.run(Arch::Hipe, &q);
        for picks in [[0, 0], [1, 1], [0, 1], [1, 0]] {
            let routed = session.run_routed(Arch::Hipe, &q, &picks);
            assert_eq!(routed.result, primary.result, "picks {picks:?}");
            assert_eq!(routed.cycles, primary.cycles, "picks {picks:?}");
            assert_eq!(routed.skipped, primary.skipped, "picks {picks:?}");
        }
    }

    #[test]
    fn unpruned_clusters_report_no_skips() {
        let c = Cluster::new(256, 3, 2);
        let r = c.run(Arch::Hipe, &Query::q6());
        assert_eq!(r.shards_skipped(), 0);
        assert_eq!(r.skipped, vec![false, false]);
    }

    #[test]
    fn display_names_shards() {
        let c = Cluster::new(128, 2, 2);
        let s = c.run(Arch::Hipe, &Query::q6()).to_string();
        assert!(s.contains("x2 shards"), "{s}");
    }

    #[test]
    #[should_panic(expected = "at least one shard")]
    fn zero_shards_panics() {
        let _ = Cluster::new(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "empty shards")]
    fn more_shards_than_rows_panics() {
        let _ = Cluster::new(3, 0, 4);
    }
}
