//! The fail-stop cube fault model.
//!
//! A [`FaultPlan`] kills one replica of one shard at a fixed cycle of
//! the service run: from `at_cycle` on, the replica serves nothing —
//! requests in service are cut mid-flight, queued and later requests
//! are refused (the [`hipe_sim::Server::serve_until`] semantics). The
//! front end learns of the failure `fault_detect` cycles later; until
//! then the router may keep sending sub-queries into the dark replica,
//! and every such sub-query is *re-dispatched* to a surviving replica
//! once detection fires (paying the detection wait plus a re-dispatch
//! cost). Because replicas are bit-identical by construction, the
//! re-routed answer — and therefore the service-level answer — is
//! bit-identical to the fault-free run; the failover tests kill each
//! replica across a sweep of cycles to prove it.

use hipe_sim::Cycle;

/// One injected fail-stop fault: replica `replica` of shard `shard`
/// goes dark at `at_cycle` and never comes back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Shard whose replica dies.
    pub shard: usize,
    /// Replica index that dies.
    pub replica: usize,
    /// Service-run cycle at which it stops serving.
    pub at_cycle: Cycle,
}

impl FaultPlan {
    /// A fault killing `replica` of `shard` at `at_cycle`.
    pub fn new(shard: usize, replica: usize, at_cycle: Cycle) -> Self {
        FaultPlan {
            shard,
            replica,
            at_cycle,
        }
    }
}

/// Checks a fault plan against a cluster shape: indices in range, no
/// replica killed twice, and every shard left with at least one
/// replica that never fails (otherwise some row range would become
/// unanswerable and the run could not serve every query).
///
/// # Panics
///
/// Panics (with a named message) on any violation.
pub(crate) fn validate(faults: &[FaultPlan], shards: usize, replicas: usize) {
    let mut killed = vec![0usize; shards];
    for (i, f) in faults.iter().enumerate() {
        assert!(
            f.shard < shards,
            "fault {i}: shard {} out of range ({shards} shards)",
            f.shard
        );
        assert!(
            f.replica < replicas,
            "fault {i}: replica {} out of range ({replicas} replicas)",
            f.replica
        );
        assert!(
            !faults[..i]
                .iter()
                .any(|g| g.shard == f.shard && g.replica == f.replica),
            "fault {i}: replica {} of shard {} killed twice",
            f.replica,
            f.shard
        );
        killed[f.shard] += 1;
        assert!(
            killed[f.shard] < replicas,
            "fault plan kills every replica of shard {} — no survivor to fail over to",
            f.shard
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_survivable_plan_validates() {
        let faults = [FaultPlan::new(0, 1, 100), FaultPlan::new(1, 0, 200)];
        validate(&faults, 2, 2);
        validate(&[], 1, 1);
    }

    #[test]
    #[should_panic(expected = "shard 5 out of range")]
    fn shard_out_of_range_panics() {
        validate(&[FaultPlan::new(5, 0, 1)], 2, 2);
    }

    #[test]
    #[should_panic(expected = "replica 2 out of range")]
    fn replica_out_of_range_panics() {
        validate(&[FaultPlan::new(0, 2, 1)], 2, 2);
    }

    #[test]
    #[should_panic(expected = "killed twice")]
    fn duplicate_kill_panics() {
        validate(
            &[FaultPlan::new(0, 1, 100), FaultPlan::new(0, 1, 500)],
            2,
            2,
        );
    }

    #[test]
    #[should_panic(expected = "kills every replica of shard 1")]
    fn killing_a_whole_shard_panics() {
        validate(
            &[FaultPlan::new(1, 0, 100), FaultPlan::new(1, 1, 200)],
            2,
            2,
        );
    }
}
