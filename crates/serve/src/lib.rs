//! `hipe-serve`: the sharded multi-cube query service.
//!
//! The paper evaluates its machines one query at a time on one cube;
//! this crate is the layer that multiplies a fast single cube into a
//! *service* — many cubes, many concurrent queries, measured as
//! throughput and tail latency rather than single-run cycles. Two
//! cooperating layers:
//!
//! # Sharding: [`Cluster`]
//!
//! A [`Cluster`] owns N [`System`](hipe::System) shards. The logical
//! lineitem table's row space is split into contiguous, near-equal
//! ranges; each shard generates exactly the monolithic table's rows
//! for its range (`LineitemTable::generate_range` jumps the RNG
//! stream to the shard's offset), lays them out in its own cube image
//! with its own `DsmLayout`, and can itself be partitioned across
//! vault-group engines (the PR 4 knob). Queries *scatter-gather*:
//!
//! ```text
//!            query ──► Cluster ──scatter──► shard 0 (System, cube 0, rows    0..r/N)
//!                         │      ├────────► shard 1 (System, cube 1, rows  r/N..2r/N)
//!                         │      └────────► shard N-1 (System, cube N-1, …)
//!                         ▼
//!            gather: mask concatenation + partial-sum addition
//! ```
//!
//! Each shard session caches compiled plans, so a batch compiles each
//! distinct `(arch, query)` once per shard. A single-shard cluster is
//! the plain `System`, bit for bit *and* cycle for cycle; a multi-
//! shard cluster returns bit-identical functional results on all four
//! architectures (the integration tests assert both).
//!
//! # Service scheduling: [`run_service`]
//!
//! [`run_service`] drives an open- or closed-loop query stream
//! ([`LoadModel`]) through a warm cluster with a discrete-event loop
//! built from the `hipe-sim` primitives: the front end and each shard
//! cube are [`Server`](hipe_sim::Server)s, admission is a
//! [`Window`](hipe_sim::Window), arrivals and the weighted query mix
//! draw from `SplitMix64`. Batching amortizes the front-end setup
//! cost; per-query service times are the deterministic modeled cycles
//! of actually executing that query on that shard. The
//! [`ServiceReport`] carries throughput (queries per gigacycle /
//! queries per second), per-shard utilization, and nearest-rank
//! p50/p95/p99 latency ([`hipe_sim::Samples`]) in modeled cycles.
//!
//! # Example
//!
//! ```
//! use hipe::Arch;
//! use hipe_db::Query;
//! use hipe_serve::{Cluster, ServiceConfig, run_service};
//!
//! let cluster = Cluster::new(2048, 7, 2);
//! let cfg = ServiceConfig::closed(Arch::Hipe, 32, vec![(Query::q6(), 1)], 4);
//! let report = run_service(&cluster, &cfg);
//! assert_eq!(report.queries, 32);
//! assert!(report.latency.p50 <= report.latency.p99);
//! ```

mod cluster;
mod service;

pub use cluster::{Cluster, ClusterConfig, ClusterReport, ClusterSession, MERGE_CYCLES_PER_SHARD};
pub use service::{run_service, LatencySummary, LoadModel, ServiceConfig, ServiceReport};
