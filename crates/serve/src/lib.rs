//! `hipe-serve`: the sharded, replicated multi-cube query service.
//!
//! The paper evaluates its machines one query at a time on one cube;
//! this crate is the layer that multiplies a fast single cube into a
//! *service* — many cubes, many concurrent queries, measured as
//! throughput and tail latency rather than single-run cycles. Three
//! cooperating layers:
//!
//! # Sharding and replication: [`Cluster`]
//!
//! A [`Cluster`] owns N shards, each backed by R bit-identical
//! [`System`](hipe::System) replicas (a [`ReplicaSet`]). The logical
//! lineitem table's row space is split into contiguous, near-equal
//! ranges; every replica of a shard generates exactly the monolithic
//! table's rows for its range (`LineitemTable::generate_range` jumps
//! the RNG stream to the shard's offset, and the same seed makes
//! replicas bit-identical *by construction*), lays them out in its
//! own cube image with its own `DsmLayout`, and can itself be
//! partitioned across vault-group engines (the PR 4 knob). Queries
//! *scatter-gather*, with a [`Router`] picking one replica per shard:
//!
//! ```text
//!            query ──► Cluster ──scatter──► shard 0 ─Router─► replica 0 │ replica 1 │ …
//!                         │      ├────────► shard 1 ─Router─► replica 0 │ replica 1 │ …
//!                         │      └────────► shard N-1 ───────► …         (rows split
//!                         ▼                                               per shard,
//!            gather: mask concatenation + partial-sum addition            copied per
//!                                                                         replica)
//! ```
//!
//! Each replica session caches compiled plans, so a batch compiles
//! each distinct `(arch, query)` once per replica. A single-shard,
//! single-replica cluster is the plain `System`, bit for bit *and*
//! cycle for cycle; a sharded, replicated cluster returns
//! bit-identical functional results on all four architectures
//! whatever the routing (the integration tests assert both).
//!
//! # Service scheduling: [`run_service`]
//!
//! [`run_service`] drives an open- or closed-loop query stream
//! ([`LoadModel`]) through a warm cluster with a discrete-event loop
//! built from the `hipe-sim` primitives: the front end and each
//! replica cube are [`Server`](hipe_sim::Server)s, admission is a
//! [`Window`](hipe_sim::Window), arrivals and the weighted query mix
//! draw from `SplitMix64`. Batching amortizes the front-end setup
//! cost; per-query service times are the deterministic modeled cycles
//! of actually executing that query on that replica. The configured
//! [`RoutingPolicy`] sends each scattered sub-query to exactly one
//! replica per shard, so R replicas serve ~R× the throughput; a
//! [`FaultPlan`] kills a replica mid-run fail-stop, and lost
//! sub-queries are detected and re-dispatched to a survivor with the
//! service answer provably unchanged. The [`ServiceReport`] carries
//! throughput (queries per gigacycle / queries per second), per-shard
//! and per-replica utilization, failover counts, the service-level
//! answers (plus a digest for CI), and nearest-rank p50/p95/p99
//! latency ([`hipe_sim::Samples`]) in modeled cycles.
//!
//! # Example
//!
//! ```
//! use hipe::Arch;
//! use hipe_db::Query;
//! use hipe_serve::{Cluster, ServiceConfig, run_service};
//!
//! let cluster = Cluster::new(2048, 7, 2);
//! let cfg = ServiceConfig::closed(Arch::Hipe, 32, vec![(Query::q6(), 1)], 4);
//! let report = run_service(&cluster, &cfg);
//! assert_eq!(report.queries, 32);
//! assert!(report.latency.p50 <= report.latency.p99);
//! ```

mod cluster;
mod fault;
mod routing;
mod service;

pub use cluster::{
    Cluster, ClusterConfig, ClusterReport, ClusterSession, ReplicaSet, MERGE_CYCLES_PER_SHARD,
};
pub use fault::FaultPlan;
pub use routing::{FastestReplica, LeastOutstanding, RoundRobin, RouteCtx, Router, RoutingPolicy};
pub use service::{
    run_service, run_service_traced, LatencySummary, LoadModel, ServiceConfig, ServiceReport,
};
