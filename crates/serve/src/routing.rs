//! Replica routing: the policy object in front of the per-shard
//! sessions.
//!
//! A query scattered to a shard must be answered by exactly **one** of
//! the shard's replicas (they are bit-identical by construction, so
//! any choice is answer-preserving). *Which* replica is a pure policy
//! decision, factored out behind the [`Router`] trait: the service
//! scheduler builds a [`RouteCtx`] snapshot of the candidate replicas'
//! state at dispatch time — liveness, backlog, outstanding queries,
//! measured durations — and the router picks an index. Three stock
//! policies cover the classic trade-offs:
//!
//! * [`RoundRobin`] — cyclic, state-oblivious; perfect spread under a
//!   uniform mix.
//! * [`LeastOutstanding`] — joins the replica with the fewest
//!   in-flight sub-queries (ties broken toward the earlier-free one);
//!   the classic "join the shortest queue" heuristic.
//! * [`FastestReplica`] — latency-aware: picks the replica whose
//!   *predicted completion* (backlog plus this query's measured
//!   duration on that replica) is earliest.
//!
//! Routers must return a replica the context marks alive; the
//! scheduler asserts it. A replica that went dark stays routable until
//! the front end *detects* the failure (`ServiceConfig::fault_detect`
//! cycles after the fault) — sub-queries sent into that blind spot are
//! what the failover path re-dispatches.

use hipe_sim::Cycle;

/// Snapshot of one shard's replica state offered to a [`Router`] at
/// dispatch time. All slices are indexed by replica; they share one
/// length (the shard's replica count).
#[derive(Debug, Clone, Copy)]
pub struct RouteCtx<'a> {
    /// Dispatch cycle of the sub-query being routed.
    pub now: Cycle,
    /// Mix index of the query being routed.
    pub query: usize,
    /// Whether each replica is believed alive (dark replicas stay
    /// `true` until the front end detects the failure).
    pub alive: &'a [bool],
    /// Cycle at which each replica's cube frees up (its backlog end).
    pub next_free: &'a [Cycle],
    /// Sub-queries dispatched to each replica and not yet complete at
    /// [`now`](Self::now).
    pub outstanding: &'a [u32],
    /// Measured cycles this query needs on each replica of this shard
    /// (from the service's profile pass).
    pub durations: &'a [Cycle],
}

impl RouteCtx<'_> {
    /// Number of replicas backing the shard.
    pub fn replicas(&self) -> usize {
        self.alive.len()
    }

    /// Indices of the replicas believed alive.
    pub fn alive_replicas(&self) -> impl Iterator<Item = usize> + '_ {
        self.alive
            .iter()
            .enumerate()
            .filter_map(|(r, &a)| a.then_some(r))
    }

    /// The replica's predicted completion were this sub-query sent to
    /// it now: its backlog end (or `now` if idle) plus the query's
    /// measured duration there.
    pub fn predicted_completion(&self, r: usize) -> Cycle {
        self.now.max(self.next_free[r]) + self.durations[r]
    }
}

/// A replica-selection policy. One router instance lives for a whole
/// service run, so policies may keep state (e.g. round-robin
/// cursors).
pub trait Router: std::fmt::Debug {
    /// Picks the replica of `shard` to serve the sub-query described
    /// by `ctx`. Must return an index `ctx.alive` marks `true`; the
    /// scheduler asserts it (and guarantees at least one alive
    /// candidate).
    fn pick(&mut self, shard: usize, ctx: &RouteCtx<'_>) -> usize;
}

/// Cyclic assignment: shard-local cursors advance one replica per
/// sub-query, skipping replicas known dead.
#[derive(Debug, Default)]
pub struct RoundRobin {
    next: Vec<usize>,
}

impl RoundRobin {
    /// A router with all cursors at replica 0.
    pub fn new() -> Self {
        RoundRobin::default()
    }
}

impl Router for RoundRobin {
    fn pick(&mut self, shard: usize, ctx: &RouteCtx<'_>) -> usize {
        if self.next.len() <= shard {
            self.next.resize(shard + 1, 0);
        }
        let n = ctx.replicas();
        let cursor = self.next[shard];
        for i in 0..n {
            let r = (cursor + i) % n;
            if ctx.alive[r] {
                self.next[shard] = (r + 1) % n;
                return r;
            }
        }
        panic!("no live replica offered for shard {shard}")
    }
}

/// Join-the-shortest-queue: the alive replica with the fewest
/// outstanding sub-queries, ties broken toward the one that frees
/// earliest, then the lowest index (deterministic).
#[derive(Debug, Default)]
pub struct LeastOutstanding;

impl LeastOutstanding {
    /// A stateless join-the-shortest-queue router.
    pub fn new() -> Self {
        LeastOutstanding
    }
}

impl Router for LeastOutstanding {
    fn pick(&mut self, shard: usize, ctx: &RouteCtx<'_>) -> usize {
        ctx.alive_replicas()
            .min_by_key(|&r| (ctx.outstanding[r], ctx.next_free[r], r))
            .unwrap_or_else(|| panic!("no live replica offered for shard {shard}"))
    }
}

/// Latency-aware: the alive replica with the earliest *predicted
/// completion* for this query — backlog end plus the query's measured
/// duration on that replica — ties broken toward the lowest index.
/// With heterogeneous replicas (or durations) this beats queue-length
/// heuristics; with bit-identical replicas it degrades gracefully to
/// earliest-free.
#[derive(Debug, Default)]
pub struct FastestReplica;

impl FastestReplica {
    /// A stateless predicted-completion router.
    pub fn new() -> Self {
        FastestReplica
    }
}

impl Router for FastestReplica {
    fn pick(&mut self, shard: usize, ctx: &RouteCtx<'_>) -> usize {
        ctx.alive_replicas()
            .min_by_key(|&r| (ctx.predicted_completion(r), r))
            .unwrap_or_else(|| panic!("no live replica offered for shard {shard}"))
    }
}

/// The stock policies, as a plain value for [`ServiceConfig`]
/// (`Router` implementations themselves may be stateful, so the config
/// carries the *name* and each run builds a fresh instance).
///
/// [`ServiceConfig`]: crate::ServiceConfig
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoutingPolicy {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastOutstanding`] (the default).
    #[default]
    LeastOutstanding,
    /// [`FastestReplica`].
    FastestReplica,
}

impl RoutingPolicy {
    /// Builds a fresh router implementing this policy.
    pub fn router(&self) -> Box<dyn Router> {
        match self {
            RoutingPolicy::RoundRobin => Box::new(RoundRobin::new()),
            RoutingPolicy::LeastOutstanding => Box::new(LeastOutstanding::new()),
            RoutingPolicy::FastestReplica => Box::new(FastestReplica::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(
        alive: &'a [bool],
        next_free: &'a [Cycle],
        outstanding: &'a [u32],
        durations: &'a [Cycle],
        now: Cycle,
    ) -> RouteCtx<'a> {
        RouteCtx {
            now,
            query: 0,
            alive,
            next_free,
            outstanding,
            durations,
        }
    }

    #[test]
    fn round_robin_cycles_and_skips_the_dead() {
        let mut rr = RoundRobin::new();
        let alive = [true, true, true];
        let c = ctx(&alive, &[0; 3], &[0; 3], &[10; 3], 0);
        assert_eq!(rr.pick(0, &c), 0);
        assert_eq!(rr.pick(0, &c), 1);
        assert_eq!(rr.pick(0, &c), 2);
        assert_eq!(rr.pick(0, &c), 0);
        // Shards keep independent cursors.
        assert_eq!(rr.pick(1, &c), 0);
        // A detected-dead replica is skipped without stalling the
        // cursor's rotation.
        let alive = [true, false, true];
        let c = ctx(&alive, &[0; 3], &[0; 3], &[10; 3], 0);
        assert_eq!(rr.pick(0, &c), 2);
        assert_eq!(rr.pick(0, &c), 0);
        assert_eq!(rr.pick(0, &c), 2);
    }

    #[test]
    fn least_outstanding_joins_the_shortest_queue() {
        let mut lo = LeastOutstanding::new();
        let alive = [true, true, true];
        let c = ctx(&alive, &[500, 100, 300], &[2, 1, 1], &[10; 3], 0);
        // Replicas 1 and 2 tie on outstanding; 1 frees earlier.
        assert_eq!(lo.pick(0, &c), 1);
        // The busiest replica is never picked while a shorter queue is
        // alive.
        let alive = [true, false, true];
        let c = ctx(&alive, &[500, 100, 300], &[2, 0, 1], &[10; 3], 0);
        assert_eq!(lo.pick(0, &c), 2);
    }

    #[test]
    fn fastest_replica_minimizes_predicted_completion() {
        let mut fr = FastestReplica::new();
        let alive = [true, true];
        // Replica 0 is idle but slow (duration 900); replica 1 is busy
        // until 200 but fast (duration 100): predicted completions are
        // 900 vs 300.
        let c = ctx(&alive, &[0, 200], &[0, 1], &[900, 100], 0);
        assert_eq!(fr.pick(0, &c), 1);
        // With equal durations it degrades to earliest-free.
        let c = ctx(&alive, &[400, 200], &[1, 1], &[100, 100], 0);
        assert_eq!(fr.pick(0, &c), 1);
        assert_eq!(c.predicted_completion(1), 300);
    }

    #[test]
    fn policy_builds_matching_routers() {
        let alive = [true, true];
        let c = ctx(&alive, &[100, 0], &[1, 0], &[10, 10], 0);
        assert_eq!(RoutingPolicy::default(), RoutingPolicy::LeastOutstanding);
        assert_eq!(RoutingPolicy::RoundRobin.router().pick(0, &c), 0);
        assert_eq!(RoutingPolicy::LeastOutstanding.router().pick(0, &c), 1);
        assert_eq!(RoutingPolicy::FastestReplica.router().pick(0, &c), 1);
    }

    #[test]
    #[should_panic(expected = "no live replica")]
    fn all_dead_candidates_panic() {
        let alive = [false, false];
        let c = ctx(&alive, &[0, 0], &[0, 0], &[10, 10], 0);
        let _ = LeastOutstanding::new().pick(3, &c);
    }
}
