//! The service scheduler: a discrete-event loop driving a query
//! stream through a warm, replicated [`Cluster`].
//!
//! Built from the `hipe-sim` primitives the component models already
//! use: each replica cube is a [`Server`] (one query resident at a
//! time), the service front end is a `Server` (admission, plan lookup
//! and scatter dispatch, amortized over a batch), and a [`Window`] caps
//! the queries in flight. Per-query service times are the *modeled
//! cycle counts* of actually executing that query on that replica —
//! each distinct query of the mix is executed once per replica of
//! every shard through the warm sessions (compiling once, thanks to
//! the session plan cache), and the deterministic measured durations
//! drive the event loop. Warm ≡ cold and run-order independence are
//! proven by the `hipe-core` session tests, which is what makes the
//! replay honest; the profile pass additionally asserts that every
//! replica of a shard returns the bit-identical answer, which is what
//! makes replica routing and failover answer-preserving.
//!
//! Each scattered sub-query goes to exactly **one** replica of each
//! shard, chosen by the configured [`Router`] policy; a
//! [`FaultPlan`] can kill a replica mid-run, in which case its lost
//! sub-queries are detected and re-dispatched to a survivor (the
//! fail-stop model of [`crate::fault`]).

use crate::cluster::{Cluster, ClusterReport, MERGE_CYCLES_PER_SHARD};
use crate::fault::{self, FaultPlan};
use crate::routing::{RouteCtx, Router, RoutingPolicy};
use hipe::{Arch, PhaseBreakdown};
use hipe_db::scan::ScanResult;
use hipe_db::{Query, SplitMix64};
use hipe_sim::{Cycle, Freq, Samples, ServeOutcome, Server, Window};
use hipe_trace::{TraceSink, TrackId, TrackKind};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How queries arrive at the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadModel {
    /// Open loop: arrivals are independent of completions, with
    /// exponentially distributed inter-arrival gaps of the given mean
    /// (cycles). Models internet-facing traffic; latency explodes
    /// past saturation.
    Open {
        /// Mean cycles between arrivals.
        mean_interarrival: Cycle,
    },
    /// Closed loop: `clients` concurrent issuers, each submitting its
    /// next query `think` cycles after its previous one completes.
    /// Models a fixed worker pool; throughput saturates at capacity.
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Cycles a client waits between completion and its next
        /// query.
        think: Cycle,
    },
}

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Architecture every shard executes on.
    pub arch: Arch,
    /// Total queries to serve.
    pub queries: usize,
    /// Weighted query mix: each arrival draws one entry with
    /// probability proportional to its weight.
    pub mix: Vec<(Query, u32)>,
    /// Arrival process.
    pub load: LoadModel,
    /// Queries dispatched per front-end batch. The front end pays
    /// [`batch_setup`](Self::batch_setup) once per batch, so larger
    /// batches trade arrival-to-dispatch latency for throughput.
    /// Under a closed loop the effective batch is capped at the
    /// client count (a batch can never fill beyond the queries the
    /// pool can have outstanding). A whole batch enters flight at
    /// once, so `batch` must not exceed
    /// [`max_in_flight`](Self::max_in_flight).
    pub batch: usize,
    /// Admission cap on queries in flight; later arrivals wait for
    /// the oldest in-flight query to complete.
    pub max_in_flight: usize,
    /// Arrival / mix-draw RNG seed.
    pub seed: u64,
    /// Front-end cycles per batch (plan-cache lookup, admission,
    /// scatter setup) — the cost batching amortizes.
    pub batch_setup: Cycle,
    /// Front-end cycles per query within a batch.
    pub per_query_dispatch: Cycle,
    /// Replica-selection policy placed in front of the per-shard
    /// sessions (each run builds a fresh [`Router`] from it).
    pub routing: RoutingPolicy,
    /// Fail-stop faults injected into the run (empty = fault-free).
    /// Validated up front: every shard must keep at least one replica
    /// that never fails.
    pub faults: Vec<FaultPlan>,
    /// Cycles between a replica going dark and the front end
    /// *detecting* it; sub-queries routed to the dark replica inside
    /// this blind spot are lost until detection fires.
    pub fault_detect: Cycle,
    /// Front-end cycles to re-dispatch one lost sub-query to a
    /// surviving replica after detection. Pure added latency on the
    /// failed-over query: re-dispatch rides the control path, not the
    /// batched data path, so it does not occupy the front-end server.
    pub redispatch_cost: Cycle,
}

impl ServiceConfig {
    /// An open-loop service run with default batching (4), admission
    /// (64 in flight), and front-end costs.
    pub fn open(
        arch: Arch,
        queries: usize,
        mix: Vec<(Query, u32)>,
        mean_interarrival: Cycle,
    ) -> Self {
        ServiceConfig {
            arch,
            queries,
            mix,
            load: LoadModel::Open { mean_interarrival },
            batch: 4,
            max_in_flight: 64,
            seed: 0x5EED_5E4E,
            batch_setup: 200,
            per_query_dispatch: 20,
            routing: RoutingPolicy::default(),
            faults: Vec::new(),
            fault_detect: 400,
            redispatch_cost: 40,
        }
    }

    /// A closed-loop service run with zero think time — the
    /// saturating load the throughput sweeps use.
    pub fn closed(arch: Arch, queries: usize, mix: Vec<(Query, u32)>, clients: usize) -> Self {
        ServiceConfig {
            load: LoadModel::Closed { clients, think: 0 },
            ..ServiceConfig::open(arch, queries, mix, 0)
        }
    }
}

/// Latency summary of a service run, in modeled cycles.
///
/// Percentiles are nearest-rank over every served query's
/// arrival-to-completion latency ([`hipe_sim::Samples`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Cycle,
    /// 95th percentile latency.
    pub p95: Cycle,
    /// 99th percentile latency.
    pub p99: Cycle,
    /// 99.9th percentile latency.
    pub p999: Cycle,
    /// Mean latency.
    pub mean: f64,
    /// Worst latency.
    pub max: Cycle,
}

impl LatencySummary {
    /// Summarizes a sample set (zeros when empty).
    fn of(samples: &mut Samples) -> LatencySummary {
        LatencySummary {
            p50: samples.p50().unwrap_or(0),
            p95: samples.p95().unwrap_or(0),
            p99: samples.p99().unwrap_or(0),
            p999: samples.p999().unwrap_or(0),
            mean: samples.mean(),
            max: samples.max().unwrap_or(0),
        }
    }
}

/// What one service run measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Architecture the shards executed on.
    pub arch: Arch,
    /// Shards in the cluster.
    pub shards: usize,
    /// Replicas backing each shard.
    pub replicas: usize,
    /// Queries served.
    pub queries: u64,
    /// Cycle at which the last query completed.
    pub makespan: Cycle,
    /// Arrival-to-completion latency distribution.
    pub latency: LatencySummary,
    /// Scatter-to-completion latency distribution of the individual
    /// per-shard sub-queries (queueing at the chosen replica included,
    /// gather merge excluded). Each shard accumulates its own
    /// [`Samples`]; the report folds them into one distribution with
    /// [`Samples::merge`].
    pub subquery_latency: LatencySummary,
    /// Busy cycles per shard, summed over its replicas (for a
    /// single-replica cluster this is the per-cube busy of old).
    pub shard_busy: Vec<Cycle>,
    /// Busy cycles per replica cube, `replica_busy[shard][replica]`.
    /// A replica killed by a fault accrues busy only up to its fault
    /// cycle.
    pub replica_busy: Vec<Vec<Cycle>>,
    /// Busy cycles of the front end.
    pub frontend_busy: Cycle,
    /// Cycles queries spent between their own arrival and admission.
    /// This includes the wait for their batch to fill — an early
    /// member genuinely waits from *its* arrival, not the batch's last
    /// one — of which [`batching_delay`](Self::batching_delay) is the
    /// batch-fill sub-component; `admission_stall - batching_delay`
    /// is the wait attributable purely to window occupancy.
    pub admission_stall: Cycle,
    /// Cycles queries spent waiting for their batch to fill (own
    /// arrival → batch-full), summed over queries. A sub-component of
    /// [`admission_stall`](Self::admission_stall): together with
    /// `frontend_busy` and the measured service times it reconstructs
    /// mean latency at low load (asserted by the accounting tests).
    pub batching_delay: Cycle,
    /// Replicas that went dark (fault plans that fired) within the
    /// measured run.
    pub failovers: u64,
    /// Sub-queries lost to a dark replica and re-dispatched to a
    /// survivor.
    pub redispatched: u64,
    /// Combined functional answer of each mix query, in mix order —
    /// the service-level result, proven bit-identical across replicas
    /// by the profile pass (and therefore across routings and
    /// failovers).
    pub answers: Vec<ScanResult>,
    /// Query compilations this run performed across all shards —
    /// real lowerings only. Each shard's replicas share one
    /// [`PlanCache`](hipe::PlanCache) (replicas are bit-identical, so
    /// their plans are too), so the count is one per distinct mix
    /// query per *shard*, however many replicas serve it or queries
    /// were served.
    pub compilations: u64,
    /// Table materializations this run performed (one per shard: the
    /// run opens a single warm session over the cluster).
    pub materializations: u64,
}

impl ServiceReport {
    /// Throughput in queries per gigacycle (integer, so the bench
    /// JSON and its CI check stay float-free).
    pub fn queries_per_gigacycle(&self) -> u64 {
        self.queries * 1_000_000_000 / self.makespan.max(1)
    }

    /// Throughput in queries per second at the given host clock.
    pub fn queries_per_sec(&self, cpu: Freq) -> f64 {
        self.queries as f64 * cpu.as_mhz() as f64 * 1e6 / self.makespan.max(1) as f64
    }

    /// Fraction of the makespan shard `s` spent executing queries,
    /// summed over its replicas (may exceed 1.0 when several replicas
    /// run concurrently; divide by [`replicas`](Self::replicas) for a
    /// per-cube average).
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a valid shard index.
    pub fn utilization(&self, s: usize) -> f64 {
        assert!(
            s < self.shard_busy.len(),
            "shard {s} out of range ({} shards)",
            self.shard_busy.len()
        );
        self.shard_busy[s] as f64 / self.makespan.max(1) as f64
    }

    /// Fraction of the makespan replica `r` of shard `s` spent
    /// executing queries.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn replica_utilization(&self, s: usize, r: usize) -> f64 {
        assert!(
            s < self.replica_busy.len(),
            "shard {s} out of range ({} shards)",
            self.replica_busy.len()
        );
        assert!(
            r < self.replica_busy[s].len(),
            "replica {r} out of range (shard {s} has {} replicas)",
            self.replica_busy[s].len()
        );
        self.replica_busy[s][r] as f64 / self.makespan.max(1) as f64
    }

    /// FNV-1a digest of the service-level answers (mask words, match
    /// counts, aggregates, in mix order) — a compact fingerprint for
    /// the bit-identical-failover CI check.
    pub fn answers_digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |v: u64| {
            for byte in v.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        for answer in &self.answers {
            eat(answer.matches as u64);
            match answer.aggregate {
                Some(sum) => {
                    eat(1);
                    eat(sum as u64);
                    eat((sum >> 64) as u64);
                }
                None => eat(0),
            }
            eat(answer.bitmask.len() as u64);
            for &word in answer.bitmask.words() {
                eat(word);
            }
        }
        hash
    }
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} x{} shards x{} replicas: {} queries in {} cyc ({} q/Gcyc), \
             latency p50/p95/p99/p999 {}/{}/{}/{} cyc, util",
            self.arch,
            self.shards,
            self.replicas,
            self.queries,
            self.makespan,
            self.queries_per_gigacycle(),
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.latency.p999,
        )?;
        for s in 0..self.shards {
            let sep = if s == 0 { ' ' } else { '/' };
            write!(f, "{sep}s{s}:{:.0}%", 100.0 * self.utilization(s))?;
        }
        if self.replicas > 1 {
            write!(f, ", replica util")?;
            for s in 0..self.shards {
                for r in 0..self.replicas {
                    let sep = if s == 0 && r == 0 { ' ' } else { '/' };
                    write!(
                        f,
                        "{sep}s{s}.r{r}:{:.0}%",
                        100.0 * self.replica_utilization(s, r)
                    )?;
                }
            }
        }
        if self.failovers > 0 {
            write!(
                f,
                ", {} failover(s), {} redispatched",
                self.failovers, self.redispatched
            )?;
        }
        Ok(())
    }
}

/// One query waiting in the current front-end batch.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Who issued it (event-loop tag: client id or sequence number).
    tag: usize,
    /// Mix index of the query.
    query: usize,
    /// Arrival cycle.
    arrival: Cycle,
}

/// A served query's timing.
#[derive(Debug, Clone, Copy)]
struct Served {
    tag: usize,
    completion: Cycle,
}

/// One replica cube in the event loop: its server, its (optional)
/// fail-stop cycle, and the completions of sub-queries still in
/// flight on it (for the router's outstanding counts).
#[derive(Debug)]
struct Replica {
    server: Server,
    fail_at: Option<Cycle>,
    inflight: BinaryHeap<Reverse<Cycle>>,
}

impl Replica {
    fn new(fail_at: Option<Cycle>) -> Self {
        Replica {
            server: Server::new(),
            fail_at,
            inflight: BinaryHeap::new(),
        }
    }

    /// Whether the front end believes this replica alive at `now`: a
    /// dark replica stays routable until detection fires, `detect`
    /// cycles after the fault.
    fn believed_alive(&self, now: Cycle, detect: Cycle) -> bool {
        self.fail_at.is_none_or(|f| now < f + detect)
    }
}

/// Trace plumbing of one service run: the sink plus the tracks the
/// scheduler emits onto — admission and front-end rows, an async
/// `queries` row for overlapping arrival-to-completion lifetimes, and
/// one sync row per shard×replica engine.
struct SchedTrace<'a> {
    sink: &'a mut dyn TraceSink,
    admission: TrackId,
    frontend: TrackId,
    queries: TrackId,
    /// `replica_tracks[shard][replica]`.
    replica_tracks: Vec<Vec<TrackId>>,
    /// Batches dispatched so far (names the front-end spans).
    batches: u64,
}

impl<'a> SchedTrace<'a> {
    /// Registers the run's tracks on `sink`.
    fn new(sink: &'a mut dyn TraceSink, shards: usize, replicas: usize) -> Self {
        let admission = sink.track("admission", TrackKind::Sync);
        let frontend = sink.track("front-end", TrackKind::Sync);
        let queries = sink.track("queries", TrackKind::Async);
        let replica_tracks = (0..shards)
            .map(|s| {
                (0..replicas)
                    .map(|r| sink.track(&format!("s{s}.r{r} engine"), TrackKind::Sync))
                    .collect()
            })
            .collect();
        SchedTrace {
            sink,
            admission,
            frontend,
            queries,
            replica_tracks,
            batches: 0,
        }
    }
}

/// Emits the measured phase breakdown of one sub-query nested inside
/// its replica-execute span starting at `start` (the replica's
/// occupancy begin). Mirrors `RunReport::trace_into`: no `dispatch`
/// child when dispatch coincides with scan (the x86 in-place path).
fn trace_phases(sink: &mut dyn TraceSink, track: TrackId, ph: PhaseBreakdown, start: Cycle) {
    let dispatch_end = if ph.dispatch < ph.scan {
        ph.dispatch
    } else {
        0
    };
    if dispatch_end > 0 {
        sink.span_on(track, "dispatch", start, start + dispatch_end, Vec::new());
    }
    if ph.scan > 0 {
        sink.span_on(
            track,
            "scan",
            start + dispatch_end,
            start + ph.scan,
            Vec::new(),
        );
    }
    if ph.gather_aggregate > 0 {
        sink.span_on(
            track,
            "gather",
            start + ph.scan,
            start + ph.scan + ph.gather_aggregate,
            Vec::new(),
        );
    }
}

/// The event-loop state: front end, replica servers, admission window.
struct Scheduler<'a> {
    cfg: &'a ServiceConfig,
    /// Measured cycles of mix query `q` on replica `r` of shard `s`:
    /// `durations[q][s][r]`.
    durations: &'a [Vec<Vec<Cycle>>],
    /// Measured phase breakdowns, same shape as
    /// [`durations`](Self::durations) (read only when tracing).
    phases: &'a [Vec<Vec<PhaseBreakdown>>],
    /// `skipped[q][s]`: the profile pass found shard `s`'s zone-map
    /// rollup prunes mix query `q` entirely — the scheduler never
    /// scatters that sub-query (no replica occupancy, no merge share).
    /// All `false` on unpruned clusters.
    skipped: &'a [Vec<bool>],
    frontend: Server,
    replicas: Vec<Vec<Replica>>,
    router: Box<dyn Router>,
    window: Window,
    batch: Vec<Pending>,
    batch_cap: usize,
    latencies: Samples,
    /// Scatter-to-completion sub-query latencies, one sample set per
    /// shard (merged into the report's
    /// [`subquery_latency`](ServiceReport::subquery_latency)).
    shard_latencies: Vec<Samples>,
    makespan: Cycle,
    batching_delay: Cycle,
    redispatched: u64,
    /// Scratch arrival buffer for group admission.
    arrivals: Vec<Cycle>,
    /// Trace emission state (`None` = tracing off, the zero-cost
    /// default).
    trace: Option<SchedTrace<'a>>,
}

impl<'a> Scheduler<'a> {
    fn new(
        cfg: &'a ServiceConfig,
        durations: &'a [Vec<Vec<Cycle>>],
        phases: &'a [Vec<Vec<PhaseBreakdown>>],
        skipped: &'a [Vec<bool>],
        cluster: &Cluster,
        trace: Option<SchedTrace<'a>>,
    ) -> Self {
        // A closed loop can never fill a batch beyond its client pool;
        // capping avoids waiting for arrivals that cannot happen.
        let batch_cap = match cfg.load {
            LoadModel::Open { .. } => cfg.batch,
            LoadModel::Closed { clients, .. } => cfg.batch.min(clients),
        };
        let replicas = (0..cluster.shards())
            .map(|s| {
                (0..cluster.replicas())
                    .map(|r| {
                        let fault = cfg
                            .faults
                            .iter()
                            .find(|f| f.shard == s && f.replica == r)
                            .map(|f| f.at_cycle);
                        Replica::new(fault)
                    })
                    .collect()
            })
            .collect();
        Scheduler {
            cfg,
            durations,
            phases,
            skipped,
            frontend: Server::new(),
            replicas,
            router: cfg.routing.router(),
            window: Window::new(cfg.max_in_flight),
            batch: Vec::with_capacity(batch_cap),
            batch_cap,
            latencies: Samples::new(),
            shard_latencies: vec![Samples::new(); cluster.shards()],
            makespan: 0,
            batching_delay: 0,
            redispatched: 0,
            arrivals: Vec::with_capacity(batch_cap),
            trace,
        }
    }

    /// Offers one arrival; returns the batch's completions when this
    /// arrival fills it.
    fn offer(&mut self, tag: usize, query: usize, arrival: Cycle) -> Vec<Served> {
        self.batch.push(Pending {
            tag,
            query,
            arrival,
        });
        if let Some(t) = &mut self.trace {
            t.sink.instant(
                t.admission,
                "arrival",
                arrival,
                vec![("tag", tag.into()), ("mix", query.into())],
            );
            t.sink
                .counter(t.admission, "batch_fill", arrival, self.batch.len() as u64);
        }
        if self.batch.len() >= self.batch_cap {
            self.dispatch()
        } else {
            Vec::new()
        }
    }

    /// Dispatches whatever the current batch holds (possibly short,
    /// at end of stream).
    fn dispatch(&mut self) -> Vec<Served> {
        if self.batch.is_empty() {
            return Vec::new();
        }
        // The batch leaves the front end once its last member has
        // arrived and the window holds a free slot for *every*
        // member — the batch enters flight as one unit, each member
        // consuming its own slot (batch <= max_in_flight is asserted
        // up front, so the group always fits). Every member is
        // charged admission stall from its *own* arrival; the
        // batch-fill share of that wait is also tallied separately as
        // batching delay.
        let arrived = self
            .batch
            .iter()
            .map(|p| p.arrival)
            .max()
            .expect("dispatch requires a non-empty batch");
        self.arrivals.clear();
        for p in &self.batch {
            self.arrivals.push(p.arrival);
            self.batching_delay += arrived - p.arrival;
        }
        let ready = self.window.admit_group(&self.arrivals);
        let cost = self.cfg.batch_setup + self.cfg.per_query_dispatch * self.batch.len() as Cycle;
        let (setup, scattered) = self.frontend.serve(ready, cost);
        if let Some(t) = &mut self.trace {
            t.sink.instant(
                t.admission,
                "admit",
                ready,
                vec![("queries", self.batch.len().into())],
            );
            t.sink.span_on(
                t.frontend,
                &format!("batch {}", t.batches),
                setup,
                scattered,
                vec![
                    ("queries", self.batch.len().into()),
                    ("setup_cyc", cost.into()),
                ],
            );
            t.batches += 1;
        }
        // Scatter each member to exactly one replica of every shard
        // the query can touch (the router picks which replica); a
        // replica serves one sub-query at a time, so members queue per
        // replica in batch order. Shards the profile pass proved
        // zone-map-skippable for this query are never scattered to —
        // they add no occupancy and no merge share. A query every
        // shard skips completes at the front end with zero merge.
        let mut served = Vec::with_capacity(self.batch.len());
        for p in std::mem::take(&mut self.batch) {
            let answering: Vec<usize> = (0..self.replicas.len())
                .filter(|&s| !self.skipped[p.query][s])
                .collect();
            let merge = (answering.len().max(1) as Cycle - 1) * MERGE_CYCLES_PER_SHARD;
            let slowest = answering
                .iter()
                .map(|&s| self.route_and_serve(p.tag, p.query, s, scattered))
                .max()
                .unwrap_or(scattered);
            let completion = slowest + merge;
            self.window.complete(completion);
            self.latencies.push(completion - p.arrival);
            self.makespan = self.makespan.max(completion);
            if let Some(t) = &mut self.trace {
                if merge > 0 {
                    t.sink.instant(
                        t.queries,
                        "gather",
                        slowest,
                        vec![("tag", p.tag.into()), ("merge_cyc", merge.into())],
                    );
                }
                t.sink.span_on(
                    t.queries,
                    &format!("q{}", p.query),
                    p.arrival,
                    completion,
                    vec![
                        ("tag", p.tag.into()),
                        ("mix", p.query.into()),
                        ("shards", answering.len().into()),
                    ],
                );
            }
            served.push(Served {
                tag: p.tag,
                completion,
            });
        }
        served
    }

    /// Routes one sub-query to a replica of `shard` at dispatch cycle
    /// `at` and serves it there, failing over to a survivor if the
    /// chosen replica is (or goes) dark; returns the sub-query's
    /// completion cycle.
    fn route_and_serve(&mut self, tag: usize, query: usize, shard: usize, mut at: Cycle) -> Cycle {
        let dispatched = at;
        // Scratch per-replica state for the router's context.
        let mut alive = Vec::with_capacity(self.replicas[shard].len());
        let mut next_free = Vec::with_capacity(alive.capacity());
        let mut outstanding = Vec::with_capacity(alive.capacity());
        loop {
            alive.clear();
            next_free.clear();
            outstanding.clear();
            for replica in self.replicas[shard].iter_mut() {
                while let Some(&Reverse(done)) = replica.inflight.peek() {
                    if done > at {
                        break;
                    }
                    replica.inflight.pop();
                }
                alive.push(replica.believed_alive(at, self.cfg.fault_detect));
                next_free.push(replica.server.next_free());
                outstanding.push(replica.inflight.len() as u32);
            }
            let ctx = RouteCtx {
                now: at,
                query,
                alive: &alive,
                next_free: &next_free,
                outstanding: &outstanding,
                durations: &self.durations[query][shard],
            };
            let r = self.router.pick(shard, &ctx);
            assert!(
                alive[r],
                "router picked replica {r} of shard {shard}, known dead since \
                 cycle {:?}",
                self.replicas[shard][r].fail_at
            );
            let duration = self.durations[query][shard][r];
            let replica = &mut self.replicas[shard][r];
            let served = match replica.fail_at {
                None => {
                    let (start, end) = replica.server.serve(at, duration);
                    Some((start, end))
                }
                Some(fail) => match replica.server.serve_until(at, duration, fail) {
                    ServeOutcome::Done { start, end } => Some((start, end)),
                    // The replica died with this sub-query queued or
                    // in service: the front end notices at
                    // `fail + fault_detect` and re-dispatches to a
                    // survivor. The retry lands past the detection
                    // horizon, so the dead replica is no longer a
                    // candidate and the loop terminates (every shard
                    // keeps a never-failing replica, validated up
                    // front).
                    ServeOutcome::Cut { .. } | ServeOutcome::Refused => None,
                },
            };
            match served {
                Some((start, end)) => {
                    self.replicas[shard][r].inflight.push(Reverse(end));
                    self.shard_latencies[shard].push(end - dispatched);
                    if let Some(t) = &mut self.trace {
                        let track = t.replica_tracks[shard][r];
                        t.sink.span_on(
                            track,
                            &format!("q{query}"),
                            start,
                            end,
                            vec![("tag", tag.into()), ("queued_cyc", (start - at).into())],
                        );
                        trace_phases(t.sink, track, self.phases[query][shard][r], start);
                    }
                    return end;
                }
                None => {
                    let fail = self.replicas[shard][r]
                        .fail_at
                        .expect("only a fault plan can cut a sub-query");
                    self.redispatched += 1;
                    at = fail + self.cfg.fault_detect + self.cfg.redispatch_cost;
                    if let Some(t) = &mut self.trace {
                        t.sink.instant(
                            t.frontend,
                            "redispatch",
                            at,
                            vec![
                                ("tag", tag.into()),
                                ("mix", query.into()),
                                ("shard", shard.into()),
                                ("replica", r.into()),
                            ],
                        );
                    }
                }
            }
        }
    }
}

/// Runs a query stream through a warm cluster and reports throughput,
/// utilization and tail latency.
///
/// The service opens one [`ClusterSession`](crate::ClusterSession)
/// (one materialization per replica cube), executes each distinct
/// query of the mix once on every replica of every shard to obtain its
/// functional answer and its deterministic per-replica durations
/// (asserting all replicas answer bit-identically), then drives the
/// configured arrival process through the discrete-event scheduler,
/// routing each scattered sub-query to one replica per shard and
/// failing over around any injected fault.
///
/// # Panics
///
/// Panics if the config asks for zero queries, an empty or zero-weight
/// mix, a zero batch, zero admitted queries in flight, or a fault plan
/// that is out of range or leaves some shard with no survivor.
pub fn run_service(cluster: &Cluster, cfg: &ServiceConfig) -> ServiceReport {
    run_service_traced(cluster, cfg, None)
}

/// [`run_service`] with an optional trace sink.
///
/// When a sink is given the run emits its full query lifecycle in the
/// simulated-cycle domain: `arrival`/`admit` instants and a
/// `batch_fill` counter on the admission track, batch spans and
/// `redispatch` instants on the front-end track, one async span per
/// query (arrival to completion, with a `gather` instant at the merge
/// point), nested dispatch/scan/gather execute spans on one track per
/// shard×replica engine, and `fault.kill` / `fault.detect` instants on
/// the dying replica's track.
///
/// Tracing is observational by construction: the scheduler replays
/// durations measured by the profile pass and emission only *reads*
/// event-loop state, so every reported number — makespan, latencies,
/// digests — is bit-identical to the untraced run (asserted by the
/// workspace's trace determinism tests).
pub fn run_service_traced(
    cluster: &Cluster,
    cfg: &ServiceConfig,
    trace: Option<&mut dyn TraceSink>,
) -> ServiceReport {
    assert!(cfg.queries > 0, "a service run needs at least one query");
    assert!(!cfg.mix.is_empty(), "the query mix is empty");
    assert!(cfg.batch > 0, "batch size must be non-zero");
    // A batch is scattered as one unit, so its members are in flight
    // together — a window smaller than the batch could never admit it.
    assert!(
        cfg.batch <= cfg.max_in_flight,
        "batch ({}) exceeds max_in_flight ({})",
        cfg.batch,
        cfg.max_in_flight
    );
    let total_weight: u64 = cfg.mix.iter().map(|&(_, w)| w as u64).sum();
    assert!(total_weight > 0, "the query mix has zero total weight");
    fault::validate(&cfg.faults, cluster.shards(), cluster.replicas());

    // Counter snapshots, so the report covers this run alone — a
    // long-lived cluster hosts many runs, and its lifetime totals
    // would misattribute earlier runs' work to this one.
    let compilations_before = cluster.compilations();
    let materializations_before = cluster.materializations();

    // Profile pass: one warm execution of each distinct mix query on
    // *every replica* of every shard. The plan caches make this
    // compile-once; determinism (warm == cold, order independence)
    // makes replaying the measured durations in the event loop exact.
    // Asserting every replica's combined answer bit-identical to
    // replica 0's is what licenses the router to pick any replica —
    // and failover to re-pick — without changing the service answer.
    let mut session = cluster.session();
    let mut durations: Vec<Vec<Vec<Cycle>>> = Vec::with_capacity(cfg.mix.len());
    let mut phases: Vec<Vec<Vec<PhaseBreakdown>>> = Vec::with_capacity(cfg.mix.len());
    let mut skipped: Vec<Vec<bool>> = Vec::with_capacity(cfg.mix.len());
    let mut answers: Vec<ScanResult> = Vec::with_capacity(cfg.mix.len());
    for (q, (query, _)) in cfg.mix.iter().enumerate() {
        // durations[q][s][r], built replica-major then transposed.
        let mut per_shard: Vec<Vec<Cycle>> = vec![Vec::new(); cluster.shards()];
        let mut shard_phases: Vec<Vec<PhaseBreakdown>> = vec![Vec::new(); cluster.shards()];
        let mut reference: Option<ClusterReport> = None;
        for r in 0..cluster.replicas() {
            let route = vec![r; cluster.shards()];
            let report = session.run_routed(cfg.arch, query, &route);
            for (s, shard_report) in report.shard_reports.iter().enumerate() {
                per_shard[s].push(shard_report.cycles);
                shard_phases[s].push(shard_report.phases);
            }
            match &reference {
                None => reference = Some(report),
                Some(reference) => {
                    assert_eq!(
                        report.result, reference.result,
                        "replica {r} disagrees with replica 0 on mix query {q}"
                    );
                    // Replicas share their shard's table, hence its
                    // rollup — the skip decision cannot depend on
                    // routing.
                    debug_assert_eq!(report.skipped, reference.skipped);
                }
            }
        }
        durations.push(per_shard);
        phases.push(shard_phases);
        let reference = reference.expect("clusters have at least one replica");
        skipped.push(reference.skipped);
        answers.push(reference.result);
    }

    let mut rng = SplitMix64::new(cfg.seed);
    let mut draw_query = move || {
        let mut ticket = rng.below(total_weight);
        for (i, &(_, w)) in cfg.mix.iter().enumerate() {
            if ticket < w as u64 {
                return i;
            }
            ticket -= w as u64;
        }
        unreachable!("ticket below total weight");
    };
    // Arrival gaps draw from an independent stream so changing the
    // mix does not perturb the arrival schedule (and vice versa).
    let mut arrival_rng = SplitMix64::new(cfg.seed ^ 0xA441_7A15);

    let sched_trace = trace.map(|sink| SchedTrace::new(sink, cluster.shards(), cluster.replicas()));
    let mut sched = Scheduler::new(cfg, &durations, &phases, &skipped, cluster, sched_trace);
    match cfg.load {
        LoadModel::Open { mean_interarrival } => {
            let mut now = 0;
            for tag in 0..cfg.queries {
                now += exponential(&mut arrival_rng, mean_interarrival);
                let _ = sched.offer(tag, draw_query(), now);
            }
            let _ = sched.dispatch();
        }
        LoadModel::Closed { clients, think } => {
            assert!(clients > 0, "a closed loop needs at least one client");
            // Min-heap of (next issue time, client); staggered epsilon
            // starts keep the order deterministic.
            let mut idle: BinaryHeap<Reverse<(Cycle, usize)>> =
                (0..clients).map(|c| Reverse((c as Cycle, c))).collect();
            let mut issued = 0;
            while issued < cfg.queries {
                // Every client is either idle or parked in the batch,
                // and the batch dispatches (re-queueing its members)
                // the moment it holds batch_cap <= clients of them —
                // so the pool can never be entirely parked.
                let Reverse((now, client)) = idle
                    .pop()
                    .expect("batch_cap <= clients keeps at least one client idle");
                issued += 1;
                for s in sched.offer(client, draw_query(), now) {
                    idle.push(Reverse((s.completion + think, s.tag)));
                }
            }
            let _ = sched.dispatch();
        }
    }

    // Faults that fired within the measured run: mark the kill and
    // the front end's detection on the dead replica's track.
    if let Some(t) = &mut sched.trace {
        for f in cfg.faults.iter().filter(|f| f.at_cycle < sched.makespan) {
            let track = t.replica_tracks[f.shard][f.replica];
            t.sink.instant(track, "fault.kill", f.at_cycle, Vec::new());
            t.sink.instant(
                track,
                "fault.detect",
                f.at_cycle + cfg.fault_detect,
                Vec::new(),
            );
        }
    }

    let latency = LatencySummary::of(&mut sched.latencies);
    let subquery_latency = {
        let mut merged = Samples::new();
        for shard in &sched.shard_latencies {
            merged.merge(shard);
        }
        LatencySummary::of(&mut merged)
    };
    let replica_busy: Vec<Vec<Cycle>> = sched
        .replicas
        .iter()
        .map(|shard| shard.iter().map(|r| r.server.busy_cycles()).collect())
        .collect();
    ServiceReport {
        arch: cfg.arch,
        shards: cluster.shards(),
        replicas: cluster.replicas(),
        queries: sched.latencies.count(),
        makespan: sched.makespan,
        latency,
        subquery_latency,
        shard_busy: replica_busy.iter().map(|s| s.iter().sum()).collect(),
        replica_busy,
        frontend_busy: sched.frontend.busy_cycles(),
        admission_stall: sched.window.stall_cycles(),
        batching_delay: sched.batching_delay,
        failovers: cfg
            .faults
            .iter()
            .filter(|f| f.at_cycle < sched.makespan)
            .count() as u64,
        redispatched: sched.redispatched,
        answers,
        compilations: cluster.compilations() - compilations_before,
        materializations: cluster.materializations() - materializations_before,
    }
}

/// A rounded exponential draw with the given mean (zero mean pins the
/// gap to zero — the back-to-back arrival extreme).
fn exponential(rng: &mut SplitMix64, mean: Cycle) -> Cycle {
    if mean == 0 {
        return 0;
    }
    // u uniform in (0, 1]: 53 mantissa bits, never exactly zero.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    (-u.ln() * mean as f64).round() as Cycle
}
