//! The service scheduler: a discrete-event loop driving a query
//! stream through a warm [`Cluster`].
//!
//! Built from the `hipe-sim` primitives the component models already
//! use: each shard cube is a [`Server`] (one query resident at a
//! time), the service front end is a `Server` (admission, plan lookup
//! and scatter dispatch, amortized over a batch), and a [`Window`] caps
//! the queries in flight. Per-query service times are the *modeled
//! cycle counts* of actually executing that query on that shard —
//! each distinct query of the mix is executed once per shard through
//! the warm sessions (compiling once, thanks to the session plan
//! cache), and the deterministic measured durations drive the event
//! loop. Warm ≡ cold and run-order independence are proven by the
//! `hipe-core` session tests, which is what makes the replay honest.

use crate::cluster::{Cluster, ClusterReport};
use hipe::Arch;
use hipe_db::{Query, SplitMix64};
use hipe_sim::{Cycle, Freq, Samples, Server, Window};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How queries arrive at the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadModel {
    /// Open loop: arrivals are independent of completions, with
    /// exponentially distributed inter-arrival gaps of the given mean
    /// (cycles). Models internet-facing traffic; latency explodes
    /// past saturation.
    Open {
        /// Mean cycles between arrivals.
        mean_interarrival: Cycle,
    },
    /// Closed loop: `clients` concurrent issuers, each submitting its
    /// next query `think` cycles after its previous one completes.
    /// Models a fixed worker pool; throughput saturates at capacity.
    Closed {
        /// Concurrent clients.
        clients: usize,
        /// Cycles a client waits between completion and its next
        /// query.
        think: Cycle,
    },
}

/// Configuration of one service run.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Architecture every shard executes on.
    pub arch: Arch,
    /// Total queries to serve.
    pub queries: usize,
    /// Weighted query mix: each arrival draws one entry with
    /// probability proportional to its weight.
    pub mix: Vec<(Query, u32)>,
    /// Arrival process.
    pub load: LoadModel,
    /// Queries dispatched per front-end batch. The front end pays
    /// [`batch_setup`](Self::batch_setup) once per batch, so larger
    /// batches trade arrival-to-dispatch latency for throughput.
    /// Under a closed loop the effective batch is capped at the
    /// client count (a batch can never fill beyond the queries the
    /// pool can have outstanding). A whole batch enters flight at
    /// once, so `batch` must not exceed
    /// [`max_in_flight`](Self::max_in_flight).
    pub batch: usize,
    /// Admission cap on queries in flight; later arrivals wait for
    /// the oldest in-flight query to complete.
    pub max_in_flight: usize,
    /// Arrival / mix-draw RNG seed.
    pub seed: u64,
    /// Front-end cycles per batch (plan-cache lookup, admission,
    /// scatter setup) — the cost batching amortizes.
    pub batch_setup: Cycle,
    /// Front-end cycles per query within a batch.
    pub per_query_dispatch: Cycle,
}

impl ServiceConfig {
    /// An open-loop service run with default batching (4), admission
    /// (64 in flight), and front-end costs.
    pub fn open(
        arch: Arch,
        queries: usize,
        mix: Vec<(Query, u32)>,
        mean_interarrival: Cycle,
    ) -> Self {
        ServiceConfig {
            arch,
            queries,
            mix,
            load: LoadModel::Open { mean_interarrival },
            batch: 4,
            max_in_flight: 64,
            seed: 0x5EED_5E4E,
            batch_setup: 200,
            per_query_dispatch: 20,
        }
    }

    /// A closed-loop service run with zero think time — the
    /// saturating load the throughput sweeps use.
    pub fn closed(arch: Arch, queries: usize, mix: Vec<(Query, u32)>, clients: usize) -> Self {
        ServiceConfig {
            load: LoadModel::Closed { clients, think: 0 },
            ..ServiceConfig::open(arch, queries, mix, 0)
        }
    }
}

/// Latency summary of a service run, in modeled cycles.
///
/// Percentiles are nearest-rank over every served query's
/// arrival-to-completion latency ([`hipe_sim::Samples`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Median latency.
    pub p50: Cycle,
    /// 95th percentile latency.
    pub p95: Cycle,
    /// 99th percentile latency.
    pub p99: Cycle,
    /// Mean latency.
    pub mean: f64,
    /// Worst latency.
    pub max: Cycle,
}

/// What one service run measured.
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Architecture the shards executed on.
    pub arch: Arch,
    /// Shards in the cluster.
    pub shards: usize,
    /// Queries served.
    pub queries: u64,
    /// Cycle at which the last query completed.
    pub makespan: Cycle,
    /// Arrival-to-completion latency distribution.
    pub latency: LatencySummary,
    /// Busy cycles per shard cube.
    pub shard_busy: Vec<Cycle>,
    /// Busy cycles of the front end.
    pub frontend_busy: Cycle,
    /// Cycles arrivals spent blocked on the admission window.
    pub admission_stall: Cycle,
    /// Query compilations this run performed across all shards (the
    /// plan cache keeps it at one per distinct mix query per shard,
    /// however many queries were served).
    pub compilations: u64,
    /// Table materializations this run performed (one per shard: the
    /// run opens a single warm session over the cluster).
    pub materializations: u64,
}

impl ServiceReport {
    /// Throughput in queries per gigacycle (integer, so the bench
    /// JSON and its CI check stay float-free).
    pub fn queries_per_gigacycle(&self) -> u64 {
        self.queries * 1_000_000_000 / self.makespan.max(1)
    }

    /// Throughput in queries per second at the given host clock.
    pub fn queries_per_sec(&self, cpu: Freq) -> f64 {
        self.queries as f64 * cpu.as_mhz() as f64 * 1e6 / self.makespan.max(1) as f64
    }

    /// Fraction of the makespan shard `s` spent executing queries.
    pub fn utilization(&self, s: usize) -> f64 {
        self.shard_busy[s] as f64 / self.makespan.max(1) as f64
    }
}

impl std::fmt::Display for ServiceReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} x{} shards: {} queries in {} cycles ({} q/Gcyc), \
             latency p50/p95/p99 {}/{}/{} cycles, util",
            self.arch,
            self.shards,
            self.queries,
            self.makespan,
            self.queries_per_gigacycle(),
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
        )?;
        for s in 0..self.shards {
            let sep = if s == 0 { ' ' } else { '/' };
            write!(f, "{sep}{:.0}%", 100.0 * self.utilization(s))?;
        }
        Ok(())
    }
}

/// One query waiting in the current front-end batch.
#[derive(Debug, Clone, Copy)]
struct Pending {
    /// Who issued it (event-loop tag: client id or sequence number).
    tag: usize,
    /// Mix index of the query.
    query: usize,
    /// Arrival cycle.
    arrival: Cycle,
}

/// A served query's timing.
#[derive(Debug, Clone, Copy)]
struct Served {
    tag: usize,
    completion: Cycle,
}

/// The event-loop state: front end, shard servers, admission window.
struct Scheduler<'a> {
    cfg: &'a ServiceConfig,
    /// Measured cycles of mix query `q` on shard `s`:
    /// `durations[q][s]`.
    durations: &'a [Vec<Cycle>],
    merge_cycles: Cycle,
    frontend: Server,
    shards: Vec<Server>,
    window: Window,
    batch: Vec<Pending>,
    batch_cap: usize,
    latencies: Samples,
    makespan: Cycle,
}

impl<'a> Scheduler<'a> {
    fn new(cfg: &'a ServiceConfig, durations: &'a [Vec<Cycle>], cluster: &Cluster) -> Self {
        // A closed loop can never fill a batch beyond its client pool;
        // capping avoids waiting for arrivals that cannot happen.
        let batch_cap = match cfg.load {
            LoadModel::Open { .. } => cfg.batch,
            LoadModel::Closed { clients, .. } => cfg.batch.min(clients),
        };
        Scheduler {
            cfg,
            durations,
            merge_cycles: cluster.merge_cycles(),
            frontend: Server::new(),
            shards: vec![Server::new(); cluster.shards()],
            window: Window::new(cfg.max_in_flight),
            batch: Vec::with_capacity(batch_cap),
            batch_cap,
            latencies: Samples::new(),
            makespan: 0,
        }
    }

    /// Offers one arrival; returns the batch's completions when this
    /// arrival fills it.
    fn offer(&mut self, tag: usize, query: usize, arrival: Cycle) -> Vec<Served> {
        self.batch.push(Pending {
            tag,
            query,
            arrival,
        });
        if self.batch.len() >= self.batch_cap {
            self.dispatch()
        } else {
            Vec::new()
        }
    }

    /// Dispatches whatever the current batch holds (possibly short,
    /// at end of stream).
    fn dispatch(&mut self) -> Vec<Served> {
        if self.batch.is_empty() {
            return Vec::new();
        }
        // The batch leaves the front end once its last member has
        // arrived and the window holds a free slot for *every*
        // member — the batch enters flight as one unit, each member
        // consuming its own slot (batch <= max_in_flight is asserted
        // up front, so the group always fits).
        let arrived = self
            .batch
            .iter()
            .map(|p| p.arrival)
            .max()
            .expect("dispatch requires a non-empty batch");
        let ready = self.window.admit_batch(arrived, self.batch.len());
        let cost = self.cfg.batch_setup + self.cfg.per_query_dispatch * self.batch.len() as Cycle;
        let (_, scattered) = self.frontend.serve(ready, cost);
        // Scatter each member to every shard; a shard serves one
        // query at a time, so members queue per shard in batch order.
        let mut served = Vec::with_capacity(self.batch.len());
        for p in self.batch.drain(..) {
            let slowest = self
                .shards
                .iter_mut()
                .zip(&self.durations[p.query])
                .map(|(shard, &cycles)| shard.serve(scattered, cycles).1)
                .max()
                .expect("clusters have at least one shard");
            let completion = slowest + self.merge_cycles;
            self.window.complete(completion);
            self.latencies.push(completion - p.arrival);
            self.makespan = self.makespan.max(completion);
            served.push(Served {
                tag: p.tag,
                completion,
            });
        }
        served
    }
}

/// Runs a query stream through a warm cluster and reports throughput,
/// utilization and tail latency.
///
/// The service opens one [`ClusterSession`](crate::ClusterSession)
/// (one materialization per shard), executes each distinct query of
/// the mix once per shard to obtain its functional answer and its
/// deterministic per-shard duration, then drives the configured
/// arrival process through the discrete-event scheduler.
///
/// # Panics
///
/// Panics if the config asks for zero queries, an empty or zero-weight
/// mix, a zero batch, or zero admitted queries in flight.
pub fn run_service(cluster: &Cluster, cfg: &ServiceConfig) -> ServiceReport {
    assert!(cfg.queries > 0, "a service run needs at least one query");
    assert!(!cfg.mix.is_empty(), "the query mix is empty");
    assert!(cfg.batch > 0, "batch size must be non-zero");
    // A batch is scattered as one unit, so its members are in flight
    // together — a window smaller than the batch could never admit it.
    assert!(
        cfg.batch <= cfg.max_in_flight,
        "batch ({}) exceeds max_in_flight ({})",
        cfg.batch,
        cfg.max_in_flight
    );
    let total_weight: u64 = cfg.mix.iter().map(|&(_, w)| w as u64).sum();
    assert!(total_weight > 0, "the query mix has zero total weight");

    // Counter snapshots, so the report covers this run alone — a
    // long-lived cluster hosts many runs, and its lifetime totals
    // would misattribute earlier runs' work to this one.
    let compilations_before = cluster.compilations();
    let materializations_before = cluster.materializations();

    // Profile pass: one warm execution of each distinct mix query per
    // shard. The plan caches make this compile-once; determinism (warm
    // == cold, order independence) makes replaying the measured
    // durations in the event loop exact.
    let mut session = cluster.session();
    let reports: Vec<ClusterReport> = cfg
        .mix
        .iter()
        .map(|(query, _)| session.run(cfg.arch, query))
        .collect();
    let durations: Vec<Vec<Cycle>> = reports
        .iter()
        .map(|r| r.shard_reports.iter().map(|s| s.cycles).collect())
        .collect();

    let mut rng = SplitMix64::new(cfg.seed);
    let mut draw_query = move || {
        let mut ticket = rng.below(total_weight);
        for (i, &(_, w)) in cfg.mix.iter().enumerate() {
            if ticket < w as u64 {
                return i;
            }
            ticket -= w as u64;
        }
        unreachable!("ticket below total weight");
    };
    // Arrival gaps draw from an independent stream so changing the
    // mix does not perturb the arrival schedule (and vice versa).
    let mut arrival_rng = SplitMix64::new(cfg.seed ^ 0xA441_7A15);

    let mut sched = Scheduler::new(cfg, &durations, cluster);
    match cfg.load {
        LoadModel::Open { mean_interarrival } => {
            let mut now = 0;
            for tag in 0..cfg.queries {
                now += exponential(&mut arrival_rng, mean_interarrival);
                let _ = sched.offer(tag, draw_query(), now);
            }
            let _ = sched.dispatch();
        }
        LoadModel::Closed { clients, think } => {
            assert!(clients > 0, "a closed loop needs at least one client");
            // Min-heap of (next issue time, client); staggered epsilon
            // starts keep the order deterministic.
            let mut idle: BinaryHeap<Reverse<(Cycle, usize)>> =
                (0..clients).map(|c| Reverse((c as Cycle, c))).collect();
            let mut issued = 0;
            while issued < cfg.queries {
                // Every client is either idle or parked in the batch,
                // and the batch dispatches (re-queueing its members)
                // the moment it holds batch_cap <= clients of them —
                // so the pool can never be entirely parked.
                let Reverse((now, client)) = idle
                    .pop()
                    .expect("batch_cap <= clients keeps at least one client idle");
                issued += 1;
                for s in sched.offer(client, draw_query(), now) {
                    idle.push(Reverse((s.completion + think, s.tag)));
                }
            }
            let _ = sched.dispatch();
        }
    }

    let latency = {
        let lat = &mut sched.latencies;
        LatencySummary {
            p50: lat.p50().expect("at least one query served"),
            p95: lat.p95().expect("at least one query served"),
            p99: lat.p99().expect("at least one query served"),
            mean: lat.mean(),
            max: lat.max().expect("at least one query served"),
        }
    };
    ServiceReport {
        arch: cfg.arch,
        shards: cluster.shards(),
        queries: sched.latencies.count(),
        makespan: sched.makespan,
        latency,
        shard_busy: sched.shards.iter().map(Server::busy_cycles).collect(),
        frontend_busy: sched.frontend.busy_cycles(),
        admission_stall: sched.window.stall_cycles(),
        compilations: cluster.compilations() - compilations_before,
        materializations: cluster.materializations() - materializations_before,
    }
}

/// A rounded exponential draw with the given mean (zero mean pins the
/// gap to zero — the back-to-back arrival extreme).
fn exponential(rng: &mut SplitMix64, mean: Cycle) -> Cycle {
    if mean == 0 {
        return 0;
    }
    // u uniform in (0, 1]: 53 mantissa bits, never exactly zero.
    let u = ((rng.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64;
    (-u.ln() * mean as f64).round() as Cycle
}
