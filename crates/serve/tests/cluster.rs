//! Shard-boundary and equivalence tests for the sharding layer.

use hipe::{Arch, System};
use hipe_db::scan::reference;
use hipe_db::{LineitemTable, Query};
use hipe_serve::{Cluster, ClusterConfig};

const SEED: u64 = 2018;

/// A single-shard cluster is the plain `System`: masks, sums and
/// cycles all identical, on every architecture.
#[test]
fn single_shard_cluster_is_the_plain_system() {
    let rows = 1500;
    let cluster = Cluster::new(rows, SEED, 1);
    let sys = System::new(rows, SEED);
    for arch in Arch::ALL {
        let c = cluster.run(arch, &Query::q6());
        let m = sys.run(arch, &Query::q6());
        assert_eq!(c.result, m.result, "{arch}: functional result");
        assert_eq!(c.cycles, m.cycles, "{arch}: cycles");
        assert_eq!(c.shard_reports.len(), 1);
        assert_eq!(c.shard_reports[0].phases, m.phases, "{arch}: phases");
    }
}

/// Multi-shard clusters return bit-identical results to the reference
/// executor across the selectivity sweep on all four architectures.
#[test]
fn cluster_matches_reference_across_selectivity_sweep() {
    let rows = 1200;
    let table = LineitemTable::generate(rows, SEED);
    for shards in [2, 3, 4] {
        let cluster = Cluster::new(rows, SEED, shards);
        let mut session = cluster.session();
        for pm in [0, 20, 100, 500, 1000] {
            for query in [
                Query::quantity_below_permille(pm),
                Query::quantity_below_permille(pm).with_aggregate(),
            ] {
                let expect = reference(&table, &query);
                for arch in Arch::ALL {
                    let got = session.run(arch, &query);
                    assert_eq!(got.result, expect, "{shards} shards, {arch}, permille {pm}");
                }
            }
        }
        // The whole sweep reused the per-shard materializations.
        assert_eq!(cluster.materializations(), shards as u64);
    }
}

/// Q6 agrees bit for bit between a 2-shard cluster and the monolithic
/// system — including the aggregate partial-sum combine.
#[test]
fn two_shard_q6_equals_monolithic() {
    let rows = 2048;
    let cluster = Cluster::new(rows, SEED, 2);
    let mono = System::new(rows, SEED);
    for arch in Arch::ALL {
        let c = cluster.run(arch, &Query::q6());
        let m = mono.run(arch, &Query::q6());
        assert_eq!(c.result, m.result, "{arch}");
        assert!(c.result.aggregate.is_some());
    }
}

/// Rows sitting exactly on shard edges land in exactly one shard and
/// match the monolithic mask bit by bit around every boundary.
#[test]
fn shard_edge_rows_are_owned_exactly_once() {
    // 1000 rows over 3 shards: bounds at 334 and 667 — neither is a
    // region (32-row) or word (64-bit) boundary.
    let rows = 1000;
    let cluster = Cluster::new(rows, SEED, 3);
    assert_eq!(cluster.shard_rows(0), 0..334);
    assert_eq!(cluster.shard_rows(1), 334..667);
    assert_eq!(cluster.shard_rows(2), 667..1000);
    let q = Query::quantity_below_permille(500);
    let got = cluster.run(Arch::Hipe, &q);
    let table = LineitemTable::generate(rows, SEED);
    let expect = reference(&table, &q);
    for boundary in [334usize, 667] {
        for i in boundary.saturating_sub(2)..(boundary + 2).min(rows) {
            assert_eq!(
                got.result.bitmask.get(i),
                expect.bitmask.get(i),
                "row {i} at shard boundary {boundary}"
            );
        }
    }
    assert_eq!(got.result, expect);
}

/// A shard smaller than one 32-row region still answers correctly.
#[test]
fn shard_smaller_than_one_region() {
    // 40 rows over 4 shards: every shard has 10 rows, under one
    // 32-row region.
    let rows = 40;
    let cluster = Cluster::new(rows, SEED, 4);
    for s in 0..4 {
        assert!(cluster.shard_rows(s).len() < 32);
    }
    let table = LineitemTable::generate(rows, SEED);
    for arch in Arch::ALL {
        for query in [Query::q6(), Query::quantity_below_permille(500)] {
            let got = cluster.run(arch, &query);
            assert_eq!(got.result, reference(&table, &query), "{arch} {query}");
        }
    }
}

/// The uneven remainder split (rows % shards != 0) stays exhaustive
/// and disjoint, and results still match.
#[test]
fn uneven_splits_cover_every_row() {
    for (rows, shards) in [(33, 2), (65, 4), (100, 7), (129, 8)] {
        let cluster = Cluster::new(rows, SEED, shards);
        let mut covered = 0;
        for s in 0..shards {
            let range = cluster.shard_rows(s);
            assert_eq!(range.start, covered, "rows={rows} shards={shards}");
            covered = range.end;
            assert_eq!(cluster.shard(s).table().rows(), range.len());
        }
        assert_eq!(covered, rows);
        let table = LineitemTable::generate(rows, SEED);
        let q = Query::q6();
        let got = cluster.run(Arch::Hipe, &q);
        assert_eq!(
            got.result,
            reference(&table, &q),
            "rows={rows} shards={shards}"
        );
    }
}

/// Shards partitioned internally (engines per cube) keep equivalence.
#[test]
fn partitioned_shards_match_monolithic() {
    let rows = 4096;
    let cluster = Cluster::with_config(ClusterConfig {
        partitions: 4,
        ..ClusterConfig::new(rows, SEED, 2)
    });
    let mono = System::new(rows, SEED);
    for arch in [Arch::Hive, Arch::Hipe] {
        let c = cluster.run(arch, &Query::q6());
        let m = mono.run(arch, &Query::q6());
        assert_eq!(c.result, m.result, "{arch}");
        assert_eq!(c.shard_reports[0].partitions.len(), 4);
    }
}

/// Compiled plans are cached per shard session: re-running the same
/// query batch compiles nothing new, and distinct queries compile
/// once each.
#[test]
fn batch_loops_compile_once_per_distinct_query() {
    let cluster = Cluster::new(512, SEED, 2);
    let mut session = cluster.session();
    let q6 = Query::q6();
    let scan = Query::quantity_below_permille(100);
    assert_eq!(cluster.compilations(), 0);
    let first = session.run(Arch::Hipe, &q6);
    assert_eq!(cluster.compilations(), 2); // one per shard
    for _ in 0..5 {
        let again = session.run(Arch::Hipe, &q6);
        assert_eq!(again.result, first.result);
    }
    assert_eq!(cluster.compilations(), 2, "reruns must not recompile");
    let _ = session.run(Arch::Hipe, &scan);
    assert_eq!(
        cluster.compilations(),
        4,
        "a new query compiles once per shard"
    );
    let _ = session.run(Arch::Hive, &q6);
    assert_eq!(
        cluster.compilations(),
        6,
        "a new arch compiles once per shard"
    );
    assert_eq!(cluster.materializations(), 2, "the whole batch stayed warm");
}

/// Cluster cycles are the slowest shard plus the merge term.
#[test]
fn cluster_cycles_are_slowest_shard_plus_merge() {
    let cluster = Cluster::new(1024, SEED, 4);
    let report = cluster.run(Arch::Hipe, &Query::q6());
    let slowest = report.shard_reports.iter().map(|r| r.cycles).max().unwrap();
    assert_eq!(report.cycles, slowest + cluster.merge_cycles());
    assert!(cluster.merge_cycles() > 0);
}
