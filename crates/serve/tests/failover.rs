//! Replication, routing and fail-stop failover tests for the service
//! scheduler.

use hipe::Arch;
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, FaultPlan, RoutingPolicy, ServiceConfig};

const SEED: u64 = 2018;

fn mix() -> Vec<(Query, u32)> {
    vec![
        (Query::q6(), 2),
        (Query::quantity_below_permille(100), 3),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ]
}

fn closed(queries: usize, clients: usize) -> ServiceConfig {
    ServiceConfig::closed(Arch::Hipe, queries, mix(), clients)
}

#[test]
fn replicas_multiply_saturated_throughput() {
    // The acceptance-criteria property at test scale: going from one
    // to two replicas per shard under a saturating closed loop nearly
    // doubles throughput (two sub-queries of a batch run concurrently
    // on the two copies of each shard).
    let single = run_service(&Cluster::new(2048, SEED, 4), &closed(48, 8));
    let double = run_service(&Cluster::replicated(2048, SEED, 4, 2), &closed(48, 8));
    assert_eq!(single.replicas, 1);
    assert_eq!(double.replicas, 2);
    assert_eq!(single.queries, double.queries);
    let (one, two) = (
        single.queries_per_gigacycle(),
        double.queries_per_gigacycle(),
    );
    assert!(
        two * 10 >= one * 17,
        "2 replicas {two} q/Gcyc < 1.7x of 1 replica {one} q/Gcyc"
    );
    // Answers are routing-independent.
    assert_eq!(single.answers, double.answers);
    assert_eq!(single.answers_digest(), double.answers_digest());
}

#[test]
fn every_routing_policy_preserves_answers_and_serves_everything() {
    let cluster = Cluster::replicated(1024, SEED, 2, 3);
    let mut digests = Vec::new();
    for routing in [
        RoutingPolicy::RoundRobin,
        RoutingPolicy::LeastOutstanding,
        RoutingPolicy::FastestReplica,
    ] {
        let report = run_service(
            &cluster,
            &ServiceConfig {
                routing,
                ..closed(36, 6)
            },
        );
        assert_eq!(report.queries, 36, "{routing:?}");
        assert_eq!(report.failovers, 0, "{routing:?}");
        digests.push(report.answers_digest());
    }
    assert!(
        digests.windows(2).all(|w| w[0] == w[1]),
        "policies disagree on the service answer: {digests:?}"
    );
}

#[test]
fn shard_busy_is_the_sum_over_its_replicas() {
    let report = run_service(&Cluster::replicated(1024, SEED, 2, 2), &closed(32, 8));
    assert_eq!(report.replica_busy.len(), report.shards);
    for s in 0..report.shards {
        assert_eq!(report.replica_busy[s].len(), report.replicas);
        assert_eq!(
            report.shard_busy[s],
            report.replica_busy[s].iter().sum::<u64>(),
            "shard {s}"
        );
        for r in 0..report.replicas {
            let u = report.replica_utilization(s, r);
            assert!((0.0..=1.0).contains(&u), "replica {s}/{r} utilization {u}");
        }
        // Two concurrent replicas may exceed 1.0 together but never 2.0.
        assert!(report.utilization(s) <= report.replicas as f64);
    }
}

#[test]
fn mid_run_replica_kill_is_answer_invariant() {
    let cluster = Cluster::replicated(1024, SEED, 2, 2);
    let clean = run_service(&cluster, &closed(40, 8));
    assert_eq!(clean.failovers, 0);
    assert_eq!(clean.redispatched, 0);
    let fault = FaultPlan::new(1, 0, clean.makespan / 2);
    let failed = run_service(
        &cluster,
        &ServiceConfig {
            faults: vec![fault],
            ..closed(40, 8)
        },
    );
    // Every query is still served, the fault is counted, lost
    // sub-queries were re-dispatched, and the service answer is
    // bit-identical to the fault-free run.
    assert_eq!(failed.queries, clean.queries);
    assert_eq!(failed.failovers, 1);
    assert!(
        failed.redispatched >= 1,
        "a saturated run must have had sub-queries in flight on the dark replica"
    );
    assert_eq!(failed.answers, clean.answers);
    assert_eq!(failed.answers_digest(), clean.answers_digest());
    // The dead replica stopped accruing busy cycles at the fault.
    assert!(failed.replica_busy[1][0] <= fault.at_cycle);
    // Detection + re-dispatch is pure added latency.
    assert!(failed.makespan >= clean.makespan);
    let s = failed.to_string();
    assert!(s.contains("1 failover(s)"), "{s}");
}

#[test]
fn a_fault_past_the_makespan_never_fires() {
    let cluster = Cluster::replicated(512, SEED, 2, 2);
    let clean = run_service(&cluster, &closed(24, 4));
    let failed = run_service(
        &cluster,
        &ServiceConfig {
            faults: vec![FaultPlan::new(0, 1, clean.makespan * 2)],
            ..closed(24, 4)
        },
    );
    assert_eq!(failed.failovers, 0);
    assert_eq!(failed.redispatched, 0);
    assert_eq!(failed.makespan, clean.makespan);
    assert_eq!(failed.shard_busy, clean.shard_busy);
}

#[test]
fn profile_pass_compiles_once_per_mix_query_per_shard() {
    let report = run_service(&Cluster::replicated(512, SEED, 2, 2), &closed(24, 4));
    // 3 mix queries x 2 shards: replicas share their shard's plan
    // cache (they are bit-identical, so plans are too), so replication
    // adds no lowerings — only one materialization per replica cube.
    assert_eq!(report.compilations, 6);
    assert_eq!(report.materializations, 4);
}

#[test]
fn report_display_names_the_replica_count() {
    let report = run_service(&Cluster::replicated(512, SEED, 2, 2), &closed(16, 4));
    let s = report.to_string();
    assert!(s.contains("x2 replicas"), "{s}");
    assert!(!s.contains("failover"), "fault-free run: {s}");
}

#[test]
#[should_panic(expected = "kills every replica of shard 0")]
fn killing_a_whole_shard_is_rejected() {
    let cluster = Cluster::replicated(256, SEED, 2, 2);
    let cfg = ServiceConfig {
        faults: vec![FaultPlan::new(0, 0, 100), FaultPlan::new(0, 1, 200)],
        ..closed(8, 2)
    };
    let _ = run_service(&cluster, &cfg);
}

#[test]
#[should_panic(expected = "replica 3 out of range")]
fn fault_on_a_missing_replica_is_rejected() {
    let cluster = Cluster::replicated(256, SEED, 2, 2);
    let cfg = ServiceConfig {
        faults: vec![FaultPlan::new(0, 3, 100)],
        ..closed(8, 2)
    };
    let _ = run_service(&cluster, &cfg);
}

#[test]
#[should_panic(expected = "shard 7 out of range (2 shards)")]
fn utilization_of_a_missing_shard_names_the_bound() {
    let report = run_service(&Cluster::new(256, SEED, 2), &closed(8, 2));
    let _ = report.utilization(7);
}

#[test]
#[should_panic(expected = "replica 2 out of range (shard 1 has 2 replicas)")]
fn replica_utilization_of_a_missing_replica_names_the_bound() {
    let report = run_service(&Cluster::replicated(256, SEED, 2, 2), &closed(8, 2));
    let _ = report.replica_utilization(1, 2);
}
