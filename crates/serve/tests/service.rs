//! Discrete-event service scheduler tests.

use hipe::Arch;
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, ClusterConfig, LoadModel, ServiceConfig};

const SEED: u64 = 2018;

fn mix() -> Vec<(Query, u32)> {
    vec![
        (Query::q6(), 2),
        (Query::quantity_below_permille(100), 3),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ]
}

fn closed(queries: usize, clients: usize) -> ServiceConfig {
    ServiceConfig::closed(Arch::Hipe, queries, mix(), clients)
}

#[test]
fn serves_every_query_and_orders_percentiles() {
    let cluster = Cluster::new(1024, SEED, 2);
    let report = run_service(&cluster, &closed(48, 4));
    assert_eq!(report.queries, 48);
    assert_eq!(report.shards, 2);
    assert!(report.makespan > 0);
    assert!(report.latency.p50 <= report.latency.p95);
    assert!(report.latency.p95 <= report.latency.p99);
    assert!(report.latency.p99 <= report.latency.max);
    assert!(report.latency.mean > 0.0);
    assert!(report.queries_per_gigacycle() > 0);
    assert!(report.queries_per_sec(hipe_sim::Freq::ghz(2)) > 0.0);
}

#[test]
fn service_runs_are_deterministic() {
    let cluster = Cluster::new(512, SEED, 2);
    let a = run_service(&cluster, &closed(32, 4));
    let b = run_service(&cluster, &closed(32, 4));
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.latency.p99, b.latency.p99);
    assert_eq!(a.shard_busy, b.shard_busy);
    // Counters are per-run deltas of *real* work: the first run lowers
    // its 3 mix queries x 2 shards; the second finds every plan warm
    // in the shards' shared caches and lowers nothing, while each run
    // still materializes its own 2 shard images.
    assert_eq!(a.compilations, 6);
    assert_eq!(b.compilations, 0);
    assert_eq!(a.materializations, 2);
    assert_eq!(b.materializations, 2);
}

#[test]
fn profile_pass_compiles_once_per_mix_query_per_shard() {
    let cluster = Cluster::new(512, SEED, 2);
    let report = run_service(&cluster, &closed(64, 4));
    // 3 mix queries x 2 shards, compiled exactly once each despite 64
    // served queries — the plan cache at work in the batch loop.
    assert_eq!(report.compilations, 6);
    assert_eq!(report.materializations, 2);
}

#[test]
fn shard_utilization_is_a_fraction_and_busy_bounded() {
    let cluster = Cluster::new(1024, SEED, 2);
    let report = run_service(&cluster, &closed(32, 4));
    for s in 0..report.shards {
        let u = report.utilization(s);
        assert!((0.0..=1.0).contains(&u), "shard {s} utilization {u}");
        assert!(report.shard_busy[s] <= report.makespan);
    }
    assert!(report.frontend_busy <= report.makespan);
}

#[test]
fn open_loop_light_load_has_low_queueing() {
    let cluster = Cluster::new(512, SEED, 2);
    // Arrivals far apart: latency ~ service time, no admission stall.
    let sparse = ServiceConfig {
        batch: 1,
        ..ServiceConfig::open(Arch::Hipe, 24, mix(), 20_000_000)
    };
    let report = run_service(&cluster, &sparse);
    assert_eq!(report.queries, 24);
    assert_eq!(report.admission_stall, 0);
    // Under saturation (arrivals back to back) the same stream waits
    // far longer.
    let dense = ServiceConfig {
        batch: 1,
        ..ServiceConfig::open(Arch::Hipe, 24, mix(), 1)
    };
    let saturated = run_service(&cluster, &dense);
    assert!(
        saturated.latency.p99 > report.latency.p99,
        "saturated p99 {} <= light p99 {}",
        saturated.latency.p99,
        report.latency.p99
    );
    // Open-loop saturation finishes sooner than the spread-out stream
    // (arrivals, not capacity, bound the light-load makespan).
    assert!(saturated.makespan < report.makespan);
}

#[test]
fn batching_amortizes_the_front_end() {
    let cluster = Cluster::new(512, SEED, 1);
    let unbatched = run_service(
        &cluster,
        &ServiceConfig {
            batch: 1,
            ..closed(64, 8)
        },
    );
    let batched = run_service(
        &cluster,
        &ServiceConfig {
            batch: 8,
            ..closed(64, 8)
        },
    );
    // One batch setup per 8 queries instead of per query.
    assert!(batched.frontend_busy < unbatched.frontend_busy);
}

#[test]
fn admission_window_throttles_the_open_flood() {
    let cluster = Cluster::new(512, SEED, 2);
    let flood = ServiceConfig {
        max_in_flight: 2,
        batch: 1,
        ..ServiceConfig::open(Arch::Hipe, 32, mix(), 1)
    };
    let report = run_service(&cluster, &flood);
    assert!(
        report.admission_stall > 0,
        "a 2-deep window must stall a flood"
    );
}

#[test]
fn batched_flood_respects_the_admission_window() {
    // Regression: every batch member must consume its own window
    // slot. Per-member admit/complete interleaving used to free one
    // slot for the whole batch, letting a full window hold
    // capacity + batch - 1 queries (tripping the in-flight
    // debug_assert) and understating admission_stall.
    let cluster = Cluster::new(512, SEED, 2);
    let flood = ServiceConfig {
        batch: 4,
        max_in_flight: 4,
        ..ServiceConfig::open(Arch::Hipe, 72, mix(), 1)
    };
    let report = run_service(&cluster, &flood);
    assert_eq!(report.queries, 72);
    assert!(
        report.admission_stall > 0,
        "a window as wide as one batch must stall a back-to-back flood"
    );
}

#[test]
fn default_open_config_survives_window_saturation() {
    // The review repro: default open-loop batching (4) against the
    // default 64-deep window, enough back-to-back queries to wrap the
    // window many times over.
    let cluster = Cluster::new(512, SEED, 2);
    let report = run_service(&cluster, &ServiceConfig::open(Arch::Hipe, 300, mix(), 1));
    assert_eq!(report.queries, 300);
    assert!(
        report.admission_stall > 0,
        "300 back-to-back queries must outrun a 64-deep window"
    );
}

#[test]
fn throughput_scales_with_shards_at_saturation() {
    // The acceptance-criteria property, at test scale: queries per
    // gigacycle monotone non-decreasing in shard count up to 4.
    let rows = 2048;
    let mut last = 0;
    for shards in [1usize, 2, 4] {
        let cluster = Cluster::new(rows, SEED, shards);
        let report = run_service(&cluster, &closed(48, 8));
        let qpgc = report.queries_per_gigacycle();
        assert!(
            qpgc >= last,
            "{shards} shards: {qpgc} q/Gcyc < previous {last}"
        );
        last = qpgc;
    }
}

#[test]
fn closed_loop_keeps_inflight_at_clients() {
    // One client, batch 1: strictly serial — makespan is at least the
    // sum of every query's service time, and latency max sees no
    // queueing behind other clients' work.
    let cluster = Cluster::new(512, SEED, 2);
    let report = run_service(
        &cluster,
        &ServiceConfig {
            batch: 4, // capped to 1 by the single client
            ..closed(16, 1)
        },
    );
    assert_eq!(report.queries, 16);
    let busiest = *report.shard_busy.iter().max().unwrap();
    assert!(report.makespan >= busiest);
    assert_eq!(report.admission_stall, 0);
}

#[test]
fn admission_stall_counts_from_each_members_own_arrival() {
    // Regression: `admit_batch` charged every member from the batch's
    // *latest* arrival, so with a roomy window a staggered batch
    // reported zero stall even though early members demonstrably
    // waited for the batch to fill. Closed-loop clients start at
    // staggered cycles 0..k, so every first batch is staggered.
    let cluster = Cluster::new(512, SEED, 2);
    let roomy = run_service(
        &cluster,
        &ServiceConfig {
            batch: 4,
            max_in_flight: 64,
            ..closed(32, 4)
        },
    );
    assert!(
        roomy.batching_delay > 0,
        "staggered arrivals must accrue batch-fill wait"
    );
    // With the window never binding, *all* admission stall is the
    // batch-fill wait — the decomposition is exact.
    assert_eq!(roomy.admission_stall, roomy.batching_delay);
    // A window as narrow as the batch adds genuine window pressure on
    // top of (never instead of) the batch-fill wait.
    let tight = run_service(
        &cluster,
        &ServiceConfig {
            batch: 4,
            max_in_flight: 4,
            ..ServiceConfig::open(Arch::Hipe, 72, mix(), 1)
        },
    );
    assert!(
        tight.admission_stall >= tight.batching_delay,
        "own-arrival stall ({}) can never undercut its batching component ({})",
        tight.admission_stall,
        tight.batching_delay
    );
}

#[test]
fn batching_delay_and_busy_components_reconstruct_total_latency() {
    // Single shard (no merge), single-query mix (uniform duration d),
    // k clients = batch k, roomy window: each round's batch fills at
    // its last arrival, pays the front-end cost c once, then serves
    // its members serially on the one cube. Summing member latencies
    // over every round gives exactly
    //
    //   sum(latency) = batching_delay + k * frontend_busy
    //                + (k + 1) / 2 * shard_busy
    //
    // so the report's components reconstruct its own mean latency.
    let cluster = Cluster::new(256, SEED, 1);
    let k = 4u64;
    let cfg = ServiceConfig {
        batch: k as usize,
        max_in_flight: 64,
        ..ServiceConfig::closed(Arch::Hipe, 32, vec![(Query::q6(), 1)], k as usize)
    };
    let report = run_service(&cluster, &cfg);
    assert_eq!(report.queries, 32);
    assert_eq!(report.admission_stall, report.batching_delay);
    let total_latency = (report.latency.mean * report.queries as f64).round() as u64;
    assert_eq!(
        2 * total_latency,
        2 * report.batching_delay + 2 * k * report.frontend_busy + (k + 1) * report.shard_busy[0],
        "latency does not decompose into batching + front-end + cube service"
    );
}

#[test]
fn zonemap_shard_skipping_preserves_service_answers_and_frees_shards() {
    // A narrow shipdate window over a clustered 4-shard cluster only
    // touches one shard's day range; with pruning on, the scheduler
    // never scatters the other shards' sub-queries.
    let rows = 4096;
    let window_mix = vec![(Query::shipdate_window_permille(100), 1)];
    let skip = Cluster::with_config(ClusterConfig::skipping(rows, SEED, 4));
    let full = Cluster::with_config(ClusterConfig {
        clustered: true,
        ..ClusterConfig::new(rows, SEED, 4)
    });
    let cfg = ServiceConfig::closed(Arch::Hipe, 32, window_mix, 4);
    let skip_report = run_service(&skip, &cfg);
    let full_report = run_service(&full, &cfg);
    assert_eq!(skip_report.answers, full_report.answers);
    assert_eq!(skip_report.answers_digest(), full_report.answers_digest());
    assert!(
        skip_report.makespan < full_report.makespan,
        "skipping should shorten the run: {} >= {}",
        skip_report.makespan,
        full_report.makespan
    );
    // Skipped shards never see a sub-query; under full scatter every
    // shard stays busy.
    let idle = skip_report.shard_busy.iter().filter(|&&b| b == 0).count();
    assert!(idle >= 2, "busy: {:?}", skip_report.shard_busy);
    assert!(full_report.shard_busy.iter().all(|&b| b > 0));
}

#[test]
fn report_display_mentions_throughput_and_utilization() {
    let cluster = Cluster::new(512, SEED, 2);
    let report = run_service(&cluster, &closed(16, 4));
    let s = report.to_string();
    assert!(s.contains("q/Gcyc"), "{s}");
    assert!(s.contains("p50/p95/p99"), "{s}");
    assert!(s.contains('%'), "{s}");
}

#[test]
fn load_model_variants_are_comparable() {
    assert_eq!(
        LoadModel::Closed {
            clients: 2,
            think: 0
        },
        LoadModel::Closed {
            clients: 2,
            think: 0
        }
    );
    assert_ne!(
        LoadModel::Open {
            mean_interarrival: 5
        },
        LoadModel::Open {
            mean_interarrival: 6
        }
    );
}

#[test]
#[should_panic(expected = "exceeds max_in_flight")]
fn batch_wider_than_the_window_is_rejected() {
    // A batch enters flight as one unit; a window narrower than the
    // batch could never admit it (and would over-admit silently).
    let cluster = Cluster::new(64, SEED, 1);
    let cfg = ServiceConfig {
        batch: 8,
        max_in_flight: 2,
        ..closed(16, 8)
    };
    let _ = run_service(&cluster, &cfg);
}

#[test]
#[should_panic(expected = "at least one query")]
fn zero_queries_panics() {
    let cluster = Cluster::new(64, SEED, 1);
    let _ = run_service(&cluster, &closed(0, 1));
}

#[test]
#[should_panic(expected = "mix is empty")]
fn empty_mix_panics() {
    let cluster = Cluster::new(64, SEED, 1);
    let _ = run_service(&cluster, &ServiceConfig::closed(Arch::Hipe, 4, vec![], 1));
}

#[test]
#[should_panic(expected = "zero total weight")]
fn zero_weight_mix_panics() {
    let cluster = Cluster::new(64, SEED, 1);
    let cfg = ServiceConfig::closed(Arch::Hipe, 4, vec![(Query::q6(), 0)], 1);
    let _ = run_service(&cluster, &cfg);
}
