//! In-order retirement windows.

use crate::time::Cycle;
use std::collections::VecDeque;

/// A capacity-limited window whose entries retire **in order** — the
/// semantics of a reorder buffer.
///
/// Unlike [`Window`](crate::Window), where any completed entry frees a
/// slot, a [`FifoWindow`] frees slots strictly in allocation order: an
/// entry cannot retire before every older entry has retired, so one
/// long-latency operation at the head holds the whole window.
///
/// # Example
///
/// ```
/// use hipe_sim::FifoWindow;
/// let mut rob = FifoWindow::new(2);
/// let _ = rob.admit(0);
/// rob.complete(1000); // long op at the head
/// let _ = rob.admit(0);
/// rob.complete(1);    // fast op behind it
/// // Window full: the third op waits for the *oldest* entry (1000),
/// // even though the second finished long ago.
/// assert_eq!(rob.admit(0), 1000);
/// rob.complete(1001);
/// ```
#[derive(Debug, Clone)]
pub struct FifoWindow {
    capacity: usize,
    /// Retire times in allocation order (monotone non-decreasing).
    retire: VecDeque<Cycle>,
    /// Largest retire time pushed so far (enforces in-order retire).
    last_retire: Cycle,
    admitted: u64,
    stall: Cycle,
}

impl FifoWindow {
    /// Creates a window with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        FifoWindow {
            capacity,
            retire: VecDeque::with_capacity(capacity + 1),
            last_retire: 0,
            admitted: 0,
            stall: 0,
        }
    }

    /// Capacity of the window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of entries currently allocated.
    pub fn len(&self) -> usize {
        self.retire.len()
    }

    /// Returns `true` when no entries are allocated.
    pub fn is_empty(&self) -> bool {
        self.retire.is_empty()
    }

    /// Requests admission at `arrival`; returns the earliest admission
    /// cycle (waiting for the oldest entry to retire when full). Must
    /// be paired with exactly one [`complete`](Self::complete).
    #[inline]
    pub fn admit(&mut self, arrival: Cycle) -> Cycle {
        self.admitted += 1;
        if self.retire.len() < self.capacity {
            return arrival;
        }
        let oldest = self.retire.pop_front().expect("full window is non-empty");
        let admitted = arrival.max(oldest);
        self.stall += admitted - arrival;
        admitted
    }

    /// Registers the completion cycle of the entry admitted most
    /// recently; its retire time is clamped to preserve in-order
    /// retirement.
    #[inline]
    pub fn complete(&mut self, completion: Cycle) {
        self.last_retire = self.last_retire.max(completion);
        self.retire.push_back(self.last_retire);
        debug_assert!(self.retire.len() <= self.capacity);
    }

    /// Total entries admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total admission delay caused by a full window.
    pub fn stall_cycles(&self) -> Cycle {
        self.stall
    }

    /// Cycle at which everything currently in the window has retired.
    pub fn drain(&self) -> Cycle {
        self.retire.back().copied().unwrap_or(self.last_retire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_of_line_blocking() {
        let mut w = FifoWindow::new(4);
        let _ = w.admit(0);
        w.complete(500);
        for _ in 0..3 {
            let _ = w.admit(0);
            w.complete(10);
        }
        // All four slots held by the 500-cycle head.
        assert_eq!(w.admit(0), 500);
        w.complete(501);
        // The next three also retire at >= 500 (in-order).
        assert_eq!(w.admit(0), 500);
        w.complete(502);
    }

    #[test]
    fn unconstrained_below_capacity() {
        let mut w = FifoWindow::new(8);
        for i in 0..8 {
            assert_eq!(w.admit(i), i);
            w.complete(i + 5);
        }
        assert_eq!(w.stall_cycles(), 0);
    }

    #[test]
    fn retire_times_monotone() {
        let mut w = FifoWindow::new(2);
        let _ = w.admit(0);
        w.complete(100);
        let _ = w.admit(0);
        w.complete(50); // completes early but retires at >= 100
        assert_eq!(w.admit(0), 100);
        w.complete(101);
        assert_eq!(w.admit(0), 100);
    }

    #[test]
    fn drain_is_last_retire() {
        let mut w = FifoWindow::new(4);
        let _ = w.admit(0);
        w.complete(42);
        assert_eq!(w.drain(), 42);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = FifoWindow::new(0);
    }
}
