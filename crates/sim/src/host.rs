//! Host-side worker pool for parallel co-simulation.
//!
//! Everything in this workspace simulates *cycles*; this module is the
//! one place that spends *host* time. A [`WorkerPool`] fans a batch of
//! independent jobs out over `std::thread` workers (zero external
//! dependencies) and gathers the results **in input order**, never in
//! arrival order — so a parallel run is bit-identical to the serial one
//! by construction, and callers can merge shard results positionally.
//!
//! With `workers == 1` (the default, see [`env_workers`]) no thread is
//! spawned at all: jobs run inline on the calling thread, in order,
//! byte-identical to a plain loop. Simulated cycle accounting is never
//! affected by the pool — each job's simulated clock is its own.
//!
//! # Example
//!
//! ```
//! use hipe_sim::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let squares = pool.run(vec![1u64, 2, 3, 4, 5], |_idx, x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]); // input order, always
//! ```

use std::sync::{mpsc, Mutex};

/// Number of host workers requested via the `HIPE_WORKERS` environment
/// variable (default 1 — fully serial). Values that fail to parse or
/// are zero fall back to 1.
pub fn env_workers() -> usize {
    std::env::var("HIPE_WORKERS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&w| w >= 1)
        .unwrap_or(1)
}

/// A fixed-width pool of host worker threads with deterministic gather.
///
/// Jobs are pulled from a shared queue by up to `workers` scoped
/// threads; results are returned in the order the jobs were submitted
/// regardless of which worker finished first. See the module docs for
/// the determinism contract.
#[derive(Debug, Clone)]
pub struct WorkerPool {
    workers: usize,
}

impl WorkerPool {
    /// A pool that fans out over `workers` host threads.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers >= 1, "a worker pool needs at least one worker");
        WorkerPool { workers }
    }

    /// A pool sized by the `HIPE_WORKERS` environment variable
    /// (default 1, i.e. serial).
    pub fn from_env() -> Self {
        WorkerPool::new(env_workers())
    }

    /// The serial pool: every job runs inline on the calling thread.
    pub fn serial() -> Self {
        WorkerPool::new(1)
    }

    /// Width of the pool.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `f` over every item, returning the results in item order.
    ///
    /// `f(i, item)` receives the item's submission index. With one
    /// worker (or at most one item) this is exactly
    /// `items.into_iter().enumerate().map(...)` on the calling thread.
    pub fn run<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        self.run_with(items, || (), |_, i, item| f(i, item))
    }

    /// Like [`run`](Self::run), but each worker thread first builds
    /// private state with `init` and threads it through its jobs —
    /// e.g. one warm query session per worker so plan caches and
    /// materializations amortize within a worker without sharing.
    ///
    /// The serial path builds the state exactly once, so with
    /// `workers == 1` this is byte-identical to a plain stateful loop.
    pub fn run_with<S, I, T, Init, F>(&self, items: Vec<I>, init: Init, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        Init: Fn() -> S + Sync,
        F: Fn(&mut S, usize, I) -> T + Sync,
    {
        let threads = self.workers.min(items.len());
        if threads <= 1 {
            let mut state = init();
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(&mut state, i, item))
                .collect();
        }
        let n = items.len();
        // Shared job queue: workers race to pull the next (index, item)
        // pair; indices make the gather order-independent of arrival.
        let jobs = Mutex::new(items.into_iter().enumerate());
        let (tx, rx) = mpsc::channel::<(usize, T)>();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let jobs = &jobs;
                let init = &init;
                let f = &f;
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        // Take the lock only to pull the next job, not
                        // while running it.
                        let job = jobs.lock().expect("a sibling worker panicked").next();
                        let Some((i, item)) = job else { break };
                        if tx.send((i, f(&mut state, i, item))).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            let mut slots: Vec<Option<T>> = (0..n).map(|_| None).collect();
            for (i, out) in rx {
                slots[i] = Some(out);
            }
            slots
                .into_iter()
                .map(|s| s.expect("a worker exited without returning its result"))
                .collect()
        })
    }
}

impl Default for WorkerPool {
    /// The environment-sized pool ([`WorkerPool::from_env`]).
    fn default() -> Self {
        WorkerPool::from_env()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_input_order() {
        let pool = WorkerPool::new(4);
        // Reverse sleep-free skew: make early items the most expensive
        // so late items would arrive first if gather followed arrival.
        let out = pool.run((0..64usize).collect(), |_, i| {
            let mut acc = i as u64;
            for _ in 0..(64 - i) * 1000 {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            i * 2
        });
        assert_eq!(out, (0..64).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn serial_pool_matches_parallel_pool() {
        let f = |i: usize, x: u64| x.wrapping_mul(i as u64 + 1) ^ 0x9e37;
        let items: Vec<u64> = (0..100).map(|i| i * 31).collect();
        let serial = WorkerPool::serial().run(items.clone(), f);
        let parallel = WorkerPool::new(8).run(items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn serial_pool_spawns_no_threads_and_runs_in_order() {
        // Worker-local state observes in-order execution on one state.
        let trace = WorkerPool::serial().run_with(
            vec![10usize, 20, 30],
            Vec::new,
            |seen: &mut Vec<usize>, i, item| {
                seen.push(item);
                (i, seen.clone())
            },
        );
        assert_eq!(trace[2], (2, vec![10, 20, 30]));
    }

    #[test]
    fn run_with_builds_one_state_per_worker_at_most() {
        static BUILDS: AtomicUsize = AtomicUsize::new(0);
        BUILDS.store(0, Ordering::SeqCst);
        let pool = WorkerPool::new(3);
        let out = pool.run_with(
            (0..32usize).collect(),
            || BUILDS.fetch_add(1, Ordering::SeqCst),
            |_, i, item| i + item,
        );
        assert_eq!(out, (0..32).map(|i| i * 2).collect::<Vec<_>>());
        let builds = BUILDS.load(Ordering::SeqCst);
        assert!((1..=3).contains(&builds), "built {builds} states");
    }

    #[test]
    fn empty_and_single_item_batches() {
        let pool = WorkerPool::new(4);
        let empty: Vec<u32> = pool.run(Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(pool.run(vec![7u32], |i, x| x + i as u32), vec![7]);
    }

    #[test]
    fn env_workers_defaults_to_one() {
        if std::env::var("HIPE_WORKERS").is_err() {
            assert_eq!(env_workers(), 1);
        }
        assert!(env_workers() >= 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = WorkerPool::new(0);
    }
}
