//! Transaction-level simulation kernel for the HIPE reproduction.
//!
//! The original paper evaluates HIPE on SiNUCA, a cycle-accurate
//! micro-architecture simulator. This crate provides the replacement
//! substrate: a small set of timing primitives from which the memory,
//! cache, processor and logic-layer models are composed.
//!
//! Instead of advancing a global clock one cycle at a time, every model
//! in this workspace is *transaction level*: a component receives a
//! request stamped with its arrival cycle and answers with the cycle at
//! which the request completes, updating internal resource bookkeeping
//! as a side effect. Contention is captured by three primitives:
//!
//! * [`Server`] — an exclusive resource (a DRAM bank, a command bus slot)
//!   that serves one request at a time.
//! * [`Window`] — a capacity-limited set of in-flight operations (a ROB,
//!   a load queue, an MSHR file, an interlocked register bank).
//! * [`ThroughputPipe`] — a bandwidth-limited conduit (a memory link).
//!
//! All three keep *monotone* "next free" state, so feeding them requests
//! in non-decreasing arrival order yields a valid schedule. The
//! higher-level crates are written so that requests are generated in
//! program order, which satisfies that contract.
//!
//! # Example
//!
//! ```
//! use hipe_sim::{Server, Window};
//!
//! // A bank that needs 40 cycles per access, with at most 4 accesses
//! // outstanding from the requester's side.
//! let mut bank = Server::new();
//! let mut mshr = Window::new(4);
//! let mut done = 0;
//! for i in 0..8u64 {
//!     let arrival = i; // one request per cycle
//!     let admitted = mshr.admit(arrival);
//!     let (_, completion) = bank.serve(admitted, 40);
//!     mshr.complete(completion);
//!     done = completion;
//! }
//! assert_eq!(done, 8 * 40);
//! ```

mod fifo_window;
mod host;
mod pipe;
mod server;
mod stats;
mod time;
mod window;

pub use fifo_window::FifoWindow;
pub use host::{env_workers, WorkerPool};
pub use pipe::ThroughputPipe;
pub use server::{MultiServer, ServeOutcome, Server};
pub use stats::{Counter, Histogram, RunningStats, Samples};
pub use time::{time_ns, ClockDomain, Cycle, Freq};
pub use window::Window;
