//! Bandwidth-limited conduits.

use crate::time::Cycle;

/// A bandwidth-limited conduit such as an HMC serial link.
///
/// The pipe serializes payloads at a fixed rate expressed as a rational
/// `bytes_per_cycle = num / den`, and adds a fixed propagation latency
/// to every transfer. Serialization occupies the pipe; propagation does
/// not (it is wire delay).
///
/// # Example
///
/// ```
/// use hipe_sim::ThroughputPipe;
/// // 4 bytes per cycle, 20 cycles of wire latency.
/// let mut link = ThroughputPipe::new(4, 1, 20);
/// // 64-byte packet: 16 cycles on the wire start-to-last-byte, +20.
/// assert_eq!(link.transfer(0, 64), 36);
/// // Next packet queues behind the first one's serialization.
/// assert_eq!(link.transfer(0, 64), 52);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputPipe {
    /// Serialization rate numerator (bytes).
    num: u64,
    /// Serialization rate denominator (cycles).
    den: u64,
    latency: Cycle,
    next_free: Cycle,
    bytes: u64,
    transfers: u64,
}

impl ThroughputPipe {
    /// Creates a pipe carrying `num` bytes every `den` cycles with the
    /// given fixed propagation latency.
    ///
    /// # Panics
    ///
    /// Panics if `num` or `den` is zero.
    pub fn new(num: u64, den: u64, latency: Cycle) -> Self {
        assert!(num > 0 && den > 0, "pipe rate must be positive");
        ThroughputPipe {
            num,
            den,
            latency,
            next_free: 0,
            bytes: 0,
            transfers: 0,
        }
    }

    /// Transfers `bytes` starting no earlier than `arrival`; returns the
    /// cycle at which the last byte has arrived at the far end.
    #[inline]
    pub fn transfer(&mut self, arrival: Cycle, bytes: u64) -> Cycle {
        let start = arrival.max(self.next_free);
        let ser = div_ceil(bytes * self.den, self.num);
        self.next_free = start + ser;
        self.bytes += bytes;
        self.transfers += 1;
        start + ser + self.latency
    }

    /// The cycle at which the pipe next becomes free.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total bytes transferred.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total number of transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// The fixed propagation latency.
    pub fn latency(&self) -> Cycle {
        self.latency
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_below_one_byte_per_cycle() {
        // 1 byte per 4 cycles.
        let mut p = ThroughputPipe::new(1, 4, 0);
        assert_eq!(p.transfer(0, 8), 32);
        assert_eq!(p.transfer(0, 1), 36);
    }

    #[test]
    fn latency_does_not_occupy_pipe() {
        let mut p = ThroughputPipe::new(8, 1, 100);
        let first = p.transfer(0, 8);
        let second = p.transfer(0, 8);
        assert_eq!(first, 101);
        // Serialization back-to-back, both see wire latency.
        assert_eq!(second, 102);
    }

    #[test]
    fn accounts_bytes() {
        let mut p = ThroughputPipe::new(2, 1, 5);
        p.transfer(0, 10);
        p.transfer(0, 20);
        assert_eq!(p.bytes(), 30);
        assert_eq!(p.transfers(), 2);
    }
}
