//! Exclusive and replicated resource servers.

use crate::time::Cycle;

/// An exclusive resource that serves one request at a time.
///
/// A [`Server`] models anything with a single occupancy slot and a
/// per-request service time: a DRAM bank, a vault command bus, a
/// divider unit. It keeps only the cycle at which it next becomes
/// free, so it is O(1) per request.
///
/// Requests *should* be offered in non-decreasing arrival order for
/// the schedule to be work-conserving (all users in this workspace
/// generate requests in program order). A *regressed* arrival — one
/// earlier than a previously offered request — is nonetheless
/// well-defined: the server clamps the start to its `next_free`, so
/// the late-offered request simply queues behind everything already
/// scheduled (FIFO-at-clamp). It can never un-reserve cycles already
/// granted, so the schedule stays valid; the only effect is that the
/// regressed request may wait longer than a globally sorted offer
/// order would have made it wait.
///
/// # Example
///
/// ```
/// use hipe_sim::Server;
/// let mut bank = Server::new();
/// let (s1, e1) = bank.serve(0, 40);
/// let (s2, e2) = bank.serve(10, 40);
/// assert_eq!((s1, e1), (0, 40));
/// // The second request queues behind the first.
/// assert_eq!((s2, e2), (40, 80));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Server {
    next_free: Cycle,
    busy: Cycle,
    served: u64,
}

impl Server {
    /// Creates an idle server.
    pub fn new() -> Self {
        Server::default()
    }

    /// Serves a request arriving at `arrival` that needs `duration`
    /// cycles, returning `(start, completion)`.
    #[inline]
    pub fn serve(&mut self, arrival: Cycle, duration: Cycle) -> (Cycle, Cycle) {
        let start = arrival.max(self.next_free);
        let end = start + duration;
        self.next_free = end;
        self.busy += duration;
        self.served += 1;
        (start, end)
    }

    /// Like [`serve`](Self::serve) but the server stops dead at
    /// `cutoff` (a fail-stop fault): service that would run past the
    /// cutoff is cancelled so the caller can requeue it elsewhere.
    ///
    /// Three outcomes:
    ///
    /// * the request finishes at or before the cutoff —
    ///   [`Done`](ServeOutcome::Done), identical to
    ///   [`serve`](Self::serve);
    /// * service starts but the server dies mid-request —
    ///   [`Cut`](ServeOutcome::Cut): busy cycles are charged only up
    ///   to the cutoff and the request does *not* count as served;
    /// * the request would start at or after the cutoff —
    ///   [`Refused`](ServeOutcome::Refused): nothing is charged.
    ///
    /// In the `Cut` and `Refused` cases `next_free` is clamped to
    /// `cutoff`: a fail-stopped server never serves again, and the
    /// clamp keeps later (erroneous) offers from reserving cycles on
    /// it.
    pub fn serve_until(&mut self, arrival: Cycle, duration: Cycle, cutoff: Cycle) -> ServeOutcome {
        let start = arrival.max(self.next_free);
        if start >= cutoff {
            self.next_free = self.next_free.max(cutoff);
            return ServeOutcome::Refused;
        }
        let end = start + duration;
        if end > cutoff {
            self.busy += cutoff - start;
            self.next_free = cutoff;
            return ServeOutcome::Cut { start };
        }
        self.next_free = end;
        self.busy += duration;
        self.served += 1;
        ServeOutcome::Done { start, end }
    }

    /// Like [`serve`](Self::serve) but the resource is released after
    /// `occupancy` cycles while the request completes after `duration`
    /// cycles (`occupancy <= duration`). Used for pipelined resources
    /// whose result latency exceeds their initiation interval.
    #[inline]
    pub fn serve_pipelined(
        &mut self,
        arrival: Cycle,
        occupancy: Cycle,
        duration: Cycle,
    ) -> (Cycle, Cycle) {
        debug_assert!(occupancy <= duration);
        let start = arrival.max(self.next_free);
        self.next_free = start + occupancy;
        self.busy += occupancy;
        self.served += 1;
        (start, start + duration)
    }

    /// The earliest cycle at which a new request could start service.
    pub fn next_free(&self) -> Cycle {
        self.next_free
    }

    /// Total cycles this server has spent busy.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

/// Outcome of [`Server::serve_until`]: what a fail-stopping server
/// managed to do with a request before its cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// The request completed at or before the cutoff.
    Done {
        /// Cycle service began.
        start: Cycle,
        /// Completion cycle.
        end: Cycle,
    },
    /// Service began but the server stopped at the cutoff with the
    /// request unfinished; the caller must requeue it elsewhere.
    Cut {
        /// Cycle the doomed service attempt began.
        start: Cycle,
    },
    /// The request would have started at or after the cutoff; the
    /// server never touched it.
    Refused,
}

/// A pool of `k` identical exclusive resources.
///
/// Models replicated units such as the eight banks of a vault viewed
/// collectively, or a trio of integer ALUs. Each request is placed on
/// the earliest-free unit.
///
/// # Example
///
/// ```
/// use hipe_sim::MultiServer;
/// let mut alus = MultiServer::new(2);
/// assert_eq!(alus.serve(0, 10).1, 10);
/// assert_eq!(alus.serve(0, 10).1, 10); // second unit
/// assert_eq!(alus.serve(0, 10).1, 20); // queues
/// ```
#[derive(Debug, Clone)]
pub struct MultiServer {
    units: Vec<Cycle>,
    busy: Cycle,
    served: u64,
}

impl MultiServer {
    /// Creates a pool of `k` idle units.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "a MultiServer needs at least one unit");
        MultiServer {
            units: vec![0; k],
            busy: 0,
            served: 0,
        }
    }

    /// Number of units in the pool.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// Returns `true` if the pool has no units (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Serves a request on the earliest-free unit, returning
    /// `(start, completion)`.
    #[inline]
    pub fn serve(&mut self, arrival: Cycle, duration: Cycle) -> (Cycle, Cycle) {
        // Find the unit that frees up first (first-lowest, matching
        // `Iterator::min_by_key` tie-breaking).
        let mut idx = 0;
        let mut free = self.units[0];
        for (i, &c) in self.units.iter().enumerate().skip(1) {
            if c < free {
                idx = i;
                free = c;
            }
        }
        let start = arrival.max(free);
        let end = start + duration;
        self.units[idx] = end;
        self.busy += duration;
        self.served += 1;
        (start, end)
    }

    /// The earliest cycle at which any unit is free.
    pub fn next_free(&self) -> Cycle {
        *self.units.iter().min().expect("pool is non-empty")
    }

    /// Total busy cycles across all units.
    pub fn busy_cycles(&self) -> Cycle {
        self.busy
    }

    /// Number of requests served.
    pub fn served(&self) -> u64 {
        self.served
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_is_work_conserving() {
        let mut s = Server::new();
        let (start, end) = s.serve(100, 10);
        assert_eq!((start, end), (100, 110));
        // Arrives while busy: queues.
        let (start, end) = s.serve(105, 10);
        assert_eq!((start, end), (110, 120));
        // Arrives after idle gap: starts immediately.
        let (start, end) = s.serve(500, 10);
        assert_eq!((start, end), (500, 510));
        assert_eq!(s.busy_cycles(), 30);
        assert_eq!(s.served(), 3);
    }

    #[test]
    fn regressed_arrivals_clamp_to_next_free() {
        // Pin of the documented arrival-order contract: a request
        // offered with an arrival *earlier* than a previous one is
        // clamped to next_free and queues FIFO behind what is already
        // scheduled — no panic, no un-reserving of granted cycles.
        let mut s = Server::new();
        assert_eq!(s.serve(100, 40), (100, 140));
        // Regressed arrival (20 < 100): starts when the server frees.
        assert_eq!(s.serve(20, 40), (140, 180));
        // Busy accounting is unaffected by the regression.
        assert_eq!(s.busy_cycles(), 80);
        assert_eq!(s.served(), 2);
    }

    #[test]
    fn serve_until_completes_before_the_cutoff() {
        let mut a = Server::new();
        let mut b = Server::new();
        let (start, end) = a.serve(10, 30);
        assert_eq!(
            b.serve_until(10, 30, 1000),
            ServeOutcome::Done { start, end }
        );
        assert_eq!(a.busy_cycles(), b.busy_cycles());
        assert_eq!(a.served(), b.served());
        assert_eq!(a.next_free(), b.next_free());
    }

    #[test]
    fn serve_until_cuts_mid_service() {
        let mut s = Server::new();
        // Dies at 100 with 30 cycles of a 50-cycle request done.
        assert_eq!(s.serve_until(70, 50, 100), ServeOutcome::Cut { start: 70 });
        assert_eq!(s.busy_cycles(), 30, "busy charged only to the cutoff");
        assert_eq!(s.served(), 0, "a cut request was not served");
        assert_eq!(s.next_free(), 100, "a dead server never frees");
    }

    #[test]
    fn serve_until_refuses_after_the_cutoff() {
        let mut s = Server::new();
        assert_eq!(s.serve_until(100, 10, 100), ServeOutcome::Refused);
        assert_eq!(s.serve_until(250, 10, 100), ServeOutcome::Refused);
        assert_eq!(s.busy_cycles(), 0);
        assert_eq!(s.next_free(), 100, "refusal clamps next_free to the cutoff");
        // Queued work that would only *start* past the cutoff is
        // refused even when offered before it.
        let mut q = Server::new();
        let _ = q.serve(0, 80);
        assert_eq!(q.serve_until(0, 50, 60), ServeOutcome::Refused);
    }

    #[test]
    fn pipelined_server_overlaps_results() {
        let mut s = Server::new();
        // Initiation interval 1, latency 5.
        let (_, e1) = s.serve_pipelined(0, 1, 5);
        let (_, e2) = s.serve_pipelined(0, 1, 5);
        assert_eq!(e1, 5);
        assert_eq!(e2, 6);
    }

    #[test]
    fn multi_server_spreads_load() {
        let mut m = MultiServer::new(4);
        let ends: Vec<_> = (0..8).map(|_| m.serve(0, 100).1).collect();
        assert_eq!(ends, vec![100, 100, 100, 100, 200, 200, 200, 200]);
        assert_eq!(m.busy_cycles(), 800);
    }

    #[test]
    #[should_panic(expected = "at least one unit")]
    fn zero_units_panics() {
        let _ = MultiServer::new(0);
    }
}
