//! Lightweight statistics collection.

use crate::time::Cycle;

/// A named monotone event counter.
///
/// # Example
///
/// ```
/// use hipe_sim::Counter;
/// let mut c = Counter::new("row_activations");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Streaming mean/min/max over observed samples.
///
/// # Example
///
/// ```
/// use hipe_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for v in [10, 20, 30] { s.push(v); }
/// assert_eq!(s.mean(), 20.0);
/// assert_eq!(s.min(), Some(10));
/// assert_eq!(s.max(), Some(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Observes one sample.
    pub fn push(&mut self, v: u64) {
        self.n += 1;
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, with bucket 0 also
/// holding zero-valued samples.
///
/// # Example
///
/// ```
/// use hipe_sim::Histogram;
/// let mut h = Histogram::new();
/// h.observe(0);
/// h.observe(1);
/// h.observe(500);
/// assert_eq!(h.count(), 3);
/// assert!(h.bucket(8) == 1); // 500 lands in [256, 512)
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    stats: RunningStats,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            stats: RunningStats::new(),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Observes one latency sample.
    pub fn observe(&mut self, v: Cycle) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.stats.push(v);
    }

    /// Count in bucket `i` (`[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest sample observed.
    pub fn max(&self) -> Option<Cycle> {
        self.stats.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "x = 10");
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.observe(1); // bucket 0
        h.observe(2); // bucket 1
        h.observe(3); // bucket 1
        h.observe(4); // bucket 2
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 1);
    }

    #[test]
    fn histogram_tracks_mean_and_max() {
        let mut h = Histogram::new();
        for v in [100, 200, 300] {
            h.observe(v);
        }
        assert_eq!(h.mean(), 200.0);
        assert_eq!(h.max(), Some(300));
    }
}
