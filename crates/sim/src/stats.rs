//! Lightweight statistics collection.

use crate::time::Cycle;

/// A named monotone event counter.
///
/// # Example
///
/// ```
/// use hipe_sim::Counter;
/// let mut c = Counter::new("row_activations");
/// c.add(3);
/// c.inc();
/// assert_eq!(c.value(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Counter {
    name: &'static str,
    value: u64,
}

impl Counter {
    /// Creates a zeroed counter with a diagnostic name.
    pub fn new(name: &'static str) -> Self {
        Counter { name, value: 0 }
    }

    /// Adds `n` to the counter.
    pub fn add(&mut self, n: u64) {
        self.value += n;
    }

    /// Adds one to the counter.
    pub fn inc(&mut self) {
        self.value += 1;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.value
    }

    /// Diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl std::fmt::Display for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} = {}", self.name, self.value)
    }
}

/// Streaming mean/min/max over observed samples.
///
/// # Example
///
/// ```
/// use hipe_sim::RunningStats;
/// let mut s = RunningStats::new();
/// for v in [10, 20, 30] { s.push(v); }
/// assert_eq!(s.mean(), 20.0);
/// assert_eq!(s.min(), Some(10));
/// assert_eq!(s.max(), Some(30));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    sum: u128,
    min: Option<u64>,
    max: Option<u64>,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats::default()
    }

    /// Observes one sample.
    pub fn push(&mut self, v: u64) {
        self.n += 1;
        self.sum += v as u128;
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sum of samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum as f64 / self.n as f64
        }
    }

    /// Smallest sample, if any.
    pub fn min(&self) -> Option<u64> {
        self.min
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<u64> {
        self.max
    }
}

/// An exact sample set with nearest-rank percentiles.
///
/// Unlike [`Histogram`] (bounded memory, bucketed) this keeps every
/// observed value, which is what a service report needs for exact
/// p50/p95/p99 tail latencies. Percentiles use the *nearest-rank*
/// definition: for `n` sorted samples, percentile `p` is the value at
/// rank `ceil(p/100 * n)` (1-based), so p100 is the maximum and every
/// returned value is an actually observed sample.
///
/// # Example
///
/// ```
/// use hipe_sim::Samples;
/// let mut s = Samples::new();
/// for v in [30, 10, 20, 40] { s.push(v); }
/// assert_eq!(s.percentile(50.0), Some(20));
/// assert_eq!(s.p99(), Some(40));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Samples {
    values: Vec<Cycle>,
    sorted: bool,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Observes one sample.
    pub fn push(&mut self, v: Cycle) {
        self.values.push(v);
        self.sorted = false;
    }

    /// Number of samples observed.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Mean of samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().map(|&v| v as u128).sum::<u128>() as f64 / self.values.len() as f64
        }
    }

    /// Largest sample, if any.
    pub fn max(&self) -> Option<Cycle> {
        self.values.iter().copied().max()
    }

    /// The nearest-rank `p`-th percentile (`None` when empty).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 100.0`.
    pub fn percentile(&mut self, p: f64) -> Option<Cycle> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.values.is_empty() {
            return None;
        }
        if !self.sorted {
            self.values.sort_unstable();
            self.sorted = true;
        }
        // Nearest rank: ceil(p/100 * n), clamped to [1, n] so p = 0
        // yields the minimum rather than an invalid rank of zero.
        // Multiply before dividing: rounding p/100.0 first can push an
        // exact boundary (p = 7, n = 100) just above its integer rank,
        // and ceil would then overshoot by one.
        let n = self.values.len();
        let rank = ((p * n as f64 / 100.0).ceil() as usize).clamp(1, n);
        Some(self.values[rank - 1])
    }

    /// Median (50th percentile).
    pub fn p50(&mut self) -> Option<Cycle> {
        self.percentile(50.0)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> Option<Cycle> {
        self.percentile(95.0)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> Option<Cycle> {
        self.percentile(99.0)
    }

    /// 99.9th percentile.
    pub fn p999(&mut self) -> Option<Cycle> {
        self.percentile(99.9)
    }

    /// Absorbs every sample of `other`, leaving it untouched — the
    /// cross-shard latency merge: each shard accumulates its own
    /// `Samples`, and the service folds them into one distribution
    /// before taking percentiles.
    pub fn merge(&mut self, other: &Samples) {
        if other.values.is_empty() {
            return;
        }
        self.values.extend_from_slice(&other.values);
        self.sorted = false;
    }
}

/// A power-of-two bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, with bucket 0 also
/// holding zero-valued samples.
///
/// # Example
///
/// ```
/// use hipe_sim::Histogram;
/// let mut h = Histogram::new();
/// h.observe(0);
/// h.observe(1);
/// h.observe(500);
/// assert_eq!(h.count(), 3);
/// assert!(h.bucket(8) == 1); // 500 lands in [256, 512)
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 64],
    stats: RunningStats,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            stats: RunningStats::new(),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Observes one latency sample.
    pub fn observe(&mut self, v: Cycle) {
        let idx = if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.stats.push(v);
    }

    /// Count in bucket `i` (`[2^i, 2^(i+1))`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.stats.count()
    }

    /// Mean of all samples.
    pub fn mean(&self) -> f64 {
        self.stats.mean()
    }

    /// Largest sample observed.
    pub fn max(&self) -> Option<Cycle> {
        self.stats.max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new("x");
        c.inc();
        c.add(9);
        assert_eq!(c.value(), 10);
        assert_eq!(c.to_string(), "x = 10");
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::new();
        h.observe(1); // bucket 0
        h.observe(2); // bucket 1
        h.observe(3); // bucket 1
        h.observe(4); // bucket 2
        assert_eq!(h.bucket(0), 1);
        assert_eq!(h.bucket(1), 2);
        assert_eq!(h.bucket(2), 1);
    }

    #[test]
    fn samples_empty_has_no_percentiles() {
        let mut s = Samples::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max(), None);
        assert_eq!(s.percentile(50.0), None);
        assert_eq!(s.p99(), None);
    }

    #[test]
    fn samples_single_value_is_every_percentile() {
        let mut s = Samples::new();
        s.push(42);
        for p in [0.0, 1.0, 50.0, 95.0, 99.0, 100.0] {
            assert_eq!(s.percentile(p), Some(42), "p{p}");
        }
    }

    #[test]
    fn nearest_rank_small_sample_boundaries() {
        // Exhaustive boundary table for n = 2..=5 over sorted samples
        // 10, 20, ..., 10n — nearest rank means rank ceil(p/100 * n).
        // n = 2: p50 -> rank 1, p51 -> rank 2.
        let mut s = Samples::new();
        for v in [20, 10] {
            s.push(v);
        }
        assert_eq!(s.p50(), Some(10));
        assert_eq!(s.percentile(50.1), Some(20));
        assert_eq!(s.percentile(100.0), Some(20));
        // n = 3: thirds at 33.33… and 66.67…
        let mut s = Samples::new();
        for v in [30, 10, 20] {
            s.push(v);
        }
        assert_eq!(s.percentile(33.3), Some(10));
        assert_eq!(s.percentile(33.4), Some(20));
        assert_eq!(s.p50(), Some(20));
        assert_eq!(s.percentile(66.6), Some(20));
        assert_eq!(s.percentile(66.7), Some(30));
        // n = 4: quarter boundaries are exact.
        let mut s = Samples::new();
        for v in [40, 20, 30, 10] {
            s.push(v);
        }
        assert_eq!(s.percentile(25.0), Some(10));
        assert_eq!(s.percentile(25.1), Some(20));
        assert_eq!(s.p50(), Some(20));
        assert_eq!(s.percentile(75.0), Some(30));
        assert_eq!(s.percentile(75.1), Some(40));
        // n = 5: p50 is the true median; p95/p99 are the maximum.
        let mut s = Samples::new();
        for v in [50, 10, 40, 20, 30] {
            s.push(v);
        }
        assert_eq!(s.percentile(0.0), Some(10));
        assert_eq!(s.percentile(20.0), Some(10));
        assert_eq!(s.percentile(20.1), Some(20));
        assert_eq!(s.p50(), Some(30));
        assert_eq!(s.percentile(80.0), Some(40));
        assert_eq!(s.percentile(80.1), Some(50));
        assert_eq!(s.p95(), Some(50));
        assert_eq!(s.p99(), Some(50));
    }

    #[test]
    fn p999_nearest_rank_boundaries() {
        // n = 1000 over 1..=1000: rank ceil(99.9 * 1000 / 100) = 999.
        let mut s = Samples::new();
        for v in (1..=1000).rev() {
            s.push(v);
        }
        assert_eq!(s.p999(), Some(999));
        assert_eq!(s.p99(), Some(990));
        // n = 1001: rank ceil(99.9 * 1001 / 100) = ceil(999.999) = 1000.
        s.push(1001);
        assert_eq!(s.p999(), Some(1000));
        // n = 2000: rank ceil(1998.0) = 1998 — exact boundary, no
        // overshoot from the multiply-before-divide order.
        let mut s = Samples::new();
        for v in 1..=2000 {
            s.push(v);
        }
        assert_eq!(s.p999(), Some(1998));
        // Tiny sample sets clamp to the maximum.
        let mut s = Samples::new();
        s.push(5);
        s.push(9);
        assert_eq!(s.p999(), Some(9));
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Samples::new();
        let mut b = Samples::new();
        let mut all = Samples::new();
        for v in [50, 10, 40] {
            a.push(v);
            all.push(v);
        }
        for v in [30, 20, 60] {
            b.push(v);
            all.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.max(), all.max());
        for p in [0.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), all.percentile(p), "p{p}");
        }
        // The source is untouched, and merging it again double-counts.
        assert_eq!(b.count(), 3);
        a.merge(&b);
        assert_eq!(a.count(), 9);
    }

    #[test]
    fn merge_empty_and_into_sorted() {
        let mut a = Samples::new();
        a.push(3);
        a.push(1);
        assert_eq!(a.p50(), Some(1)); // forces the lazy sort
        let empty = Samples::new();
        a.merge(&empty);
        assert_eq!(a.count(), 2);
        let mut b = Samples::new();
        b.push(2);
        a.merge(&b); // must invalidate the sorted flag
        assert_eq!(a.p50(), Some(2));
        let mut c = Samples::new();
        c.merge(&a);
        assert_eq!(c.count(), 3);
    }

    #[test]
    fn samples_track_mean_max_and_interleave_pushes() {
        let mut s = Samples::new();
        for v in [100, 300] {
            s.push(v);
        }
        assert_eq!(s.p50(), Some(100));
        // Pushing after a percentile query re-sorts lazily.
        s.push(200);
        assert_eq!(s.p50(), Some(200));
        assert_eq!(s.mean(), 200.0);
        assert_eq!(s.max(), Some(300));
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn percentiles_are_monotone_in_p() {
        let mut s = Samples::new();
        let mut x = 7u64;
        for _ in 0..137 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            s.push(x >> 40);
        }
        let mut prev = 0;
        for p in 0..=100 {
            let v = s.percentile(p as f64).unwrap();
            assert!(v >= prev, "p{p}: {v} < {prev}");
            prev = v;
        }
        assert_eq!(s.percentile(100.0), s.max());
    }

    #[test]
    fn integer_percentiles_of_100_samples_hit_exact_ranks() {
        // Exact nearest-rank boundaries: with n = 100, percentile p
        // must return the p-th smallest value for every integer p.
        // Dividing p by 100.0 before multiplying rounds some
        // boundaries (p = 7) just past their integer rank, and ceil
        // then overshoots by one.
        let mut s = Samples::new();
        for v in 1..=100 {
            s.push(v);
        }
        for p in 1..=100u64 {
            assert_eq!(s.percentile(p as f64), Some(p), "p{p}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn percentile_above_100_panics() {
        let mut s = Samples::new();
        s.push(1);
        let _ = s.percentile(100.1);
    }

    #[test]
    fn histogram_tracks_mean_and_max() {
        let mut h = Histogram::new();
        for v in [100, 200, 300] {
            h.observe(v);
        }
        assert_eq!(h.mean(), 200.0);
        assert_eq!(h.max(), Some(300));
    }
}
