//! Clock domains and cycle arithmetic.
//!
//! Every timing quantity in the workspace is expressed in **CPU cycles**
//! of the host processor clock (2.0 GHz in the paper's Table I). Slower
//! domains — DRAM at 166 MHz, the HMC logic layer at 1 GHz — convert
//! their native cycle counts through a [`ClockDomain`].

/// A point in time or a duration, measured in CPU cycles.
pub type Cycle = u64;

/// A clock frequency in megahertz.
///
/// Newtype so that frequencies cannot be confused with cycle counts.
///
/// # Example
///
/// ```
/// use hipe_sim::Freq;
/// let dram = Freq::mhz(166);
/// assert_eq!(dram.as_mhz(), 166);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Freq(u64);

impl Freq {
    /// Creates a frequency from a megahertz value.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be non-zero");
        Freq(mhz)
    }

    /// Creates a frequency from a gigahertz value.
    pub fn ghz(ghz: u64) -> Self {
        Freq::mhz(ghz * 1000)
    }

    /// Returns the frequency in megahertz.
    pub fn as_mhz(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Freq {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.0.is_multiple_of(1000) {
            write!(f, "{} GHz", self.0 / 1000)
        } else {
            write!(f, "{} MHz", self.0)
        }
    }
}

/// Converts native cycles of a slower (or faster) clock into CPU cycles.
///
/// The conversion rounds up: a request that needs 9 DRAM cycles at
/// 166 MHz occupies at least `ceil(9 * 2000 / 166)` CPU cycles at 2 GHz.
///
/// # Example
///
/// ```
/// use hipe_sim::{ClockDomain, Freq};
/// let dram = ClockDomain::new(Freq::mhz(166), Freq::mhz(2000));
/// // One DRAM cycle is a little over 12 CPU cycles.
/// assert_eq!(dram.to_cpu(1), 13);
/// assert_eq!(dram.to_cpu(9), 109);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockDomain {
    native: Freq,
    cpu: Freq,
}

impl ClockDomain {
    /// Creates a conversion between `native` and the `cpu` reference clock.
    pub fn new(native: Freq, cpu: Freq) -> Self {
        ClockDomain { native, cpu }
    }

    /// Returns the native frequency of this domain.
    pub fn native(&self) -> Freq {
        self.native
    }

    /// Returns the reference CPU frequency.
    pub fn cpu(&self) -> Freq {
        self.cpu
    }

    /// Converts `n` native cycles into CPU cycles, rounding up.
    pub fn to_cpu(&self, n: Cycle) -> Cycle {
        div_ceil(n * self.cpu.as_mhz(), self.native.as_mhz())
    }

    /// Converts `n` CPU cycles into native cycles, rounding up.
    pub fn to_native(&self, n: Cycle) -> Cycle {
        div_ceil(n * self.native.as_mhz(), self.cpu.as_mhz())
    }
}

fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Converts a cycle count at the given CPU frequency into nanoseconds.
///
/// # Example
///
/// ```
/// use hipe_sim::{time_ns, Freq};
/// assert_eq!(time_ns(2000, Freq::mhz(2000)), 1000.0);
/// ```
pub fn time_ns(cycles: Cycle, cpu: Freq) -> f64 {
    cycles as f64 * 1000.0 / cpu.as_mhz() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freq_display() {
        assert_eq!(Freq::ghz(2).to_string(), "2 GHz");
        assert_eq!(Freq::mhz(166).to_string(), "166 MHz");
    }

    #[test]
    fn dram_domain_round_trip_is_conservative() {
        let d = ClockDomain::new(Freq::mhz(166), Freq::mhz(2000));
        for n in 1..100 {
            // Converting to CPU cycles and back never shrinks a duration.
            assert!(d.to_native(d.to_cpu(n)) >= n);
        }
    }

    #[test]
    fn same_freq_is_identity() {
        let d = ClockDomain::new(Freq::mhz(2000), Freq::mhz(2000));
        assert_eq!(d.to_cpu(42), 42);
        assert_eq!(d.to_native(42), 42);
    }

    #[test]
    fn logic_layer_is_half_speed() {
        // Logic layer at 1 GHz vs CPU at 2 GHz: one logic cycle = 2 CPU cycles.
        let d = ClockDomain::new(Freq::ghz(1), Freq::ghz(2));
        assert_eq!(d.to_cpu(1), 2);
        assert_eq!(d.to_cpu(10), 20);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_freq_panics() {
        let _ = Freq::mhz(0);
    }
}
