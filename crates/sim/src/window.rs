//! Capacity-limited in-flight windows.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A capacity-limited set of in-flight operations.
///
/// A [`Window`] models structures that admit a new operation only when
/// fewer than `capacity` operations are outstanding: a reorder buffer,
/// a load/store queue, an MSHR file, or the interlocked register bank
/// of the HIVE/HIPE logic layer.
///
/// The protocol is two-phase:
///
/// 1. call [`admit`](Self::admit) with the cycle the operation *wants*
///    to enter; the window returns the earliest cycle it *can* enter
///    (delayed until the oldest outstanding operation completes when
///    the window is full);
/// 2. once the operation's completion cycle is known, report it with
///    [`complete`](Self::complete).
///
/// # Example
///
/// ```
/// use hipe_sim::Window;
/// let mut w = Window::new(2);
/// assert_eq!(w.admit(0), 0);
/// w.complete(100);
/// assert_eq!(w.admit(0), 0);
/// w.complete(50);
/// // Window full: the third op waits for the op finishing at 50.
/// assert_eq!(w.admit(0), 50);
/// w.complete(120);
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    capacity: usize,
    inflight: BinaryHeap<Reverse<Cycle>>,
    admitted: u64,
    stall: Cycle,
}

impl Window {
    /// Creates a window with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        Window {
            capacity,
            inflight: BinaryHeap::with_capacity(capacity + 1),
            admitted: 0,
            stall: 0,
        }
    }

    /// Capacity of the window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of operations currently tracked as in flight.
    ///
    /// Note: entries completing in the past are only evicted lazily on
    /// [`admit`](Self::admit), so this is an upper bound.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Returns `true` if no operations are tracked.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Requests admission at `arrival`; returns the earliest admission
    /// cycle. Must be followed by exactly one [`complete`](Self::complete)
    /// call for this operation.
    pub fn admit(&mut self, arrival: Cycle) -> Cycle {
        self.admitted += 1;
        if self.inflight.len() < self.capacity {
            return arrival;
        }
        // Full: wait for the oldest completion.
        let Reverse(oldest) = self.inflight.pop().expect("window is full, non-empty");
        let admitted = arrival.max(oldest);
        self.stall += admitted - arrival;
        admitted
    }

    /// Registers the completion cycle of the most recently admitted
    /// operation.
    pub fn complete(&mut self, completion: Cycle) {
        self.inflight.push(Reverse(completion));
        debug_assert!(self.inflight.len() <= self.capacity);
    }

    /// Convenience for `admit` + `complete` when the completion time is
    /// a function of the admission time. Returns the admission cycle.
    pub fn admit_until(&mut self, arrival: Cycle, completion: Cycle) -> Cycle {
        let at = self.admit(arrival);
        self.complete(completion.max(at));
        at
    }

    /// Total number of operations admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total cycles of admission delay caused by a full window.
    pub fn stall_cycles(&self) -> Cycle {
        self.stall
    }

    /// The cycle at which every currently tracked operation has
    /// completed (0 when empty).
    pub fn drain(&self) -> Cycle {
        self.inflight.iter().map(|Reverse(c)| *c).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_when_not_full() {
        let mut w = Window::new(8);
        for i in 0..8 {
            assert_eq!(w.admit(i), i);
            w.complete(i + 1000);
        }
        assert_eq!(w.stall_cycles(), 0);
    }

    #[test]
    fn throughput_is_capacity_over_latency() {
        // Classic Little's law check: capacity 4, latency 100 cycles,
        // infinitely fast producer => one completion per 25 cycles.
        let mut w = Window::new(4);
        let mut last = 0;
        for _ in 0..100 {
            let at = w.admit(0);
            let done = at + 100;
            w.complete(done);
            last = done;
        }
        // 100 ops * (100/4) = 2500, plus pipeline fill.
        assert_eq!(last, 96 / 4 * 100 + 100);
    }

    #[test]
    fn drain_returns_max_completion() {
        let mut w = Window::new(4);
        for done in [30, 10, 20] {
            let _ = w.admit(0);
            w.complete(done);
        }
        assert_eq!(w.drain(), 30);
    }

    #[test]
    fn admit_until_clamps_completion() {
        let mut w = Window::new(1);
        let _ = w.admit_until(0, 10);
        // Window of 1: next admission waits for cycle 10 even though the
        // caller claims completion at 5.
        let at = w.admit_until(0, 5);
        assert_eq!(at, 10);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Window::new(0);
    }
}
