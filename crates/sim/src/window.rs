//! Capacity-limited in-flight windows.

use crate::time::Cycle;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A capacity-limited set of in-flight operations.
///
/// A [`Window`] models structures that admit a new operation only when
/// fewer than `capacity` operations are outstanding: a reorder buffer,
/// a load/store queue, an MSHR file, or the interlocked register bank
/// of the HIVE/HIPE logic layer.
///
/// The protocol is two-phase:
///
/// 1. call [`admit`](Self::admit) with the cycle the operation *wants*
///    to enter; the window returns the earliest cycle it *can* enter
///    (delayed until the oldest outstanding operation completes when
///    the window is full);
/// 2. once the operation's completion cycle is known, report it with
///    [`complete`](Self::complete).
///
/// # Example
///
/// ```
/// use hipe_sim::Window;
/// let mut w = Window::new(2);
/// assert_eq!(w.admit(0), 0);
/// w.complete(100);
/// assert_eq!(w.admit(0), 0);
/// w.complete(50);
/// // Window full: the third op waits for the op finishing at 50.
/// assert_eq!(w.admit(0), 50);
/// w.complete(120);
/// ```
#[derive(Debug, Clone)]
pub struct Window {
    capacity: usize,
    inflight: BinaryHeap<Reverse<Cycle>>,
    admitted: u64,
    stall: Cycle,
}

impl Window {
    /// Creates a window with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "window capacity must be non-zero");
        Window {
            capacity,
            inflight: BinaryHeap::with_capacity(capacity + 1),
            admitted: 0,
            stall: 0,
        }
    }

    /// Capacity of the window.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of operations currently tracked as in flight.
    ///
    /// Note: entries completing in the past are only evicted lazily on
    /// [`admit`](Self::admit), so this is an upper bound.
    pub fn len(&self) -> usize {
        self.inflight.len()
    }

    /// Returns `true` if no operations are tracked.
    pub fn is_empty(&self) -> bool {
        self.inflight.is_empty()
    }

    /// Requests admission at `arrival`; returns the earliest admission
    /// cycle. Must be followed by exactly one [`complete`](Self::complete)
    /// call for this operation.
    pub fn admit(&mut self, arrival: Cycle) -> Cycle {
        self.admit_batch(arrival, 1)
    }

    /// Requests admission for `count` operations entering together at
    /// `arrival`; returns the earliest cycle the whole group can
    /// enter. The group needs `count` free slots — each member
    /// consumes its own — so the window waits for (and evicts) as
    /// many oldest completions as that takes. Must be followed by
    /// exactly `count` [`complete`](Self::complete) calls, one per
    /// member. Stall cycles accrue per member: all `count` operations
    /// wait from `arrival` to the returned cycle.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero or exceeds the capacity (a group
    /// wider than the window could never be in flight together).
    pub fn admit_batch(&mut self, arrival: Cycle, count: usize) -> Cycle {
        assert!(count > 0, "an admission group needs at least one operation");
        assert!(
            count <= self.capacity,
            "group ({count}) exceeds window capacity ({})",
            self.capacity
        );
        self.admitted += count as u64;
        let admitted = self.reserve(arrival, count);
        self.stall += (admitted - arrival) * count as Cycle;
        admitted
    }

    /// Requests admission for a group of operations with *individual*
    /// arrival cycles that enter together (a batch assembled from
    /// staggered arrivals); returns the earliest cycle the whole group
    /// can enter: no earlier than the latest member's arrival, and no
    /// earlier than `arrivals.len()` slots are free. Must be followed
    /// by exactly `arrivals.len()` [`complete`](Self::complete) calls.
    ///
    /// Unlike [`admit_batch`](Self::admit_batch) — whose members share
    /// one arrival — stall cycles accrue *per member from its own
    /// arrival*: member `i` is charged `admitted - arrivals[i]`. An
    /// early member waiting for late group-mates is genuinely waiting
    /// for admission, and that wait is part of the window's stall.
    ///
    /// # Panics
    ///
    /// Panics if `arrivals` is empty or longer than the capacity.
    pub fn admit_group(&mut self, arrivals: &[Cycle]) -> Cycle {
        assert!(
            !arrivals.is_empty(),
            "an admission group needs at least one operation"
        );
        assert!(
            arrivals.len() <= self.capacity,
            "group ({}) exceeds window capacity ({})",
            arrivals.len(),
            self.capacity
        );
        self.admitted += arrivals.len() as u64;
        let latest = *arrivals.iter().max().expect("group is non-empty");
        let admitted = self.reserve(latest, arrivals.len());
        for &arrival in arrivals {
            self.stall += admitted - arrival;
        }
        admitted
    }

    /// Waits for (and evicts) the oldest completions until `count`
    /// slots are free; returns the group's admission cycle.
    fn reserve(&mut self, arrival: Cycle, count: usize) -> Cycle {
        let mut admitted = arrival;
        while self.inflight.len() + count > self.capacity {
            let Reverse(oldest) = self
                .inflight
                .pop()
                .expect("an over-full window is non-empty");
            admitted = admitted.max(oldest);
        }
        admitted
    }

    /// Registers the completion cycle of the most recently admitted
    /// operation.
    pub fn complete(&mut self, completion: Cycle) {
        self.inflight.push(Reverse(completion));
        debug_assert!(self.inflight.len() <= self.capacity);
    }

    /// Convenience for `admit` + `complete` when the completion time is
    /// a function of the admission time. Returns the admission cycle.
    pub fn admit_until(&mut self, arrival: Cycle, completion: Cycle) -> Cycle {
        let at = self.admit(arrival);
        self.complete(completion.max(at));
        at
    }

    /// Total number of operations admitted.
    pub fn admitted(&self) -> u64 {
        self.admitted
    }

    /// Total cycles of admission delay caused by a full window.
    pub fn stall_cycles(&self) -> Cycle {
        self.stall
    }

    /// The cycle at which every currently tracked operation has
    /// completed (0 when empty).
    pub fn drain(&self) -> Cycle {
        self.inflight.iter().map(|Reverse(c)| *c).max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unconstrained_when_not_full() {
        let mut w = Window::new(8);
        for i in 0..8 {
            assert_eq!(w.admit(i), i);
            w.complete(i + 1000);
        }
        assert_eq!(w.stall_cycles(), 0);
    }

    #[test]
    fn throughput_is_capacity_over_latency() {
        // Classic Little's law check: capacity 4, latency 100 cycles,
        // infinitely fast producer => one completion per 25 cycles.
        let mut w = Window::new(4);
        let mut last = 0;
        for _ in 0..100 {
            let at = w.admit(0);
            let done = at + 100;
            w.complete(done);
            last = done;
        }
        // 100 ops * (100/4) = 2500, plus pipeline fill.
        assert_eq!(last, 96 / 4 * 100 + 100);
    }

    #[test]
    fn drain_returns_max_completion() {
        let mut w = Window::new(4);
        for done in [30, 10, 20] {
            let _ = w.admit(0);
            w.complete(done);
        }
        assert_eq!(w.drain(), 30);
    }

    #[test]
    fn admit_until_clamps_completion() {
        let mut w = Window::new(1);
        let _ = w.admit_until(0, 10);
        // Window of 1: next admission waits for cycle 10 even though the
        // caller claims completion at 5.
        let at = w.admit_until(0, 5);
        assert_eq!(at, 10);
    }

    #[test]
    fn batch_admission_reserves_one_slot_per_member() {
        let mut w = Window::new(4);
        for done in [10, 40, 20, 30] {
            let _ = w.admit(0);
            w.complete(done);
        }
        // A group of 3 needs 3 free slots: it waits for the three
        // oldest completions (10, 20, 30) and enters at cycle 30.
        assert_eq!(w.admit_batch(5, 3), 30);
        // Every member stalls from its requested cycle to admission.
        assert_eq!(w.stall_cycles(), (30 - 5) * 3);
        for done in [50, 60, 70] {
            w.complete(done);
        }
        assert!(w.len() <= w.capacity());
        assert_eq!(w.admitted(), 7);
    }

    #[test]
    fn group_admission_charges_each_member_from_its_own_arrival() {
        // Regression (per-member admission-stall accounting): a group
        // assembled from staggered arrivals must charge each member
        // from *its own* arrival, not from the group's latest one.
        let mut w = Window::new(8);
        let arrivals = [10, 40, 25, 40];
        let admitted = w.admit_group(&arrivals);
        // Window idle: the group enters when its last member arrives.
        assert_eq!(admitted, 40);
        // Members at 10 and 25 waited 30 and 15 cycles; the uniform
        // admit_batch(40, 4) accounting would have reported zero.
        assert_eq!(w.stall_cycles(), 30 + 15);
        assert_eq!(w.admitted(), 4);
        for done in [50, 60, 70, 80] {
            w.complete(done);
        }
        // A full window adds the slot wait on top, still per member.
        let mut full = Window::new(2);
        let _ = full.admit_until(0, 100);
        let _ = full.admit_until(0, 200);
        assert_eq!(full.admit_group(&[5, 30]), 200);
        assert_eq!(full.stall_cycles(), (200 - 5) + (200 - 30));
    }

    #[test]
    fn group_of_equal_arrivals_matches_admit_batch() {
        let mut a = Window::new(3);
        let mut b = Window::new(3);
        for done in [40, 10, 90] {
            let _ = a.admit(0);
            a.complete(done);
            let _ = b.admit(0);
            b.complete(done);
        }
        assert_eq!(a.admit_batch(5, 2), b.admit_group(&[5, 5]));
        assert_eq!(a.stall_cycles(), b.stall_cycles());
        assert_eq!(a.admitted(), b.admitted());
    }

    #[test]
    #[should_panic(expected = "exceeds window capacity")]
    fn group_wider_than_capacity_panics() {
        let _ = Window::new(2).admit_group(&[0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_group_panics() {
        let _ = Window::new(2).admit_group(&[]);
    }

    #[test]
    fn batch_as_wide_as_the_window_waits_for_a_full_drain() {
        let mut w = Window::new(2);
        let _ = w.admit_until(0, 100);
        let _ = w.admit_until(0, 50);
        assert_eq!(w.admit_batch(0, 2), 100);
        w.complete(120);
        w.complete(130);
        assert_eq!(w.drain(), 130);
    }

    #[test]
    fn batch_of_one_matches_plain_admit() {
        let mut a = Window::new(2);
        let mut b = Window::new(2);
        for done in [40, 10, 90, 30] {
            let at_a = a.admit(5);
            a.complete(done);
            let at_b = b.admit_batch(5, 1);
            b.complete(done);
            assert_eq!(at_a, at_b);
        }
        assert_eq!(a.stall_cycles(), b.stall_cycles());
        assert_eq!(a.admitted(), b.admitted());
    }

    #[test]
    #[should_panic(expected = "exceeds window capacity")]
    fn batch_wider_than_capacity_panics() {
        let _ = Window::new(2).admit_batch(0, 3);
    }

    #[test]
    #[should_panic(expected = "at least one operation")]
    fn empty_batch_panics() {
        let _ = Window::new(2).admit_batch(0, 0);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_panics() {
        let _ = Window::new(0);
    }
}
