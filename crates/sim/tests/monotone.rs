//! Property-style tests of the timing primitives' core contract.
//!
//! Every model in the workspace relies on one invariant (see the crate
//! docs): when requests are offered in non-decreasing arrival order,
//! each primitive's schedule is *monotone* — admissions, starts and
//! completions come out in non-decreasing order, and no event precedes
//! its request. These tests exercise that contract over pseudo-random
//! arrival sequences and service times.

use hipe_sim::{FifoWindow, MultiServer, Server, ThroughputPipe, Window};

/// Deterministic xorshift64* stream for arrival/service patterns.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Non-decreasing arrival sequence with random gaps (including bursts
/// of identical arrivals).
fn arrivals(seed: u64, n: usize) -> Vec<u64> {
    let mut rng = XorShift(seed | 1);
    let mut t = 0;
    (0..n)
        .map(|_| {
            t += rng.below(7); // 0 gaps make bursts
            t
        })
        .collect()
}

#[test]
fn server_schedule_is_monotone() {
    for seed in 1..=10 {
        let mut rng = XorShift(seed ^ 0xABCD);
        let mut server = Server::new();
        let mut prev = (0, 0);
        for arrival in arrivals(seed, 500) {
            let (start, end) = server.serve(arrival, 1 + rng.below(50));
            assert!(start >= arrival, "service before arrival");
            assert!(start >= prev.0 && end >= prev.1, "schedule went backwards");
            assert!(end > start);
            prev = (start, end);
        }
    }
}

#[test]
fn multi_server_completions_are_monotone_per_unit_and_bounded() {
    for &k in &[1usize, 3, 8] {
        let mut rng = XorShift(k as u64 + 99);
        let mut pool = MultiServer::new(k);
        let mut last_start = 0;
        for arrival in arrivals(k as u64, 400) {
            let (start, end) = pool.serve(arrival, 1 + rng.below(30));
            // Earliest-free placement: unit frontiers only advance, so
            // with non-decreasing arrivals, starts never regress.
            assert!(start >= last_start, "start went backwards");
            assert!(start >= arrival && end > start);
            last_start = start;
        }
        assert_eq!(pool.served(), 400);
    }
}

#[test]
fn window_admissions_are_monotone_and_never_early() {
    for seed in 1..=10 {
        let mut rng = XorShift(seed * 7919);
        let mut window = Window::new(1 + (seed as usize % 6));
        let mut prev_admit = 0;
        for arrival in arrivals(seed, 500) {
            let admit = window.admit(arrival);
            assert!(admit >= arrival, "admitted before arrival");
            assert!(admit >= prev_admit, "admissions went backwards");
            window.complete(admit + 1 + rng.below(100));
            prev_admit = admit;
        }
        assert_eq!(window.admitted(), 500);
    }
}

#[test]
fn fifo_window_retires_in_order_under_random_completions() {
    for seed in 1..=10 {
        let mut rng = XorShift(seed * 31 + 1);
        let mut rob = FifoWindow::new(4 + (seed as usize % 8));
        let mut prev_admit = 0;
        let mut prev_drain = 0;
        for arrival in arrivals(seed, 500) {
            let admit = rob.admit(arrival);
            assert!(admit >= arrival && admit >= prev_admit);
            // Completions jump around; retirement must still be ordered.
            rob.complete(admit + rng.below(200));
            let drain = rob.drain();
            assert!(drain >= prev_drain, "retire horizon went backwards");
            prev_admit = admit;
            prev_drain = drain;
        }
    }
}

#[test]
fn pipe_transfers_are_monotone_and_rate_limited() {
    for seed in 1..=10 {
        let mut rng = XorShift(seed + 404);
        let mut pipe = ThroughputPipe::new(4, 1, 10);
        let mut prev_done = 0;
        let mut total_bytes = 0;
        for arrival in arrivals(seed, 300) {
            let bytes = 1 + rng.below(256);
            let done = pipe.transfer(arrival, bytes);
            assert!(done >= arrival + pipe.latency(), "beat the wire latency");
            assert!(done >= prev_done, "transfers completed out of order");
            total_bytes += bytes;
            prev_done = done;
        }
        // No schedule can beat the serialization rate.
        assert!(prev_done >= total_bytes / 4);
        assert_eq!(pipe.bytes(), total_bytes);
    }
}

#[test]
fn window_throughput_obeys_littles_law_under_bursts() {
    // Regardless of burstiness, capacity C and fixed latency L bound
    // completions to one per L/C cycles in the long run.
    let (capacity, latency, n) = (8u64, 96u64, 2000u64);
    let mut window = Window::new(capacity as usize);
    let mut last = 0;
    for _ in 0..n {
        let at = window.admit(0);
        window.complete(at + latency);
        last = at + latency;
    }
    let lower = (n - capacity) / capacity * latency + latency;
    assert!(last >= lower, "{last} beats Little's law bound {lower}");
    assert!(last <= lower + latency, "{last} far above bound {lower}");
}
