//! Chrome Trace Event Format rendering.
//!
//! The exported JSON uses the object form (`{"traceEvents": [...]}`),
//! one event per line, with one *simulated cycle* mapped to one viewer
//! microsecond — cycle 12_345 shows as 12.345 ms on the Perfetto
//! timeline. All events share `pid` 0; each [`Track`](crate::Track)
//! becomes one `tid` with a `thread_name` metadata record, so the
//! viewer shows one named row per track in registration order.
//!
//! Sync-track spans render as complete (`"X"`) events with
//! a non-negative `dur`; async-track spans render as `"b"`/`"e"`
//! pairs keyed by the recorder-assigned id, so overlapping in-flight
//! lifetimes display stacked instead of corrupting a thread row.
//! The line-oriented layout is load-bearing: `check_figures --trace`
//! validates traces with the same line scanner the figure checks use.

use crate::{ArgValue, Args, TraceEvent, Tracer, TrackKind};
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_args(args: &Args, out: &mut String) {
    out.push_str(",\"args\":{");
    for (i, (key, value)) in args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{key}\":");
        match value {
            ArgValue::U64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::I64(v) => {
                let _ = write!(out, "{v}");
            }
            ArgValue::Str(v) => {
                out.push('"');
                escape(v, out);
                out.push('"');
            }
        }
    }
    out.push('}');
}

fn push_name(name: &str, out: &mut String) {
    out.push_str(",\"name\":\"");
    escape(name, out);
    out.push('"');
}

impl Tracer {
    /// Renders the recording as Chrome Trace Event Format JSON.
    ///
    /// `other_data` lands verbatim in the file's `otherData` object:
    /// each `(key, value)` pair is emitted as `"key": value` with the
    /// value string inserted as-is, so callers pass pre-rendered JSON
    /// values (`"12"`, `"\"HIPE\""`). The serve layer uses this to
    /// embed the `ServiceReport` counters the trace must reconcile
    /// with.
    pub fn to_chrome_json(&self, other_data: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(256 + self.events().len() * 96);
        out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"otherData\": {");
        for (i, (key, value)) in other_data.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{key}\": {value}");
        }
        out.push_str("\n},\n\"traceEvents\": [\n");
        out.push_str(
            "{\"ph\":\"M\",\"pid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"hipe (simulated cycles)\"}}",
        );
        for (tid, track) in self.tracks().iter().enumerate() {
            out.push_str(",\n");
            let _ = write!(out, "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},");
            out.push_str("\"name\":\"thread_name\",\"args\":{\"name\":\"");
            escape(&track.name, &mut out);
            out.push_str("\"}}");
            out.push_str(",\n");
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            );
        }
        for event in self.events() {
            out.push_str(",\n");
            match event {
                TraceEvent::Span { span, async_id } => {
                    let tid = span.track.index();
                    match self.tracks()[tid].kind {
                        TrackKind::Sync => {
                            debug_assert!(async_id.is_none());
                            let _ = write!(
                                out,
                                "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                                 \"cat\":\"hipe\"",
                                span.begin_cycle,
                                span.end_cycle - span.begin_cycle
                            );
                            push_name(&span.name, &mut out);
                            push_args(&span.args, &mut out);
                            out.push('}');
                        }
                        TrackKind::Async => {
                            let id = async_id.expect("async spans carry an id");
                            let _ = write!(
                                out,
                                "{{\"ph\":\"b\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                                 \"id\":{id},\"cat\":\"hipe\"",
                                span.begin_cycle
                            );
                            push_name(&span.name, &mut out);
                            push_args(&span.args, &mut out);
                            out.push('}');
                            out.push_str(",\n");
                            let _ = write!(
                                out,
                                "{{\"ph\":\"e\",\"pid\":0,\"tid\":{tid},\"ts\":{},\
                                 \"id\":{id},\"cat\":\"hipe\"",
                                span.end_cycle
                            );
                            push_name(&span.name, &mut out);
                            out.push('}');
                        }
                    }
                }
                TraceEvent::Instant {
                    track,
                    name,
                    at_cycle,
                    args,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"i\",\"pid\":0,\"tid\":{},\"ts\":{at_cycle},\
                         \"s\":\"t\",\"cat\":\"hipe\"",
                        track.index()
                    );
                    push_name(name, &mut out);
                    push_args(args, &mut out);
                    out.push('}');
                }
                TraceEvent::Counter {
                    track,
                    name,
                    at_cycle,
                    value,
                } => {
                    let _ = write!(
                        out,
                        "{{\"ph\":\"C\",\"pid\":0,\"tid\":{},\"ts\":{at_cycle},\"cat\":\"hipe\"",
                        track.index()
                    );
                    push_name(name, &mut out);
                    let _ = write!(out, ",\"args\":{{\"value\":{value}}}");
                    out.push('}');
                }
            }
        }
        out.push_str("\n]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{TraceSink, Tracer, TrackKind};

    fn sample() -> Tracer {
        let mut t = Tracer::new();
        let fe = t.track("front-end", TrackKind::Sync);
        let q = t.track("queries", TrackKind::Async);
        t.span_on(fe, "batch 0", 10, 30, vec![("queries", 4usize.into())]);
        t.span_on(q, "q0", 5, 90, vec![("tag", 1usize.into())]);
        t.instant(fe, "redispatch", 40, vec![("shard", 0usize.into())]);
        t.counter(fe, "batch_fill", 5, 2);
        t
    }

    #[test]
    fn renders_object_form_with_metadata_rows() {
        let json = sample().to_chrome_json(&[("queries", "1".to_string())]);
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"otherData\": {"));
        assert!(json.contains("\"queries\": 1"));
        assert!(json.contains("\"name\":\"front-end\""));
        assert!(json.contains("\"name\":\"queries\""));
        assert!(json.contains("thread_sort_index"));
    }

    #[test]
    fn sync_spans_are_complete_events_and_async_spans_are_pairs() {
        let json = sample().to_chrome_json(&[]);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"dur\":20"));
        let begins = json.matches("\"ph\":\"b\"").count();
        let ends = json.matches("\"ph\":\"e\"").count();
        assert_eq!(begins, 1);
        assert_eq!(ends, 1);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
    }

    #[test]
    fn one_event_per_line() {
        let json = sample().to_chrome_json(&[]);
        let event_lines = json
            .lines()
            .filter(|l| l.trim_start().starts_with("{\"ph\""))
            .count();
        // 1 process_name + 2 tracks x 2 metadata + 1 X + b/e pair +
        // 1 instant + 1 counter.
        assert_eq!(event_lines, 10);
    }

    #[test]
    fn escapes_quotes_and_control_characters() {
        let mut t = Tracer::new();
        let s = t.track("a\"b\\c\n", TrackKind::Sync);
        t.span_on(s, "x\ty", 0, 1, vec![("label", "p\"q".into())]);
        let json = t.to_chrome_json(&[]);
        assert!(json.contains("a\\\"b\\\\c\\n"));
        assert!(json.contains("x\\ty"));
        assert!(json.contains("p\\\"q"));
    }
}
