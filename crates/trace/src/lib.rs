//! Cycle-domain tracing and metrics for the HIPE stack.
//!
//! Every model in this workspace advances *simulated* time — modeled
//! cycles, not host wall-clock — so observability has to live in the
//! same domain. This crate provides the two primitives the rest of the
//! stack threads through:
//!
//! * a structured trace API ([`TraceSink`], [`Span`], instants,
//!   counters) whose timestamps are [`Cycle`]s, with a concrete
//!   recorder ([`Tracer`]) that exports Chrome Trace Event Format JSON
//!   (loads directly in Perfetto / `chrome://tracing`, one simulated
//!   cycle per viewer microsecond);
//! * a [`Metrics`] registry of named counters / gauges / histograms
//!   with snapshot, diff and JSON export, so component stats
//!   (vault activity, cache hits, engine squashes) surface through one
//!   uniform namespace instead of ad-hoc struct plumbing.
//!
//! The tracing seam is an `Option<&mut dyn TraceSink>`: callers that
//! pass `None` take one branch and otherwise run the exact code path
//! they always did. Emission happens strictly *after* the cycle
//! accounting it describes (reports and replayed schedules are read,
//! never perturbed), which is what makes trace-on runs provably
//! cycle-identical to trace-off runs.

mod chrome;
mod metrics;

pub use metrics::{Hist, Metric, Metrics};

use hipe_sim::Cycle;

/// Identifies one track (viewer row) of a [`Tracer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TrackId(pub(crate) u32);

impl TrackId {
    /// The track's position in registration order (== viewer `tid`).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// How events on a track relate to each other in time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrackKind {
    /// At most one span open at a time (a server, an engine): spans
    /// must nest or be disjoint, and export as complete (`"X"`)
    /// events.
    Sync,
    /// Overlapping spans are expected (in-flight query lifetimes):
    /// spans export as async begin/end (`"b"`/`"e"`) pairs with
    /// per-span ids.
    Async,
}

/// One registered track: a named row in the exported trace.
#[derive(Debug, Clone)]
pub struct Track {
    /// Display name (e.g. `"s0.r1 engine"`).
    pub name: String,
    /// Sync (nested spans) or async (overlapping spans).
    pub kind: TrackKind,
}

/// One argument value attached to an event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// Unsigned integer (cycle counts, byte counts, indices).
    U64(u64),
    /// Signed integer (gauge-like values).
    I64(i64),
    /// Free-form label.
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> Self {
        ArgValue::U64(v)
    }
}

impl From<usize> for ArgValue {
    fn from(v: usize) -> Self {
        ArgValue::U64(v as u64)
    }
}

impl From<u32> for ArgValue {
    fn from(v: u32) -> Self {
        ArgValue::U64(u64::from(v))
    }
}

impl From<i64> for ArgValue {
    fn from(v: i64) -> Self {
        ArgValue::I64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> Self {
        ArgValue::Str(v.to_string())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> Self {
        ArgValue::Str(v)
    }
}

/// Event argument list: small, ordered, rendered verbatim into the
/// exported JSON `args` object.
pub type Args = Vec<(&'static str, ArgValue)>;

/// A closed interval of simulated time on one track.
#[derive(Debug, Clone)]
pub struct Span {
    /// Track the span lives on.
    pub track: TrackId,
    /// Display name.
    pub name: String,
    /// First cycle of the interval.
    pub begin_cycle: Cycle,
    /// One past the work: `end_cycle >= begin_cycle`.
    pub end_cycle: Cycle,
    /// Attached arguments.
    pub args: Args,
}

/// One recorded event.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A closed interval. `async_id` is assigned by the recorder for
    /// spans on [`TrackKind::Async`] tracks (stable, unique per span)
    /// and `None` on sync tracks.
    Span {
        /// The interval.
        span: Span,
        /// Begin/end pairing id on async tracks.
        async_id: Option<u64>,
    },
    /// A zero-duration marker.
    Instant {
        /// Track the marker lives on.
        track: TrackId,
        /// Display name.
        name: String,
        /// When it happened.
        at_cycle: Cycle,
        /// Attached arguments.
        args: Args,
    },
    /// A sampled counter value (plots as a filled series).
    Counter {
        /// Track the sample lives on.
        track: TrackId,
        /// Series name.
        name: String,
        /// Sample time.
        at_cycle: Cycle,
        /// Sample value.
        value: u64,
    },
}

/// Where trace events go. The stack is generic over this (always as
/// `Option<&mut dyn TraceSink>`), so recorders, filters or streaming
/// writers can be swapped in without touching the emitting code.
pub trait TraceSink {
    /// Registers a track and returns its id. Called once per row
    /// before any event targets it.
    fn track(&mut self, name: &str, kind: TrackKind) -> TrackId;

    /// Records one span.
    fn span(&mut self, span: Span);

    /// Records one instant marker.
    fn instant(&mut self, track: TrackId, name: &str, at_cycle: Cycle, args: Args);

    /// Records one counter sample.
    fn counter(&mut self, track: TrackId, name: &str, at_cycle: Cycle, value: u64);

    /// Convenience: records a span from its parts.
    fn span_on(&mut self, track: TrackId, name: &str, begin: Cycle, end: Cycle, args: Args) {
        self.span(Span {
            track,
            name: name.to_string(),
            begin_cycle: begin,
            end_cycle: end,
            args,
        });
    }
}

/// The in-memory recorder: collects tracks and events, exports
/// Chrome Trace Event Format JSON (see [`Tracer::to_chrome_json`]).
#[derive(Debug, Default)]
pub struct Tracer {
    tracks: Vec<Track>,
    events: Vec<TraceEvent>,
    next_async_id: u64,
}

impl Tracer {
    /// An empty recorder.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Registered tracks, in registration (== `tid`) order.
    pub fn tracks(&self) -> &[Track] {
        &self.tracks
    }

    /// Recorded events, in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events (metadata excluded).
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// All recorded spans, in emission order.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span { span, .. } => Some(span),
            _ => None,
        })
    }

    /// Recorded instants with the given name.
    pub fn instants_named(&self, wanted: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Instant { name, .. } if name == wanted))
            .count()
    }

    fn check_track(&self, track: TrackId) {
        assert!(
            (track.0 as usize) < self.tracks.len(),
            "track {} was never registered ({} tracks)",
            track.0,
            self.tracks.len()
        );
    }
}

impl TraceSink for Tracer {
    fn track(&mut self, name: &str, kind: TrackKind) -> TrackId {
        let id = TrackId(u32::try_from(self.tracks.len()).expect("more than u32::MAX tracks"));
        self.tracks.push(Track {
            name: name.to_string(),
            kind,
        });
        id
    }

    fn span(&mut self, span: Span) {
        self.check_track(span.track);
        assert!(
            span.end_cycle >= span.begin_cycle,
            "span `{}` ends ({}) before it begins ({})",
            span.name,
            span.end_cycle,
            span.begin_cycle
        );
        let async_id = match self.tracks[span.track.0 as usize].kind {
            TrackKind::Sync => None,
            TrackKind::Async => {
                let id = self.next_async_id;
                self.next_async_id += 1;
                Some(id)
            }
        };
        self.events.push(TraceEvent::Span { span, async_id });
    }

    fn instant(&mut self, track: TrackId, name: &str, at_cycle: Cycle, args: Args) {
        self.check_track(track);
        self.events.push(TraceEvent::Instant {
            track,
            name: name.to_string(),
            at_cycle,
            args,
        });
    }

    fn counter(&mut self, track: TrackId, name: &str, at_cycle: Cycle, value: u64) {
        self.check_track(track);
        self.events.push(TraceEvent::Counter {
            track,
            name: name.to_string(),
            at_cycle,
            value,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_tracks_and_events_in_order() {
        let mut t = Tracer::new();
        let a = t.track("admission", TrackKind::Sync);
        let q = t.track("queries", TrackKind::Async);
        assert_eq!(a.index(), 0);
        assert_eq!(q.index(), 1);
        assert!(t.is_empty());
        t.instant(a, "arrival", 5, vec![("tag", 7usize.into())]);
        t.span_on(q, "q0", 5, 90, Vec::new());
        t.counter(a, "batch_fill", 5, 1);
        assert_eq!(t.len(), 3);
        assert_eq!(t.spans().count(), 1);
        assert_eq!(t.instants_named("arrival"), 1);
        assert_eq!(t.instants_named("departure"), 0);
    }

    #[test]
    fn async_spans_get_unique_ids_and_sync_spans_none() {
        let mut t = Tracer::new();
        let s = t.track("engine", TrackKind::Sync);
        let q = t.track("queries", TrackKind::Async);
        t.span_on(q, "q0", 0, 10, Vec::new());
        t.span_on(s, "scan", 0, 10, Vec::new());
        t.span_on(q, "q1", 2, 8, Vec::new());
        let ids: Vec<Option<u64>> = t
            .events()
            .iter()
            .map(|e| match e {
                TraceEvent::Span { async_id, .. } => *async_id,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids, vec![Some(0), None, Some(1)]);
    }

    #[test]
    #[should_panic(expected = "ends")]
    fn negative_duration_span_panics() {
        let mut t = Tracer::new();
        let s = t.track("engine", TrackKind::Sync);
        t.span_on(s, "scan", 10, 9, Vec::new());
    }

    #[test]
    #[should_panic(expected = "never registered")]
    fn unregistered_track_panics() {
        let mut t = Tracer::new();
        t.instant(TrackId(3), "x", 0, Vec::new());
    }

    #[test]
    fn zero_length_span_is_allowed() {
        let mut t = Tracer::new();
        let s = t.track("engine", TrackKind::Sync);
        t.span_on(s, "dispatch", 4, 4, Vec::new());
        assert_eq!(t.spans().count(), 1);
    }

    #[test]
    fn sink_is_object_safe() {
        fn emit(sink: &mut dyn TraceSink) {
            let track = sink.track("t", TrackKind::Sync);
            sink.span_on(track, "s", 1, 2, vec![("k", "v".into())]);
        }
        let mut t = Tracer::new();
        emit(&mut t);
        assert_eq!(t.len(), 1);
    }
}
