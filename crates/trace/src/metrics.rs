//! The named-metric registry.
//!
//! A [`Metrics`] maps dotted names (`"shard0.hmc.link_bytes"`) to
//! monotone counters, point-in-time gauges, or power-of-two
//! histograms. Component models keep their cheap `*Stats` structs on
//! the hot path; after a run, `export_metrics` adapters project those
//! structs into one registry namespace, where they can be snapshotted,
//! diffed across runs, and rendered as JSON.
//!
//! Names are kept in a `BTreeMap`, so iteration order — and therefore
//! the JSON export — is deterministic.

use std::collections::BTreeMap;

/// A power-of-two histogram of `u64` samples: bucket `i` counts values
/// whose bit length is `i` (bucket 0 counts zero), plus exact
/// count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Hist {
    fn bucket_of(value: u64) -> usize {
        match value {
            0 => 0,
            v => (64 - v.leading_zeros()) as usize,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram. `min`/`max` are not recoverable from a subtraction,
    /// so the diff keeps the current (whole-lifetime) extrema.
    fn diff(&self, base: &Hist) -> Hist {
        let mut out = self.clone();
        for (b, old) in out.buckets.iter_mut().zip(base.buckets.iter()) {
            *b = b.saturating_sub(*old);
        }
        out.count = self.count.saturating_sub(base.count);
        out.sum = self.sum.saturating_sub(base.sum);
        out
    }
}

/// One registered metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotone event count.
    Counter(u64),
    /// Point-in-time value.
    Gauge(i64),
    /// Sample distribution (boxed: a histogram is ~0.5 KiB and the
    /// registry mixes it with word-sized counters).
    Histogram(Box<Hist>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The registry: named counters, gauges and histograms.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    entries: BTreeMap<String, Metric>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `delta` to the named counter, registering it at zero
    /// first if absent.
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different metric kind.
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(v) => *v += delta,
            other => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Sets the named gauge.
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different metric kind.
    pub fn gauge_set(&mut self, name: &str, value: i64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert(Metric::Gauge(0))
        {
            Metric::Gauge(v) => *v = value,
            other => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// Records one sample into the named histogram.
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different metric kind.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self
            .entries
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.observe(value),
            other => panic!("metric `{name}` is a {}, not a histogram", other.kind()),
        }
    }

    /// Current value of the named counter (0 if never registered).
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different metric kind.
    pub fn counter(&self, name: &str) -> u64 {
        match self.entries.get(name) {
            None => 0,
            Some(Metric::Counter(v)) => *v,
            Some(other) => panic!("metric `{name}` is a {}, not a counter", other.kind()),
        }
    }

    /// Current value of the named gauge (0 if never registered).
    ///
    /// # Panics
    ///
    /// Panics if the name is registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> i64 {
        match self.entries.get(name) {
            None => 0,
            Some(Metric::Gauge(v)) => *v,
            Some(other) => panic!("metric `{name}` is a {}, not a gauge", other.kind()),
        }
    }

    /// The named metric, if registered.
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.entries.get(name)
    }

    /// Registered metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A frozen copy of the current state.
    pub fn snapshot(&self) -> Metrics {
        self.clone()
    }

    /// What happened since `base` (an earlier
    /// [`snapshot`](Self::snapshot) of this registry): counters and
    /// histogram
    /// populations subtract, gauges keep their current value, metrics
    /// absent from the base pass through whole.
    ///
    /// # Panics
    ///
    /// Panics if a name changed metric kind between the snapshots.
    pub fn diff(&self, base: &Metrics) -> Metrics {
        let mut out = Metrics::new();
        for (name, metric) in &self.entries {
            let diffed = match (metric, base.entries.get(name)) {
                (m, None) => m.clone(),
                (Metric::Counter(v), Some(Metric::Counter(b))) => {
                    Metric::Counter(v.saturating_sub(*b))
                }
                (Metric::Gauge(v), Some(Metric::Gauge(_))) => Metric::Gauge(*v),
                (Metric::Histogram(h), Some(Metric::Histogram(b))) => {
                    Metric::Histogram(Box::new(h.diff(b)))
                }
                (m, Some(b)) => panic!(
                    "metric `{name}` changed kind: {} in the base, {} now",
                    b.kind(),
                    m.kind()
                ),
            };
            out.entries.insert(name.clone(), diffed);
        }
        out
    }

    /// Renders the registry as a JSON object, one key per metric in
    /// name order. Counters and gauges render as bare integers;
    /// histograms as `{"count":..,"sum":..,"min":..,"max":..}`.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{");
        for (i, (name, metric)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n  \"{name}\": ");
            match metric {
                Metric::Counter(v) => {
                    let _ = write!(out, "{v}");
                }
                Metric::Gauge(v) => {
                    let _ = write!(out, "{v}");
                }
                Metric::Histogram(h) => {
                    let _ = write!(
                        out,
                        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                        h.count(),
                        h.sum(),
                        h.min(),
                        h.max()
                    );
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut m = Metrics::new();
        m.counter_add("hmc.activations", 3);
        m.counter_add("hmc.activations", 4);
        assert_eq!(m.counter("hmc.activations"), 7);
        assert_eq!(m.counter("never.registered"), 0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn gauges_overwrite() {
        let mut m = Metrics::new();
        m.gauge_set("cycles", 10);
        m.gauge_set("cycles", -2);
        assert_eq!(m.gauge("cycles"), -2);
    }

    #[test]
    fn histogram_tracks_count_sum_extrema_and_buckets() {
        let mut h = Hist::default();
        assert_eq!((h.min(), h.max(), h.count()), (0, 0, 0));
        for v in [0u64, 1, 2, 3, 1024] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1024);
        assert!((h.mean() - 206.0).abs() < 1e-9);
        // 0 -> bucket 0, 1 -> 1, 2..3 -> 2, 1024 -> 11.
        assert_eq!(Hist::bucket_of(0), 0);
        assert_eq!(Hist::bucket_of(1), 1);
        assert_eq!(Hist::bucket_of(3), 2);
        assert_eq!(Hist::bucket_of(1024), 11);
        assert_eq!(Hist::bucket_of(u64::MAX), 64);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn kind_mismatch_panics() {
        let mut m = Metrics::new();
        m.gauge_set("x", 1);
        m.counter_add("x", 1);
    }

    #[test]
    fn snapshot_diff_isolates_one_run() {
        let mut m = Metrics::new();
        m.counter_add("reads", 100);
        m.gauge_set("depth", 4);
        m.observe("lat", 8);
        let before = m.snapshot();
        m.counter_add("reads", 17);
        m.gauge_set("depth", 9);
        m.observe("lat", 32);
        m.counter_add("fresh", 2);
        let d = m.diff(&before);
        assert_eq!(d.counter("reads"), 17);
        assert_eq!(d.gauge("depth"), 9);
        assert_eq!(d.counter("fresh"), 2);
        match d.get("lat") {
            Some(Metric::Histogram(h)) => {
                assert_eq!(h.count(), 1);
                assert_eq!(h.sum(), 32);
            }
            other => panic!("lat should be a histogram, got {other:?}"),
        }
    }

    #[test]
    fn json_is_deterministic_and_name_ordered() {
        let mut m = Metrics::new();
        m.counter_add("b.second", 2);
        m.counter_add("a.first", 1);
        m.gauge_set("c.third", -3);
        m.observe("d.hist", 5);
        let json = m.to_json();
        let a = json.find("a.first").unwrap();
        let b = json.find("b.second").unwrap();
        let c = json.find("c.third").unwrap();
        assert!(a < b && b < c);
        assert!(json.contains("\"a.first\": 1"));
        assert!(json.contains("\"c.third\": -3"));
        assert!(json.contains("\"count\": 1, \"sum\": 5, \"min\": 5, \"max\": 5"));
        assert_eq!(json, m.snapshot().to_json());
    }
}
