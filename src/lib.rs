//! Root crate of the HIPE reproduction workspace.
//!
//! This crate exists to host the cross-crate integration tests in
//! `tests/` (and future runnable examples). The library surface simply
//! re-exports the top-level [`hipe`] crate for convenience.
//!
//! # Example
//!
//! ```
//! use hipe_workspace::{Arch, System};
//! use hipe_db::Query;
//!
//! let sys = System::new(1024, 1);
//! let report = sys.run(Arch::Hipe, &Query::q6());
//! assert_eq!(report.result.bitmask.len(), 1024);
//! ```

pub use hipe::*;
