//! Root crate of the HIPE reproduction workspace.
//!
//! This crate exists to host the runnable [examples](../examples) and the
//! cross-crate integration tests in `tests/`. The library surface simply
//! re-exports the top-level [`hipe`] crate for convenience.

pub use hipe::*;
