//! Cross-crate integration tests: the paper's headline experiment.
//!
//! These tests drive the full stack — table generation (`hipe-db`),
//! query lowering (`hipe-compiler`), the out-of-order core
//! (`hipe-cpu`), caches (`hipe-cache`), cube (`hipe-hmc`) and
//! logic-layer engine (`hipe-logic`) — through the `hipe::System`
//! driver, and assert the two properties everything else builds on:
//!
//! 1. every architecture (all four of [`Arch::ALL`]) computes the
//!    *bit-identical* scan result;
//! 2. the machines rank as in the paper on low-selectivity scans:
//!    HIPE at least ties HIVE, and both beat the x86 baseline and the
//!    stock HMC atomic ISA (whose 16 B operations pay a link round
//!    trip each).

use hipe::{Arch, System};
use hipe_db::{scan, Query};

const ROWS: usize = 20_000;
const SEED: u64 = 2018;

#[test]
fn all_architectures_agree_with_the_reference_on_q6() {
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let reference = scan::reference(sys.table(), &q);
    let mut session = sys.session();
    for arch in Arch::ALL {
        let report = session.run(arch, &q);
        assert_eq!(
            report.result, reference,
            "{arch} diverged from the reference executor"
        );
    }
    assert_eq!(sys.materializations(), 1);
}

#[test]
fn all_architectures_agree_across_the_selectivity_sweep() {
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    for permille in [0, 30, 100, 500, 1000] {
        let q = Query::quantity_below_permille(permille);
        let reference = scan::reference(sys.table(), &q);
        for arch in Arch::ALL {
            let report = session.run(arch, &q);
            assert_eq!(
                report.result, reference,
                "{arch} diverged at {permille} permille"
            );
        }
    }
}

#[test]
fn q6_selectivity_is_about_two_percent() {
    let sys = System::new(ROWS, SEED);
    let report = sys.run(Arch::Hipe, &Query::q6());
    let sel = report.selectivity();
    assert!((0.012..0.025).contains(&sel), "selectivity {sel}");
    assert!(report.result.aggregate.expect("Q6 aggregates") > 0);
}

#[test]
fn hipe_beats_the_host_baseline_on_a_low_selectivity_scan() {
    // The acceptance experiment: a <= 3 % selectivity single-predicate
    // scan, bit-identical results, HIPE strictly faster.
    let sys = System::new(ROWS, SEED);
    let q = Query::quantity_below_permille(30);
    let (base, hipe) = sys.compare(&q);

    assert!(hipe.selectivity() <= 0.03, "not a low-selectivity scan");
    assert_eq!(
        base.result.bitmask, hipe.result.bitmask,
        "match bitmasks differ between x86 and HIPE"
    );
    assert_eq!(base.result.matches, hipe.result.matches);
    assert!(
        hipe.cycles < base.cycles,
        "HIPE ({} cycles) did not beat the baseline ({} cycles)",
        hipe.cycles,
        base.cycles
    );
}

#[test]
fn machines_rank_as_in_the_paper_at_low_selectivity() {
    // Paper ordering: HIPE >= HIVE > { x86, stock HMC-ISA }. The stock
    // atomic ISA is the slowest machine on this workload: every 16 B
    // operation is a full packet round trip over the serial links.
    let sys = System::new(ROWS, SEED);
    let q = Query::quantity_below_permille(30);
    let mut session = sys.session();
    let [x86, hmc, hive, hipe] = Arch::ALL.map(|arch| session.run(arch, &q));

    assert!(
        hipe.cycles <= hive.cycles,
        "predication slowed the scan ({} vs {})",
        hipe.cycles,
        hive.cycles
    );
    assert!(
        hive.cycles < x86.cycles,
        "HIVE ({}) did not beat the baseline ({})",
        hive.cycles,
        x86.cycles
    );
    assert!(
        hive.cycles < hmc.cycles,
        "HIVE ({}) did not beat the stock HMC ISA ({})",
        hive.cycles,
        hmc.cycles
    );
}

#[test]
fn machines_rank_as_in_the_paper_on_q6() {
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    let [x86, hmc, hive, hipe] = Arch::ALL.map(|arch| session.run(arch, &Query::q6()));
    assert!(hipe.cycles <= hive.cycles);
    assert!(hive.cycles < x86.cycles);
    assert!(hive.cycles < hmc.cycles);
}

#[test]
fn hipe_beats_hive_thanks_to_predication_on_q6() {
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let hive = sys.run(Arch::Hive, &q);
    let hipe = sys.run(Arch::Hipe, &q);
    assert_eq!(hive.result, hipe.result);
    let stats = hipe.engine.expect("HIPE has engine stats");
    assert!(stats.squashed > 0, "predication never squashed anything");
    assert!(
        hipe.cycles <= hive.cycles,
        "predication made the scan slower ({} vs {})",
        hipe.cycles,
        hive.cycles
    );
    // Squashed loads skip DRAM: HIPE reads strictly fewer bytes.
    assert!(hipe.hmc.bytes_read < hive.hmc.bytes_read);
}

#[test]
fn near_data_execution_moves_less_link_traffic_and_energy() {
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let (base, hipe) = sys.compare(&q);
    assert!(
        hipe.hmc.link_bytes < base.hmc.link_bytes,
        "HIPE moved more link bytes ({}) than the baseline ({})",
        hipe.hmc.link_bytes,
        base.hmc.link_bytes
    );
    assert!(
        hipe.energy.link_pj() < base.energy.link_pj(),
        "HIPE spent more link energy than the baseline"
    );
}

#[test]
fn speedup_grows_as_selectivity_falls() {
    // Figure-4-style trend: predication pays off more the earlier
    // regions die. Selectivity 2 % (the lowest non-empty point the
    // 1..=50 quantity domain supports) must speed HIPE up at least as
    // much as 50 %.
    let sys = System::new(ROWS, SEED);
    let lo = sys.compare(&Query::quantity_below_permille(20));
    let hi = sys.compare(&Query::quantity_below_permille(500));
    let lo_speedup = lo.1.speedup_over(&lo.0);
    let hi_speedup = hi.1.speedup_over(&hi.0);
    assert!(
        lo_speedup >= hi_speedup,
        "speedup at 0.1 % ({lo_speedup:.2}x) below 50 % ({hi_speedup:.2}x)"
    );
    assert!(lo_speedup > 1.0);
}

#[test]
fn phase_breakdown_partitions_the_run() {
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    for arch in Arch::ALL {
        let report = session.run(arch, &Query::q6());
        assert_eq!(
            report.cycles,
            report.phases.scan + report.phases.gather_aggregate,
            "{arch} phase breakdown does not partition the run"
        );
        assert!(
            report.phases.dispatch <= report.phases.scan,
            "{arch} dispatched after the scan completed"
        );
        // Q6 aggregates: the gather phase is real work on every machine.
        assert!(report.phases.gather_aggregate > 0);
    }
    // The near-data machines dispatch asynchronously: the program is
    // fully posted long before the engine drains it.
    let hipe = session.run(Arch::Hipe, &Query::q6());
    assert!(hipe.phases.dispatch < hipe.phases.scan / 4);
}

#[test]
fn results_are_deterministic_across_runs() {
    let sys = System::new(4096, 77);
    let q = Query::q6();
    let a = sys.run(Arch::Hipe, &q);
    let b = sys.run(Arch::Hipe, &q);
    assert_eq!(a.result, b.result);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.hmc, b.hmc);
}

#[test]
fn tail_regions_are_handled_exactly() {
    // Rows not divisible by the 32-row region or the 8-row vector line:
    // padding lanes must never leak into the result.
    for rows in [1, 31, 33, 100, 1000, 4097] {
        let sys = System::new(rows, 5);
        let q = Query::quantity_below_permille(500);
        let reference = scan::reference(sys.table(), &q);
        let mut session = sys.session();
        for arch in Arch::ALL {
            let report = session.run(arch, &q);
            assert_eq!(report.result, reference, "{arch} wrong at rows={rows}");
            assert_eq!(report.result.bitmask.len(), rows);
        }
    }
}

#[test]
fn empty_and_full_scans_are_exact() {
    let sys = System::new(3000, 6);
    // quantity is 1..=50: nothing below 1, everything below 51.
    let none = Query::quantity_below_permille(0);
    let all = Query::quantity_below_permille(1000);
    let mut session = sys.session();
    for arch in Arch::ALL {
        assert_eq!(session.run(arch, &none).result.matches, 0);
        assert_eq!(session.run(arch, &all).result.matches, 3000);
    }
}
