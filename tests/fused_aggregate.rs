//! Cross-crate integration tests of the fused near-data aggregate.
//!
//! The paper's headline Q6 number depends on `SUM(l_extendedprice *
//! l_discount)` running *near the data*: on HIVE/HIPE the compiled
//! program multiplies and reduces matched tuples inside the logic
//! layer and deposits one 8 B partial per 32-row region, so the host
//! only reads back and combines compact partials instead of gathering
//! every matched tuple over the serial links. These tests pin down the
//! three properties the driver relies on:
//!
//! 1. the fused sum is *bit-identical* to the reference executor's
//!    (and to the host-gather machines') across the selectivity sweep;
//! 2. warm sessions replay fused runs deterministically, measurement
//!    for measurement;
//! 3. at low (≤ 3 %) selectivity the fused path is strictly cheaper in
//!    cycles than the same machine doing the host-side gather.

use hipe::{Arch, Backend, HipeBackend, HiveBackend, RunReport, System};
use hipe_db::{scan, Query};

const ROWS: usize = 20_000;
const SEED: u64 = 2018;

/// A Q6-shaped aggregate at a tunable selectivity.
fn aggregate_at(permille: u32) -> Query {
    Query::quantity_below_permille(permille).with_aggregate()
}

/// Runs `query` on a logic-layer machine with the host-side gather
/// instead of the fused tail (the pre-fusion comparison point).
fn run_host_gather(sys: &System, arch: Arch, query: &Query) -> RunReport {
    let plan = match arch {
        Arch::Hive => HiveBackend {
            fused_aggregate: false,
        }
        .compile(sys, query),
        Arch::Hipe => HipeBackend {
            fused_aggregate: false,
        }
        .compile(sys, query),
        other => panic!("{other} has no fused/host-gather split"),
    }
    .expect("aggregate queries compile");
    assert!(!plan.fused_aggregate());
    sys.session().run_plan(&plan)
}

#[test]
fn four_way_bit_identical_sums_across_the_selectivity_sweep() {
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    let mut queries: Vec<Query> = [0, 20, 100, 500, 1000].map(aggregate_at).to_vec();
    queries.push(Query::q6());
    for q in &queries {
        let reference = scan::reference(sys.table(), q);
        assert!(reference.aggregate.is_some(), "sweep queries aggregate");
        for arch in Arch::ALL {
            let report = session.run(arch, q);
            assert_eq!(
                report.result, reference,
                "{arch} diverged from the reference on [{q}]"
            );
        }
    }
    assert_eq!(sys.materializations(), 1);
}

#[test]
fn fused_and_host_gather_agree_bit_for_bit() {
    let sys = System::new(4096, SEED);
    let q = Query::q6();
    let mut session = sys.session();
    for arch in [Arch::Hive, Arch::Hipe] {
        let fused = session.run(arch, &q);
        let gathered = run_host_gather(&sys, arch, &q);
        assert_eq!(fused.result, gathered.result, "{arch} paths diverged");
        assert!(fused.phases.gather_aggregate > 0);
        assert!(gathered.phases.gather_aggregate > 0);
    }
}

#[test]
fn warm_sessions_replay_fused_aggregates_deterministically() {
    let sys = System::new(8192, 77);
    let q = Query::q6();
    let mut session = sys.session();
    let first = session.run(Arch::Hipe, &q);
    // A different query in between must leave no residue.
    session.run(Arch::Hipe, &aggregate_at(100));
    let second = session.run(Arch::Hipe, &q);
    let cold = sys.run(Arch::Hipe, &q);
    for (label, other) in [("warm replay", &second), ("cold run", &cold)] {
        assert_eq!(first.result, other.result, "{label}: result differs");
        assert_eq!(first.cycles, other.cycles, "{label}: cycles differ");
        assert_eq!(first.phases, other.phases, "{label}: phases differ");
        assert_eq!(first.engine, other.engine, "{label}: engine stats differ");
        assert_eq!(first.hmc, other.hmc, "{label}: cube stats differ");
    }
}

#[test]
fn fused_beats_host_gather_at_low_selectivity() {
    // The acceptance experiment: at <= 3 % selectivity (including Q6's
    // ~1.9 %), running the aggregate inside the logic layer must be
    // strictly cheaper than shipping matched tuples to the host —
    // on HIPE and on HIVE.
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    let mut queries = vec![aggregate_at(20), aggregate_at(30)];
    queries.push(Query::q6());
    for q in &queries {
        for arch in [Arch::Hive, Arch::Hipe] {
            let fused = session.run(arch, q);
            assert!(
                fused.selectivity() <= 0.03,
                "not a low-selectivity point: {}",
                fused.selectivity()
            );
            let gathered = run_host_gather(&sys, arch, q);
            assert_eq!(fused.result, gathered.result);
            assert!(
                fused.cycles < gathered.cycles,
                "fused {arch} ({} cycles) not cheaper than host gather ({} cycles) on [{q}]",
                fused.cycles,
                gathered.cycles,
            );
        }
    }
}

#[test]
fn fused_readback_moves_fewer_link_bytes_than_the_gather() {
    // The mechanism behind the win: partial readback is a few packets,
    // the gather is two uncached round trips per matched tuple.
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let fused = sys.session().run(Arch::Hipe, &q);
    let gathered = run_host_gather(&sys, Arch::Hipe, &q);
    // Compare only the aggregate phase's traffic: subtract the shared
    // scan program dispatch (identical instruction count per region
    // modulo the five-instruction tail, which the fused side pays).
    assert!(
        fused.phases.gather_aggregate < gathered.phases.gather_aggregate,
        "fused readback ({}) not cheaper than per-tuple gather ({})",
        fused.phases.gather_aggregate,
        gathered.phases.gather_aggregate
    );
}

#[test]
fn fused_partials_match_per_region_reference_sums() {
    // White-box check on the stored partials themselves: each 8 B
    // slot holds exactly the reference sum of its 32-row region.
    let sys = System::new(1000, 9);
    let q = Query::q6();
    let program = hipe_compiler::lower_logic_aggregate(&q, sys.layout(), false, None)
        .expect("valid aggregate");
    let mut session = sys.session();
    session.run(Arch::Hive, &q);
    let reference = scan::reference(sys.table(), &q);
    let mut total: i128 = 0;
    for region in 0..program.regions() {
        let expect: i128 = (region * 32..((region + 1) * 32).min(1000))
            .filter(|&i| reference.bitmask.get(i))
            .map(|i| {
                sys.table().value(hipe_db::Column::ExtendedPrice, i) as i128
                    * sys.table().value(hipe_db::Column::Discount, i) as i128
            })
            .sum();
        let stored = session.hmc().read_u64(program.agg_addr(region)) as i64 as i128;
        assert_eq!(stored, expect, "partial of region {region}");
        total += stored;
    }
    assert_eq!(Some(total), reference.aggregate);
}
