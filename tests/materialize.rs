//! Properties of the zero-copy materialization path.
//!
//! The contract under test: [`DsmLayout::materialize_into`] writing
//! straight into a resident image slice is byte-for-byte identical to
//! the allocating [`DsmLayout::materialize`] wrapper — over plain,
//! partitioned and row-offset layouts, including the remainder region
//! at the tail — and a session whose cube image is rematerialized in
//! place replays its workload bit- and cycle-identically to the cold
//! run.

use hipe::{Arch, System};
use hipe_db::{Column, DsmLayout, LineitemTable, Query, COLUMN_BYTES, REGION_BYTES, VAULTS};

const SEED: u64 = 77;

/// One full vault sweep — the base alignment partitioned layouts
/// require.
const SWEEP: u64 = VAULTS as u64 * REGION_BYTES;

/// (rows, partitions, base) layouts covering one-region tables, full
/// partition fans, non-zero base addresses and ragged remainder
/// regions (row counts straddling the 64-row mask words and the
/// region size).
const CASES: [(usize, usize, u64); 6] = [
    (100, 1, 0),
    (4096, 4, 0),
    (1000, 8, 0),
    (257, 1, 96),
    (33, 2, SWEEP),
    (64, 32, 0),
];

fn layout_for(rows: usize, partitions: usize, base: u64) -> DsmLayout {
    if partitions == 1 {
        DsmLayout::new(base, rows)
    } else {
        DsmLayout::partitioned(base, rows, partitions)
    }
}

#[test]
fn in_place_materialization_is_byte_identical_to_the_allocating_path() {
    for (rows, partitions, base) in CASES {
        let table = LineitemTable::generate(rows, SEED);
        let layout = layout_for(rows, partitions, base);
        let reference = layout.materialize(&table);
        assert_eq!(
            reference.len() as u64,
            layout.image_bytes(),
            "{rows}x{partitions}@{base}: allocating path spans the image"
        );

        // A dirty target: every stale byte must be overwritten, so the
        // column padding, mask area and aggregate area all come back
        // zeroed rather than inherited.
        let mut image = vec![0xAB_u8; layout.image_bytes() as usize];
        layout.materialize_into(&table, &mut image);
        assert_eq!(
            image, reference,
            "{rows}x{partitions}@{base}: in-place image diverges"
        );
    }
}

#[test]
fn materialized_columns_round_trip_every_value() {
    for (rows, partitions, base) in CASES {
        let table = LineitemTable::generate(rows, SEED);
        let layout = layout_for(rows, partitions, base);
        let mut image = vec![0xCD_u8; layout.image_bytes() as usize];
        layout.materialize_into(&table, &mut image);
        for c in Column::ALL {
            for (i, &v) in table.column(c).iter().enumerate() {
                let at = (layout.value_addr(c, i) - base) as usize;
                let got = i64::from_le_bytes(
                    image[at..at + COLUMN_BYTES as usize]
                        .try_into()
                        .expect("column value is 8 bytes"),
                );
                assert_eq!(got, v, "{rows}x{partitions}@{base}: {c:?}[{i}] corrupted");
            }
        }
        // Everything past the column data — mask and aggregate areas —
        // is zeroed, not left to the caller.
        let tail = (layout.mask_base() - base) as usize;
        assert!(
            image[tail..].iter().all(|&b| b == 0),
            "{rows}x{partitions}@{base}: mask/agg area not zeroed"
        );
    }
}

#[test]
#[should_panic(expected = "does not span the layout")]
fn a_short_image_slice_is_rejected() {
    let table = LineitemTable::generate(64, SEED);
    let layout = DsmLayout::new(0, 64);
    let mut image = vec![0u8; layout.image_bytes() as usize - 1];
    layout.materialize_into(&table, &mut image);
}

#[test]
fn warm_runs_after_in_place_rematerialization_match_cold_runs() {
    let sys = System::new(2048, SEED);
    let queries = [Query::q6(), Query::quantity_below_permille(250)];
    for arch in Arch::ALL {
        let mut session = sys.session();
        let cold: Vec<_> = queries.iter().map(|q| session.run(arch, q)).collect();
        session.rematerialize();
        for (q, before) in queries.iter().zip(&cold) {
            let after = session.run(arch, q);
            assert_eq!(
                before.result, after.result,
                "{arch} on [{q}]: result drifted after rematerialization"
            );
            assert_eq!(
                before.cycles, after.cycles,
                "{arch} on [{q}]: cycles drifted after rematerialization"
            );
        }
    }
    // Each session materializes once at construction; the explicit
    // rematerializations are the only extra image writes.
    assert_eq!(
        sys.materializations(),
        2 * Arch::ALL.len() as u64,
        "unexpected materialization count"
    );
}
