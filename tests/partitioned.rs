//! Cross-crate integration tests of partitioned execution: N
//! vault-group engines scanning one table concurrently.
//!
//! The contract under test, layer by layer:
//!
//! 1. **Figures preserved** — a `partitions: 1` system is the paper's
//!    machine: identical results, cycles, phases, stats and energy to
//!    the default configuration, for every architecture.
//! 2. **Correctness under partitioning** — with any partition count,
//!    all four machines stay bit-identical to the reference executor
//!    (the union of the per-partition masks *is* the single-engine
//!    mask), across selectivities, row counts on region/partition
//!    edges, and empty partitions.
//! 3. **Warm == cold** — the session reset protocol also covers the
//!    cluster's per-vault-group state.
//! 4. **The point of it all** — at `partitions: 4` the HIVE/HIPE Q6
//!    scan phase is >= 2.5x faster than single-engine, and per-engine
//!    DRAM traffic stays inside each engine's own vault group.

use hipe::{Arch, RunReport, System};
use hipe_db::{scan, Query};

const ROWS: usize = 16_384;
const SEED: u64 = 2018;

/// Full-fidelity comparison of two reports.
fn assert_same_report(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.result, b.result, "{what}: scan result differs");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles differ");
    assert_eq!(a.phases, b.phases, "{what}: phase breakdown differs");
    assert_eq!(a.partitions, b.partitions, "{what}: partitions differ");
    assert_eq!(a.hmc, b.hmc, "{what}: cube stats differ");
    assert_eq!(a.engine, b.engine, "{what}: engine stats differ");
    assert_eq!(
        a.energy.total_pj(),
        b.energy.total_pj(),
        "{what}: energy differs"
    );
}

#[test]
fn one_partition_reproduces_the_default_figures_exactly() {
    // `partitions: 1` must leave every existing cycle/energy figure
    // unchanged: same layout, same programs, same measurements.
    let default = System::new(4096, SEED);
    let single = System::partitioned(4096, SEED, 1);
    let queries = [
        Query::q6(),
        Query::quantity_below_permille(30),
        Query::quantity_below_permille(1000),
    ];
    let mut a = default.session();
    let mut b = single.session();
    for q in &queries {
        for arch in Arch::ALL {
            assert_same_report(
                &a.run(arch, q),
                &b.run(arch, q),
                &format!("{arch} on [{q}]"),
            );
        }
    }
}

#[test]
fn all_architectures_agree_with_the_reference_under_partitioning() {
    for partitions in [2, 4, 8] {
        let sys = System::partitioned(ROWS, SEED, partitions);
        let q = Query::q6();
        let reference = scan::reference(sys.table(), &q);
        let mut session = sys.session();
        for arch in Arch::ALL {
            let report = session.run(arch, &q);
            assert_eq!(
                report.result, reference,
                "{arch} diverged at {partitions} partitions"
            );
        }
        assert_eq!(sys.materializations(), 1);
    }
}

#[test]
fn partition_mask_union_is_bit_identical_across_the_selectivity_sweep() {
    // Property: each partition writes only its own regions' masks, so
    // the assembled bitmask must equal both the single-engine mask and
    // the reference — at every selectivity, on both logic machines.
    let single = System::new(8192, SEED);
    let quad = System::partitioned(8192, SEED, 4);
    let mut s1 = single.session();
    let mut s4 = quad.session();
    for permille in [0, 20, 100, 500, 1000] {
        let q = Query::quantity_below_permille(permille);
        let reference = scan::reference(single.table(), &q);
        for arch in [Arch::Hive, Arch::Hipe] {
            let one = s1.run(arch, &q);
            let four = s4.run(arch, &q);
            assert_eq!(
                four.result.bitmask, one.result.bitmask,
                "{arch} at {permille} permille: partition union != single mask"
            );
            assert_eq!(four.result, reference, "{arch} at {permille} permille");
        }
    }
}

#[test]
fn rows_on_region_and_partition_edges_are_exact() {
    // Row counts sitting exactly on 32-row region edges, one off them,
    // and on whole vault-sweep (1024-row) partition edges.
    for rows in [1, 31, 32, 33, 1023, 1024, 1025, 2048, 4097] {
        for partitions in [2, 4, 8] {
            let sys = System::partitioned(rows, 7, partitions);
            let q = Query::quantity_below_permille(500);
            let reference = scan::reference(sys.table(), &q);
            let mut session = sys.session();
            for arch in Arch::ALL {
                let report = session.run(arch, &q);
                assert_eq!(
                    report.result, reference,
                    "{arch} wrong at rows={rows} partitions={partitions}"
                );
                assert_eq!(report.result.bitmask.len(), rows);
            }
        }
    }
}

#[test]
fn empty_partitions_are_harmless_and_idle() {
    // 64 rows = 2 regions: with 8 partitions only partition 0's vault
    // group holds data; the other seven engines must stay idle and the
    // result must still be exact — including a fused aggregate.
    let sys = System::partitioned(64, 9, 8);
    let mut session = sys.session();
    for q in [Query::quantity_below_permille(500), Query::q6()] {
        let reference = scan::reference(sys.table(), &q);
        for arch in Arch::ALL {
            assert_eq!(session.run(arch, &q).result, reference, "{arch} on [{q}]");
        }
        let hipe = session.run(Arch::Hipe, &q);
        assert_eq!(hipe.partitions.len(), 8);
        assert!(hipe.partitions[0].instructions > 0);
        for p in &hipe.partitions[1..] {
            assert_eq!(
                (p.instructions, p.scan, p.dram_bytes),
                (0, 0, 0),
                "partition {} not idle on [{q}]",
                p.partition
            );
        }
    }
}

#[test]
fn warm_partitioned_sessions_replay_cold_runs_exactly() {
    // Regression for the reset protocol under partitions > 1: the
    // cube's per-vault-group accounting (and everything else) must be
    // rebuilt between runs, so warm == cold measurement for
    // measurement.
    let sys = System::partitioned(8192, 77, 4);
    let q = Query::q6();
    let mut session = sys.session();
    let first = session.run(Arch::Hipe, &q);
    // A different query in between must leave no residue.
    session.run(Arch::Hive, &Query::quantity_below_permille(100));
    let second = session.run(Arch::Hipe, &q);
    let cold = sys.run(Arch::Hipe, &q);
    assert_same_report(&first, &second, "warm replay");
    assert_same_report(&first, &cold, "cold run");
    // The per-partition breakdown is live data, not zeros.
    assert!(first.partitions.iter().all(|p| p.dram_bytes > 0));
}

#[test]
fn four_engines_speed_the_q6_scan_phase_by_at_least_2_5x() {
    // The acceptance experiment: partitions: 4 drops the HIVE/HIPE Q6
    // scan phase >= 2.5x below single-engine, results bit-identical.
    let single = System::new(ROWS, SEED);
    let quad = System::partitioned(ROWS, SEED, 4);
    let q = Query::q6();
    for arch in [Arch::Hive, Arch::Hipe] {
        let one = single.run(arch, &q);
        let four = quad.run(arch, &q);
        assert_eq!(one.result, four.result, "{arch} diverged");
        let speedup = one.phases.scan as f64 / four.phases.scan.max(1) as f64;
        assert!(
            speedup >= 2.5,
            "{arch}: scan phase sped up only {speedup:.2}x ({} -> {})",
            one.phases.scan,
            four.phases.scan
        );
        // End-to-end cycles drop too (the readback got slightly
        // bigger, the scan much smaller).
        assert!(four.cycles < one.cycles);
    }
}

#[test]
fn scan_cycles_shrink_monotonically_with_partition_count() {
    let q = Query::q6();
    for arch in [Arch::Hive, Arch::Hipe] {
        let mut prev_scan = u64::MAX;
        let mut prev_cycles = u64::MAX;
        for partitions in [1, 2, 4, 8] {
            let sys = System::partitioned(ROWS, SEED, partitions);
            let r = sys.run(arch, &q);
            assert!(
                r.phases.scan <= prev_scan && r.cycles <= prev_cycles,
                "{arch}: not monotone at {partitions} partitions \
                 (scan {prev_scan} -> {}, cycles {prev_cycles} -> {})",
                r.phases.scan,
                r.cycles
            );
            prev_scan = r.phases.scan;
            prev_cycles = r.cycles;
        }
    }
}

#[test]
fn engines_work_only_their_own_vault_groups() {
    // During the scan phase each engine's DRAM traffic stays inside
    // its own vault group, and the groups are loaded evenly on a
    // uniform table (the per-partition report carries the accounting).
    let sys = System::partitioned(ROWS, SEED, 4);
    let report = sys.run(Arch::Hive, &Query::quantity_below_permille(500));
    assert_eq!(report.partitions.len(), 4);
    let bytes: Vec<u64> = report.partitions.iter().map(|p| p.dram_bytes).collect();
    let (min, max) = (
        *bytes.iter().min().expect("four partitions"),
        *bytes.iter().max().expect("four partitions"),
    );
    assert!(min > 0, "an engine moved no data: {bytes:?}");
    // Uniform data, equal region counts: within a few percent.
    assert!(max - min < max / 10, "unbalanced groups: {bytes:?}");
    // Every engine dispatched the same instruction count and finished
    // within the overall scan phase.
    for p in &report.partitions {
        assert_eq!(p.instructions, report.partitions[0].instructions);
        assert!(p.scan <= report.phases.scan);
    }
}

#[test]
fn fused_aggregates_stay_exact_under_partitioning() {
    // The partitioned aggregate re-groups partials by each engine's
    // local region order; the combined sum must still be bit-identical
    // to the reference and to the host-gather machines.
    for partitions in [2, 4, 8] {
        let sys = System::partitioned(10_000, SEED, partitions);
        let mut session = sys.session();
        for permille in [0, 20, 500] {
            let q = Query::quantity_below_permille(permille).with_aggregate();
            let reference = scan::reference(sys.table(), &q);
            for arch in Arch::ALL {
                let report = session.run(arch, &q);
                assert_eq!(
                    report.result, reference,
                    "{arch} at {partitions} partitions, {permille} permille"
                );
            }
        }
    }
}
