//! End-to-end acceptance tests of replication, routing and failover.
//!
//! The PR-level contract: whichever replica a router picks for each
//! shard, a replicated `Cluster` returns bit-identical query results
//! to the full scatter-gather path *and* to a single monolithic
//! `System` on all four architectures — and a replica killed at any
//! point of a service run leaves the service answer bit-identical to
//! the fault-free run.

use hipe::{Arch, System};
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, ClusterConfig, FaultPlan, ServiceConfig};

const SEED: u64 = 2024;

/// Worker widths the determinism tests sweep: serial, two threads and
/// the full host width, deduplicated.
fn worker_sweep() -> Vec<usize> {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut widths = vec![1usize, 2, cpus];
    widths.sort_unstable();
    widths.dedup();
    widths
}

/// A replicated cluster built with an explicit host worker width.
fn replicated_with_workers(rows: usize, shards: usize, replicas: usize, workers: usize) -> Cluster {
    Cluster::with_config(ClusterConfig {
        workers,
        ..ClusterConfig::replicated(rows, SEED, shards, replicas)
    })
}

#[test]
fn routed_queries_match_scatter_gather_and_the_monolith() {
    // 1000 rows over 3 shards exercises the uneven split (334/333/333)
    // and puts rows exactly on shard edges; the permille sweep covers
    // empty, sparse, dense and all-rows selectivities.
    const ROWS: usize = 1000;
    let mono = System::new(ROWS, SEED);
    let mut mono_session = mono.session();
    let cluster = Cluster::replicated(ROWS, SEED, 3, 2);
    let mut session = cluster.session();
    let routes: [[usize; 3]; 4] = [[0, 0, 0], [1, 1, 1], [0, 1, 0], [1, 0, 1]];
    let mut queries = vec![Query::q6()];
    for pm in [0, 100, 500, 1000] {
        queries.push(Query::quantity_below_permille(pm));
        queries.push(Query::quantity_below_permille(pm).with_aggregate());
    }
    for query in &queries {
        for arch in Arch::ALL {
            let m = mono_session.run(arch, query);
            let full = session.run(arch, query);
            assert_eq!(full.result, m.result, "{arch}, [{query}]: scatter-gather");
            for route in &routes {
                let routed = session.run_routed(arch, query, route);
                assert_eq!(
                    routed.result, m.result,
                    "{arch}, [{query}], route {route:?}"
                );
            }
        }
    }
    // The whole sweep warmed one session: a materialization per
    // replica cube (3 shards x 2 replicas), none per query.
    assert_eq!(cluster.materializations(), 6);
}

#[test]
fn killing_a_replica_at_any_point_of_the_run_is_answer_invariant() {
    let cluster = Cluster::replicated(512, SEED, 2, 2);
    let mix = vec![
        (Query::q6(), 2),
        (Query::quantity_below_permille(100), 3),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ];
    let cfg = ServiceConfig::closed(Arch::Hipe, 24, mix, 4);
    let clean = run_service(&cluster, &cfg);
    assert_eq!(clean.failovers, 0);
    let digest = clean.answers_digest();
    for shard in 0..2 {
        for replica in 0..2 {
            for tenth in 1..10u64 {
                let at_cycle = clean.makespan * tenth / 10;
                let failed = run_service(
                    &cluster,
                    &ServiceConfig {
                        faults: vec![FaultPlan::new(shard, replica, at_cycle)],
                        ..cfg.clone()
                    },
                );
                let ctx = format!("shard {shard} replica {replica} killed at {at_cycle}");
                assert_eq!(failed.queries, clean.queries, "{ctx}: queries served");
                assert_eq!(failed.failovers, 1, "{ctx}: failover count");
                assert_eq!(failed.answers, clean.answers, "{ctx}: answers");
                assert_eq!(failed.answers_digest(), digest, "{ctx}: digest");
                assert!(
                    failed.replica_busy[shard][replica] <= at_cycle,
                    "{ctx}: the dead replica kept serving"
                );
            }
        }
    }
}

#[test]
fn failover_is_answer_invariant_on_all_architectures() {
    let cluster = Cluster::replicated(512, SEED, 2, 2);
    let mix = vec![(Query::q6(), 1), (Query::quantity_below_permille(250), 1)];
    for arch in Arch::ALL {
        let cfg = ServiceConfig::closed(arch, 16, mix.clone(), 4);
        let clean = run_service(&cluster, &cfg);
        let failed = run_service(
            &cluster,
            &ServiceConfig {
                faults: vec![FaultPlan::new(1, 0, clean.makespan / 2)],
                ..cfg
            },
        );
        assert_eq!(failed.queries, clean.queries, "{arch}");
        assert_eq!(failed.failovers, 1, "{arch}");
        assert_eq!(failed.answers, clean.answers, "{arch}");
        assert_eq!(failed.answers_digest(), clean.answers_digest(), "{arch}");
    }
}

#[test]
fn host_thread_count_never_changes_routed_results_or_cycles() {
    const ROWS: usize = 1000;
    let base = replicated_with_workers(ROWS, 3, 2, 1);
    let mut base_session = base.session();
    let routes: [[usize; 3]; 3] = [[0, 0, 0], [1, 1, 1], [0, 1, 0]];
    let queries = [
        Query::q6(),
        Query::quantity_below_permille(100),
        Query::quantity_below_permille(500).with_aggregate(),
    ];
    for workers in worker_sweep() {
        let cluster = replicated_with_workers(ROWS, 3, 2, workers);
        let mut session = cluster.session();
        for query in &queries {
            for arch in Arch::ALL {
                let b = base_session.run(arch, query);
                let full = session.run(arch, query);
                let ctx = format!("{workers} workers, {arch}, [{query}]");
                assert_eq!(full.result, b.result, "{ctx}: scatter-gather result");
                assert_eq!(full.cycles, b.cycles, "{ctx}: scatter-gather cycles");
                for route in &routes {
                    let br = base_session.run_routed(arch, query, route);
                    let routed = session.run_routed(arch, query, route);
                    assert_eq!(routed.result, br.result, "{ctx}, route {route:?}: result");
                    assert_eq!(routed.cycles, br.cycles, "{ctx}, route {route:?}: cycles");
                }
            }
        }
    }
}

#[test]
fn host_thread_count_never_changes_failover_outcomes() {
    let mix = vec![(Query::q6(), 1), (Query::quantity_below_permille(250), 1)];
    let cfg = ServiceConfig::closed(Arch::Hipe, 16, mix, 4);
    let serial = replicated_with_workers(512, 2, 2, 1);
    let clean = run_service(&serial, &cfg);
    let fault_cfg = ServiceConfig {
        faults: vec![FaultPlan::new(1, 0, clean.makespan / 2)],
        ..cfg.clone()
    };
    let base_failed = run_service(&serial, &fault_cfg);
    for workers in worker_sweep() {
        let cluster = replicated_with_workers(512, 2, 2, workers);
        let ctx = format!("{workers} workers");
        let report = run_service(&cluster, &cfg);
        assert_eq!(report.answers, clean.answers, "{ctx}: clean answers");
        assert_eq!(
            report.answers_digest(),
            clean.answers_digest(),
            "{ctx}: clean digest"
        );
        assert_eq!(report.makespan, clean.makespan, "{ctx}: clean makespan");
        let failed = run_service(&cluster, &fault_cfg);
        assert_eq!(failed.failovers, base_failed.failovers, "{ctx}: failovers");
        assert_eq!(failed.answers, base_failed.answers, "{ctx}: failed answers");
        assert_eq!(
            failed.makespan, base_failed.makespan,
            "{ctx}: failed makespan"
        );
        assert_eq!(
            failed.replica_busy, base_failed.replica_busy,
            "{ctx}: replica busy"
        );
    }
}
