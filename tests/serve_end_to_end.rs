//! End-to-end acceptance test of the sharded query service.
//!
//! The PR-level contract: a `Cluster` of ≥ 2 shards returns
//! bit-identical query results to a single `System` on all four
//! architectures, and service throughput under a saturating load is
//! monotone non-decreasing in shard count up to 4 shards.

use hipe::{Arch, System};
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, ServiceConfig};

const ROWS: usize = 4096;
const SEED: u64 = 2024;

#[test]
fn multi_shard_cluster_is_bit_identical_to_the_monolithic_system() {
    let mono = System::new(ROWS, SEED);
    let mut mono_session = mono.session();
    for shards in [2, 4] {
        let cluster = Cluster::new(ROWS, SEED, shards);
        let mut session = cluster.session();
        for query in [
            Query::q6(),
            Query::quantity_below_permille(30),
            Query::quantity_below_permille(500).with_aggregate(),
        ] {
            for arch in Arch::ALL {
                let c = session.run(arch, &query);
                let m = mono_session.run(arch, &query);
                assert_eq!(
                    c.result.bitmask, m.result.bitmask,
                    "{shards} shards, {arch}, [{query}]: masks"
                );
                assert_eq!(
                    c.result.aggregate, m.result.aggregate,
                    "{shards} shards, {arch}, [{query}]: sums"
                );
                assert_eq!(c.result, m.result);
            }
        }
        assert_eq!(cluster.materializations(), shards as u64);
    }
    assert_eq!(mono.materializations(), 1);
}

#[test]
fn service_throughput_scales_monotonically_to_four_shards() {
    let mix = vec![(Query::q6(), 1), (Query::quantity_below_permille(100), 2)];
    let mut last = 0;
    for shards in [1usize, 2, 4] {
        let cluster = Cluster::new(ROWS, SEED, shards);
        let cfg = ServiceConfig::closed(Arch::Hipe, 64, mix.clone(), 8);
        let report = run_service(&cluster, &cfg);
        assert_eq!(report.queries, 64);
        let qpgc = report.queries_per_gigacycle();
        assert!(
            qpgc >= last,
            "throughput regressed at {shards} shards: {qpgc} < {last} q/Gcyc"
        );
        last = qpgc;
    }
    assert!(last > 0);
}
