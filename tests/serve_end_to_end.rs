//! End-to-end acceptance test of the sharded query service.
//!
//! The PR-level contract: a `Cluster` of ≥ 2 shards returns
//! bit-identical query results to a single `System` on all four
//! architectures, and service throughput under a saturating load is
//! monotone non-decreasing in shard count up to 4 shards.

use hipe::{Arch, System};
use hipe_db::Query;
use hipe_serve::{run_service, Cluster, ClusterConfig, ServiceConfig};

const ROWS: usize = 4096;
const SEED: u64 = 2024;

/// Worker widths the determinism tests sweep: serial, two threads and
/// everything the host offers (deduplicated — on a single-core runner
/// this degenerates to just `[1]`, which is still a valid, if vacuous,
/// pass).
fn worker_sweep() -> Vec<usize> {
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut widths = vec![1usize, 2, cpus];
    widths.sort_unstable();
    widths.dedup();
    widths
}

#[test]
fn multi_shard_cluster_is_bit_identical_to_the_monolithic_system() {
    let mono = System::new(ROWS, SEED);
    let mut mono_session = mono.session();
    for shards in [2, 4] {
        let cluster = Cluster::new(ROWS, SEED, shards);
        let mut session = cluster.session();
        for query in [
            Query::q6(),
            Query::quantity_below_permille(30),
            Query::quantity_below_permille(500).with_aggregate(),
        ] {
            for arch in Arch::ALL {
                let c = session.run(arch, &query);
                let m = mono_session.run(arch, &query);
                assert_eq!(
                    c.result.bitmask, m.result.bitmask,
                    "{shards} shards, {arch}, [{query}]: masks"
                );
                assert_eq!(
                    c.result.aggregate, m.result.aggregate,
                    "{shards} shards, {arch}, [{query}]: sums"
                );
                assert_eq!(c.result, m.result);
            }
        }
        assert_eq!(cluster.materializations(), shards as u64);
    }
    assert_eq!(mono.materializations(), 1);
}

#[test]
fn service_throughput_scales_monotonically_to_four_shards() {
    let mix = vec![(Query::q6(), 1), (Query::quantity_below_permille(100), 2)];
    let mut last = 0;
    for shards in [1usize, 2, 4] {
        let cluster = Cluster::new(ROWS, SEED, shards);
        let cfg = ServiceConfig::closed(Arch::Hipe, 64, mix.clone(), 8);
        let report = run_service(&cluster, &cfg);
        assert_eq!(report.queries, 64);
        let qpgc = report.queries_per_gigacycle();
        assert!(
            qpgc >= last,
            "throughput regressed at {shards} shards: {qpgc} < {last} q/Gcyc"
        );
        last = qpgc;
    }
    assert!(last > 0);
}

#[test]
fn host_thread_count_never_changes_cluster_results_or_cycles() {
    let queries = [
        Query::q6(),
        Query::quantity_below_permille(30),
        Query::quantity_below_permille(500).with_aggregate(),
    ];
    // Baseline: the historical fully-serial path.
    let serial = Cluster::with_config(ClusterConfig {
        workers: 1,
        ..ClusterConfig::new(ROWS, SEED, 4)
    });
    let mut serial_session = serial.session();
    for workers in worker_sweep() {
        let cluster = Cluster::with_config(ClusterConfig {
            workers,
            ..ClusterConfig::new(ROWS, SEED, 4)
        });
        let mut session = cluster.session();
        for query in &queries {
            for arch in Arch::ALL {
                let par = session.run(arch, query);
                let base = serial_session.run(arch, query);
                let ctx = format!("{workers} workers, {arch}, [{query}]");
                assert_eq!(par.result.bitmask, base.result.bitmask, "{ctx}: masks");
                assert_eq!(par.result.aggregate, base.result.aggregate, "{ctx}: sums");
                assert_eq!(par.result, base.result, "{ctx}: full result");
                assert_eq!(par.cycles, base.cycles, "{ctx}: merged cycles");
                for (shard, (p, b)) in par
                    .shard_reports
                    .iter()
                    .zip(&base.shard_reports)
                    .enumerate()
                {
                    assert_eq!(p.cycles, b.cycles, "{ctx}: shard {shard} cycles");
                }
            }
        }
    }
}

#[test]
fn host_thread_count_never_changes_service_answers_or_latency() {
    let mix = vec![
        (Query::q6(), 2),
        (Query::quantity_below_permille(100), 3),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ];
    for arch in Arch::ALL {
        let cfg = ServiceConfig::closed(arch, 32, mix.clone(), 8);
        let serial = Cluster::with_config(ClusterConfig {
            workers: 1,
            ..ClusterConfig::new(ROWS, SEED, 4)
        });
        let base = run_service(&serial, &cfg);
        for workers in worker_sweep() {
            let cluster = Cluster::with_config(ClusterConfig {
                workers,
                ..ClusterConfig::new(ROWS, SEED, 4)
            });
            let report = run_service(&cluster, &cfg);
            let ctx = format!("{workers} workers, {arch}");
            assert_eq!(report.queries, base.queries, "{ctx}: queries served");
            assert_eq!(report.answers, base.answers, "{ctx}: answers");
            assert_eq!(
                report.answers_digest(),
                base.answers_digest(),
                "{ctx}: digest"
            );
            assert_eq!(report.makespan, base.makespan, "{ctx}: makespan");
            assert_eq!(report.latency, base.latency, "{ctx}: latency summary");
            assert_eq!(report.shard_busy, base.shard_busy, "{ctx}: shard busy");
        }
    }
}
