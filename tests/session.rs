//! Integration tests of the compile → session → execute API.
//!
//! The contract under test: a warm [`hipe::Session`] executes whole
//! batches against **one** table materialization, and its reset
//! protocol makes every warm run bit- and cycle-identical to a cold
//! [`hipe::System::run`] — so batches are deterministic and
//! independent of execution order.

use hipe::{Arch, RunReport, System};
use hipe_db::Query;

const ROWS: usize = 8192;
const SEED: u64 = 2024;

/// Queries exercising aggregate + multi-predicate, single-predicate,
/// empty and full scans.
fn workload() -> Vec<Query> {
    vec![
        Query::q6(),
        Query::quantity_below_permille(30),
        Query::quantity_below_permille(500),
        Query::quantity_below_permille(0),
        Query::quantity_below_permille(1000),
    ]
}

/// Full-fidelity comparison of two reports (results, timing, phase
/// breakdown, stats and energy).
fn assert_same_report(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.arch, b.arch, "{what}: arch differs");
    assert_eq!(a.result, b.result, "{what}: scan result differs");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles differ");
    assert_eq!(a.phases, b.phases, "{what}: phase breakdown differs");
    assert_eq!(a.partitions, b.partitions, "{what}: partitions differ");
    assert_eq!(a.hmc, b.hmc, "{what}: cube stats differ");
    assert_eq!(a.core, b.core, "{what}: core stats differ");
    assert_eq!(a.cache, b.cache, "{what}: cache stats differ");
    assert_eq!(a.engine, b.engine, "{what}: engine stats differ");
    assert_eq!(
        a.energy.total_pj(),
        b.energy.total_pj(),
        "{what}: energy differs"
    );
}

#[test]
fn warm_batches_match_cold_runs_on_every_arch() {
    let sys = System::new(ROWS, SEED);
    let queries = workload();
    let mut session = sys.session();
    for arch in Arch::ALL {
        let warm = session.run_all(arch, &queries);
        for (q, w) in queries.iter().zip(&warm) {
            let cold = sys.run(arch, q);
            assert_same_report(w, &cold, &format!("{arch} on [{q}]"));
        }
    }
}

#[test]
fn a_batch_materializes_the_table_exactly_once() {
    let sys = System::new(ROWS, SEED);
    let mut session = sys.session();
    assert_eq!(sys.materializations(), 1);
    for arch in Arch::ALL {
        session.run_all(arch, &workload());
    }
    assert_eq!(
        sys.materializations(),
        1,
        "a warm batch re-materialized the table image"
    );
}

#[test]
fn compare_shares_one_materialization_with_unchanged_reports() {
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let (base, hipe) = sys.compare(&q);
    assert_eq!(sys.materializations(), 1, "compare re-materialized");
    // The shared-session reports equal dedicated cold runs.
    assert_same_report(&base, &sys.run(Arch::HostX86, &q), "compare/x86");
    assert_same_report(&hipe, &sys.run(Arch::Hipe, &q), "compare/HIPE");
}

#[test]
fn repeated_batches_are_deterministic() {
    // Property: running the same batch twice on the same session (and
    // on a fresh session) yields identical reports, measurement for
    // measurement.
    let sys = System::new(ROWS, SEED);
    let queries = workload();
    let mut session = sys.session();
    let first = session.run_all(Arch::Hipe, &queries);
    let second = session.run_all(Arch::Hipe, &queries);
    let fresh = sys.session().run_all(Arch::Hipe, &queries);
    for ((a, b), c) in first.iter().zip(&second).zip(&fresh) {
        assert_same_report(a, b, "same session, repeated batch");
        assert_same_report(a, c, "fresh session, same batch");
    }
}

#[test]
fn batch_reports_are_independent_of_execution_order() {
    // Property: the report of a query does not depend on what ran
    // before it in the batch (the reset protocol leaves no residue).
    let sys = System::new(ROWS, SEED);
    let mut forward: Vec<Query> = workload();
    let mut session = sys.session();
    let fwd_reports = session.run_all(Arch::Hipe, &forward);
    forward.reverse();
    let rev_reports = session.run_all(Arch::Hipe, &forward);
    for (f, r) in fwd_reports.iter().zip(rev_reports.iter().rev()) {
        assert_same_report(f, r, "forward vs reversed batch");
    }
    // Interleaving architectures leaves no residue either.
    let q = Query::q6();
    let alone = sys.session().run(Arch::Hive, &q);
    let mut mixed = sys.session();
    mixed.run(Arch::HostX86, &q);
    mixed.run(Arch::HmcIsa, &q);
    let after_others = mixed.run(Arch::Hive, &q);
    assert_same_report(&alone, &after_others, "HIVE after other archs");
}

#[test]
fn batch_loops_compile_once_per_distinct_query_per_arch() {
    // The session plan cache: repeated executions of the same query
    // on the same arch compile once, not per run.
    let sys = System::new(ROWS, SEED);
    let queries = workload();
    let mut session = sys.session();
    assert_eq!(sys.compilations(), 0);
    let first = session.run_all(Arch::Hipe, &queries);
    assert_eq!(sys.compilations(), queries.len() as u64);
    for _ in 0..3 {
        let again = session.run_all(Arch::Hipe, &queries);
        for (a, b) in first.iter().zip(&again) {
            assert_same_report(a, b, "cached-plan rerun");
        }
    }
    assert_eq!(
        sys.compilations(),
        queries.len() as u64,
        "a warm batch loop re-lowered a cached query"
    );
    // A different arch is a different plan: one more compile each.
    session.run_all(Arch::Hive, &queries);
    assert_eq!(sys.compilations(), 2 * queries.len() as u64);
    // A fresh session has a cold cache.
    sys.session().run(Arch::Hipe, &Query::q6());
    assert_eq!(sys.compilations(), 2 * queries.len() as u64 + 1);
}

#[test]
fn plans_compile_once_and_rerun() {
    let sys = System::new(ROWS, SEED);
    let q = Query::q6();
    let backend = System::backend(Arch::Hipe);
    let plan = backend.compile(&sys, &q).expect("Q6 compiles");
    assert_eq!(plan.arch(), Arch::Hipe);
    assert_eq!(plan.rows(), ROWS);
    let mut session = sys.session();
    let a = session.run_plan(&plan);
    let b = session.run_plan(&plan);
    assert_same_report(&a, &b, "re-executed plan");
    assert_same_report(&a, &sys.run(Arch::Hipe, &q), "plan vs one-shot run");
}

#[test]
#[should_panic(expected = "different system")]
fn foreign_plans_are_rejected() {
    let small = System::new(64, 1);
    let big = System::new(128, 1);
    let plan = System::backend(Arch::Hipe)
        .compile(&small, &Query::q6())
        .expect("Q6 compiles");
    let _ = big.session().run_plan(&plan);
}
