//! Tracing is observability, not simulation: recording a trace must
//! leave every figure bit- and cycle-identical to the untraced run.
//!
//! The seam is `Option<&mut dyn TraceSink>` all the way down, and
//! emission only *reads* completed reports — so turning tracing on
//! cannot perturb a single cycle. These tests re-record one row from
//! each figure family (a replicated+faulted service row, a zone-map
//! skip row, a partitioned-execution row) with tracing enabled and
//! assert the traced run identical to the untraced one, then check
//! the recording itself reconciles with the report it describes. The
//! service row additionally sweeps the scatter worker pool (1 and 4
//! workers) through `ClusterConfig::workers`, so the contract holds
//! serial and parallel alike.

use hipe::{Arch, RunReport, System, SystemConfig, TableShape, TraceCtx};
use hipe_db::{CmpOp, Column, ColumnPredicate, Query};
use hipe_serve::{
    run_service, run_service_traced, Cluster, ClusterConfig, FaultPlan, ServiceConfig,
    ServiceReport,
};
use hipe_trace::{TraceSink, Tracer, TrackKind};

const SEED: u64 = 2018;

/// The four machines of the paper sweep.
const ARCHS: [Arch; 4] = [Arch::HostX86, Arch::HmcIsa, Arch::Hive, Arch::Hipe];

/// Full-fidelity comparison of two single-query reports.
fn assert_same_run(a: &RunReport, b: &RunReport, what: &str) {
    assert_eq!(a.result, b.result, "{what}: scan result differs");
    assert_eq!(a.cycles, b.cycles, "{what}: cycles differ");
    assert_eq!(a.phases, b.phases, "{what}: phase breakdown differs");
    assert_eq!(a.partitions, b.partitions, "{what}: partitions differ");
    assert_eq!(a.hmc, b.hmc, "{what}: cube stats differ");
    assert_eq!(a.engine, b.engine, "{what}: engine stats differ");
    assert_eq!(
        a.regions_pruned, b.regions_pruned,
        "{what}: pruning decisions differ"
    );
    assert_eq!(
        a.energy.total_pj(),
        b.energy.total_pj(),
        "{what}: energy differs"
    );
}

/// Full-fidelity comparison of two service reports.
fn assert_same_service(a: &ServiceReport, b: &ServiceReport, what: &str) {
    assert_eq!(a.makespan, b.makespan, "{what}: makespan differs");
    assert_eq!(a.queries, b.queries, "{what}: query count differs");
    assert_eq!(a.latency, b.latency, "{what}: latency differs");
    assert_eq!(
        a.subquery_latency, b.subquery_latency,
        "{what}: sub-query latency differs"
    );
    assert_eq!(a.shard_busy, b.shard_busy, "{what}: shard busy differs");
    assert_eq!(
        a.replica_busy, b.replica_busy,
        "{what}: replica busy differs"
    );
    assert_eq!(
        a.frontend_busy, b.frontend_busy,
        "{what}: front-end busy differs"
    );
    assert_eq!(a.failovers, b.failovers, "{what}: failovers differ");
    assert_eq!(
        a.redispatched, b.redispatched,
        "{what}: redispatch count differs"
    );
    assert_eq!(
        a.answers_digest(),
        b.answers_digest(),
        "{what}: answers differ"
    );
}

/// The figures bench's service mix.
fn serve_mix() -> Vec<(Query, u32)> {
    vec![
        (Query::q6(), 1),
        (Query::quantity_below_permille(100), 2),
        (Query::quantity_below_permille(500).with_aggregate(), 1),
    ]
}

#[test]
fn serve_row_identical_traced_at_one_and_four_workers() {
    for workers in [1, 4] {
        let mut cluster_cfg = ClusterConfig::replicated(6144, SEED, 2, 2);
        cluster_cfg.workers = workers;
        let cluster = Cluster::with_config(cluster_cfg);
        let cfg = ServiceConfig::closed(Arch::Hipe, 24, serve_mix(), 4);

        // Place a mid-run fail-stop fault, like the `serve_fail` row.
        let clean = run_service(&cluster, &cfg);
        let cfg = ServiceConfig {
            faults: vec![FaultPlan::new(1, 0, clean.makespan / 2)],
            ..cfg
        };

        let untraced = run_service(&cluster, &cfg);
        let mut tracer = Tracer::new();
        let traced = run_service_traced(&cluster, &cfg, Some(&mut tracer));
        assert_same_service(&untraced, &traced, &format!("workers={workers}"));
        assert!(untraced.failovers >= 1, "the fault must actually fire");

        // The recording must reconcile with the report it describes:
        // one async lifetime span per query (the `queries` track is
        // the scheduler's third registration), one kill instant per
        // failover, one redispatch instant per lost sub-query.
        let query_spans = tracer.spans().filter(|s| s.track.index() == 2).count();
        assert_eq!(query_spans as u64, traced.queries);
        assert_eq!(tracer.instants_named("fault.kill") as u64, traced.failovers);
        assert_eq!(
            tracer.instants_named("redispatch") as u64,
            traced.redispatched
        );
    }
}

#[test]
fn skip_row_identical_traced_on_every_machine() {
    // A shipdate-clustered, pruning-enabled system and a ~1 %
    // selectivity window — the `skip_1%` figure shape.
    let rows = 8192;
    let mut cfg = SystemConfig::paper(rows, SEED);
    cfg.shape = TableShape::ClusteredShipdate { total_rows: rows };
    cfg.pruning = true;
    let sys = System::with_config(cfg);
    let query = Query::new(
        vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(0, 25))],
        false,
    );

    let mut plain_session = sys.session();
    let mut traced_session = sys.session();
    for arch in ARCHS {
        let plain = plain_session.run(arch, &query);
        let mut tracer = Tracer::new();
        let track = tracer.track("system", TrackKind::Sync);
        let traced = traced_session.run_traced(
            arch,
            &query,
            Some(TraceCtx {
                sink: &mut tracer,
                track,
                at: 0,
            }),
        );
        assert_same_run(&plain, &traced, &format!("{arch:?} pruned window"));
        assert!(traced.regions_pruned >= 1, "{arch:?}: nothing was pruned");
        // Every pruning run records its decision as a `zonemap`
        // instant, and the lifecycle span covers the whole run.
        assert_eq!(tracer.instants_named("zonemap"), 1, "{arch:?}");
        let span = tracer.spans().next().expect("a query span");
        assert_eq!(span.end_cycle - span.begin_cycle, traced.cycles, "{arch:?}");

        // `None` is the common disabled path: also identical.
        let disabled = traced_session.run_traced(arch, &query, None);
        assert_same_run(&plain, &disabled, &format!("{arch:?} trace disabled"));
    }
}

#[test]
fn par_row_identical_traced_with_per_engine_lanes() {
    // Four vault-group engines, the `par_4` figure shape.
    let partitions = 4;
    let sys = System::partitioned(8192, SEED, partitions);
    let mut plain_session = sys.session();
    let mut traced_session = sys.session();
    for query in [Query::q6(), Query::quantity_below_permille(500)] {
        for arch in [Arch::Hive, Arch::Hipe] {
            let plain = plain_session.run(arch, &query);
            let mut tracer = Tracer::new();
            let track = tracer.track("system", TrackKind::Sync);
            let traced = traced_session.run_traced(
                arch,
                &query,
                Some(TraceCtx {
                    sink: &mut tracer,
                    track,
                    at: 0,
                }),
            );
            assert_same_run(&plain, &traced, &format!("{arch:?} par_{partitions}"));

            // Re-emitting the concurrent engines on per-partition
            // lanes yields exactly one scan span per engine, each
            // inside the run's scan phase.
            let mut lanes = Tracer::new();
            let tracks: Vec<_> = (0..partitions)
                .map(|p| lanes.track(&format!("engine {p}"), TrackKind::Sync))
                .collect();
            traced.trace_partitions_into(&mut lanes, &tracks, 0);
            assert_eq!(lanes.spans().count(), partitions);
            for span in lanes.spans() {
                assert!(span.end_cycle <= traced.phases.scan, "{arch:?}");
            }
        }
    }
}
