//! Zone-map pruning equivalence: pruned runs must be bit-identical to
//! unpruned runs and to the reference executor, on every machine.
//!
//! Pruning only removes *timed* work: a pruned region's mask words and
//! aggregate lanes stay at the session reset protocol's zeros, which
//! is exactly what the full scan would have stored for a region with
//! no matches. These tests sweep randomized predicates, boundary
//! predicates sitting exactly on region summaries, partitioned and
//! sharded/replicated layouts, and fully-pruned queries, asserting
//! the equivalence everywhere — warm and cold.

use hipe::{Arch, System, SystemConfig, TableShape};
use hipe_db::{scan, CmpOp, Column, ColumnPredicate, Query, SplitMix64};
use hipe_serve::{Cluster, ClusterConfig};

const SEED: u64 = 2018;

/// A shipdate-clustered system (the shape under which zone maps have
/// teeth), with pruning on or off.
fn clustered(rows: usize, partitions: usize, pruning: bool) -> System {
    let mut cfg = SystemConfig::paper(rows, SEED);
    cfg.partitions = partitions;
    cfg.shape = TableShape::ClusteredShipdate { total_rows: rows };
    cfg.pruning = pruning;
    System::with_config(cfg)
}

/// Draws a random conjunctive query: a shipdate window (the prunable
/// predicate on a clustered table) optionally joined by quantity and
/// discount predicates, optionally aggregating.
fn random_query(rng: &mut SplitMix64) -> Query {
    let lo = rng.range_i64(0, 2556);
    let hi = (lo + rng.range_i64(0, 400)).min(2556);
    let mut preds = vec![ColumnPredicate::new(Column::Shipdate, CmpOp::Range(lo, hi))];
    if rng.below(2) == 0 {
        preds.push(ColumnPredicate::new(
            Column::Quantity,
            CmpOp::Lt(rng.range_i64(2, 50)),
        ));
    }
    if rng.below(3) == 0 {
        preds.push(ColumnPredicate::new(
            Column::Discount,
            CmpOp::Ge(rng.range_i64(0, 10)),
        ));
    }
    Query::new(preds, rng.below(2) == 0)
}

/// Runs `query` pruned and unpruned on `arch`, warm and cold, and
/// asserts all four results bit-identical to the reference executor.
/// Returns the warm pruned run's pruned-region count.
fn assert_equivalent(
    pruned: &mut hipe::Session<'_>,
    full: &mut hipe::Session<'_>,
    arch: Arch,
    query: &Query,
) -> usize {
    let reference = scan::reference(pruned.system().table(), query);
    let warm_pruned = pruned.run(arch, query);
    let warm_full = full.run(arch, query);
    assert_eq!(warm_pruned.result, reference, "{arch} pruned vs reference");
    assert_eq!(warm_full.result, reference, "{arch} unpruned vs reference");
    assert_eq!(warm_full.regions_pruned, 0, "{arch} unpruned run pruned");
    // Cold runs repeat the equivalence from a fresh materialization.
    let cold_pruned = pruned.system().run(arch, query);
    assert_eq!(cold_pruned.result, reference, "{arch} cold pruned");
    assert_eq!(
        cold_pruned.regions_pruned, warm_pruned.regions_pruned,
        "{arch} cold and warm runs must prune identically"
    );
    // Pruning never adds cycles: dead regions only remove timed work.
    assert!(
        warm_pruned.cycles <= warm_full.cycles,
        "{arch}: pruned {} cycles > unpruned {}",
        warm_pruned.cycles,
        warm_full.cycles
    );
    warm_pruned.regions_pruned
}

#[test]
fn randomized_predicates_prune_bit_identically_on_all_archs() {
    let rows = 2048;
    let pruned_sys = clustered(rows, 1, true);
    let full_sys = clustered(rows, 1, false);
    let mut pruned_sessions: Vec<_> = Arch::ALL.iter().map(|_| pruned_sys.session()).collect();
    let mut full_sessions: Vec<_> = Arch::ALL.iter().map(|_| full_sys.session()).collect();
    let mut rng = SplitMix64::new(0x5EED_207E);
    let mut regions_pruned = 0;
    for _ in 0..10 {
        let query = random_query(&mut rng);
        for (i, &arch) in Arch::ALL.iter().enumerate() {
            regions_pruned +=
                assert_equivalent(&mut pruned_sessions[i], &mut full_sessions[i], arch, &query);
        }
    }
    assert!(
        regions_pruned > 0,
        "the sweep never exercised pruning — widen the predicate pool"
    );
}

#[test]
fn boundary_predicates_at_region_summaries_survive_pruning() {
    let rows = 1024;
    let pruned_sys = clustered(rows, 1, true);
    let full_sys = clustered(rows, 1, false);
    // Predicates sitting exactly on a mid-table region's min and max:
    // the region must survive (and the answer stay exact) in every
    // boundary case, and the open sides must prune it.
    let zm = pruned_sys.zonemap();
    let r = zm.regions() / 2;
    let (min, max) = (
        zm.region(r).min(Column::Shipdate),
        zm.region(r).max(Column::Shipdate),
    );
    let cases = [
        CmpOp::Eq(min),
        CmpOp::Eq(max),
        CmpOp::Range(min, min),
        CmpOp::Range(max, max),
        CmpOp::Range(min, max),
        CmpOp::Le(min),
        CmpOp::Ge(max),
        CmpOp::Lt(min), // prunes region r itself
        CmpOp::Gt(max), // prunes region r itself
    ];
    for cmp in cases {
        let query = Query::new(vec![ColumnPredicate::new(Column::Shipdate, cmp)], false);
        let mut pruned = pruned_sys.session();
        let mut full = full_sys.session();
        for arch in Arch::ALL {
            let _ = assert_equivalent(&mut pruned, &mut full, arch, &query);
        }
    }
}

#[test]
fn partitioned_layouts_prune_bit_identically() {
    // Regions straddling partition edges: the narrow window selects
    // rows on both sides of the 2- and 4-way vault-group splits.
    let rows = 4096;
    for partitions in [2, 4] {
        let pruned_sys = clustered(rows, partitions, true);
        let full_sys = clustered(rows, partitions, false);
        for permille in [10, 30, 100] {
            let query = Query::shipdate_window_permille(permille).with_aggregate();
            let mut pruned = pruned_sys.session();
            let mut full = full_sys.session();
            for arch in Arch::ALL {
                let n = assert_equivalent(&mut pruned, &mut full, arch, &query);
                assert!(n > 0, "{arch} pruned nothing at {permille} permille");
            }
        }
    }
}

#[test]
fn fully_pruned_queries_run_to_exact_zero_answers() {
    // Individually satisfiable, jointly empty: no region's shipdate
    // interval can have max >= 2000 and min < 100 at once on a
    // clustered table, so every region prunes — the empty-program
    // contract end to end.
    let rows = 1024;
    let pruned_sys = clustered(rows, 1, true);
    let full_sys = clustered(rows, 1, false);
    for aggregate in [false, true] {
        let query = Query::new(
            vec![
                ColumnPredicate::new(Column::Shipdate, CmpOp::Ge(2000)),
                ColumnPredicate::new(Column::Shipdate, CmpOp::Lt(100)),
            ],
            aggregate,
        );
        let mut pruned = pruned_sys.session();
        let mut full = full_sys.session();
        for arch in Arch::ALL {
            let _ = assert_equivalent(&mut pruned, &mut full, arch, &query);
            let report = pruned.run(arch, &query);
            assert_eq!(report.result.matches, 0, "{arch}");
            assert_eq!(report.regions_scanned, 0, "{arch}");
            assert_eq!(report.regions_pruned, rows / 32, "{arch}");
            assert_eq!(
                report.result.aggregate,
                aggregate.then_some(0),
                "{arch} fully-pruned aggregate must be the exact zero sum"
            );
            assert_eq!(report.selectivity(), 0.0, "{arch}");
            assert!(!report.selectivity().is_nan(), "{arch}");
        }
    }
}

#[test]
fn sharded_and_replicated_clusters_skip_without_changing_answers() {
    // The window straddles the shard-0/shard-1 boundary of the 4-shard
    // split (day ~639 at row 1024 of 4096), so skipping must keep
    // partially-matching edge shards while dropping the rest.
    let rows = 4096;
    let straddle = Query::new(
        vec![ColumnPredicate::new(
            Column::Shipdate,
            CmpOp::Range(600, 680),
        )],
        true,
    );
    let narrow = Query::shipdate_window_permille(30);
    let mono = clustered(rows, 1, false);
    for query in [&straddle, &narrow] {
        let reference = scan::reference(mono.table(), query);
        assert!(reference.matches > 0, "test query selects nothing");
        for shards in [1, 2, 4] {
            for replicas in [1, 2] {
                let cfg = ClusterConfig {
                    replicas,
                    ..ClusterConfig::skipping(rows, SEED, shards)
                };
                let cluster = Cluster::with_config(cfg);
                for arch in Arch::ALL {
                    let report = cluster.run(arch, query);
                    assert_eq!(
                        report.result, reference,
                        "{arch} x{shards} shards x{replicas} replicas"
                    );
                }
                // The narrow window fits inside one shard of the
                // 4-way split: at least two shards must be skipped.
                if shards == 4 && std::ptr::eq(query, &narrow) {
                    let report = cluster.run(Arch::Hipe, query);
                    assert!(report.shards_skipped() >= 2, "skipped {:?}", report.skipped);
                }
            }
        }
    }
}

#[test]
fn a_shard_pruned_entirely_by_its_rollup_answers_zero() {
    // Shard 3 of the 4-way clustered split holds days ~1917..2556; a
    // window below that is pruned by its table rollup before any
    // region-level work, and the cluster answer is still exact.
    let rows = 4096;
    let cluster = Cluster::with_config(ClusterConfig::skipping(rows, SEED, 4));
    let query = Query::shipdate_window_permille(100); // days 731..986
    let report = cluster.run(Arch::Hipe, &query);
    assert!(report.skipped[3], "late shard must be rollup-skipped");
    let late = &report.shard_reports[3];
    assert_eq!(late.cycles, 0);
    assert_eq!(late.result.matches, 0);
    assert_eq!(late.regions_scanned, 0);
    assert_eq!(late.regions_pruned, cluster.shard(3).layout().regions());
    let mono = clustered(rows, 1, false);
    assert_eq!(report.result, scan::reference(mono.table(), &query));
}
